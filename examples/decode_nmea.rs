//! The wire level: decode raw NMEA AIVDM sentences (including a
//! documented real-world one), then encode a simulated vessel's report
//! back onto the wire and through the full path again.
//!
//! ```sh
//! cargo run --example decode_nmea
//! ```

use patterns_of_life::ais::decode::{decode_payload, AisMessage};
use patterns_of_life::ais::encode::{encode_position_a, encode_static_voyage};
use patterns_of_life::ais::nmea::{Assembler, Sentence};
use patterns_of_life::ais::report::{PositionReport, StaticReport};
use patterns_of_life::ais::types::{Mmsi, NavStatus, ShipTypeCode};
use patterns_of_life::geo::LatLon;

fn main() {
    // A real AIVDM sentence from the public protocol documentation.
    let wire = "!AIVDM,1,1,,B,177KQJ5000G?tO`K>RA1wUbN0TKH,0*5C";
    println!("raw:     {wire}");
    let sentence = Sentence::parse(wire).expect("valid NMEA");
    let msg = decode_payload(&sentence.payload, sentence.fill_bits).expect("valid payload");
    if let AisMessage::PositionA {
        mmsi,
        nav_status,
        sog_knots,
        pos,
        ..
    } = &msg
    {
        println!(
            "decoded: type 1, MMSI {mmsi}, status {nav_status:?}, SOG {:?} kn, pos {:?}",
            sog_knots, pos
        );
    }

    // Now the other direction: put our own report on the wire.
    let report = PositionReport {
        mmsi: Mmsi(235_098_765),
        timestamp: 1_650_000_000,
        pos: LatLon::new(51.05, 1.45).unwrap(), // Dover Strait
        sog_knots: Some(18.4),
        cog_deg: Some(42.0),
        heading_deg: Some(40.0),
        nav_status: NavStatus::UnderWayUsingEngine,
    };
    let (payload, fill) = encode_position_a(&report);
    let line = Sentence::wrap(&payload, fill, 1)[0].to_line();
    println!("\nour vessel on the wire: {line}");
    let parsed = Sentence::parse(&line).expect("round-trip");
    let back = decode_payload(&parsed.payload, parsed.fill_bits).expect("round-trip");
    println!("decoded back:           {back:?}");

    // Static & voyage data spans two sentences; the assembler reassembles.
    let static_report = StaticReport {
        mmsi: Mmsi(235_098_765),
        imo: Some(9_412_345),
        name: "POL QUICKSILVER".into(),
        ship_type: ShipTypeCode(71),
        gross_tonnage: 95_000,
    };
    let (payload, fill) = encode_static_voyage(&static_report, "NLRTM", 12.5);
    let sentences = Sentence::wrap(&payload, fill, 7);
    println!("\ntype 5 needs {} sentences:", sentences.len());
    let mut assembler = Assembler::new();
    let mut assembled = None;
    for s in &sentences {
        let line = s.to_line();
        println!("  {line}");
        assembled = assembler.push(Sentence::parse(&line).unwrap());
    }
    let (payload, fill) = assembled.expect("complete");
    if let AisMessage::StaticVoyage {
        name,
        destination,
        draught_m,
        ..
    } = decode_payload(&payload, fill).expect("valid")
    {
        println!("reassembled: name={name:?} destination={destination:?} draught={draught_m} m");
    }
}
