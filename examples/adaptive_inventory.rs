//! The paper's §5 future work in action: build a uniform res-7 inventory,
//! coarsen it adaptively by traffic density, and compare footprints and
//! query behaviour.
//!
//! ```sh
//! cargo run --release --example adaptive_inventory
//! ```

use patterns_of_life::core::records::PortSite;
use patterns_of_life::core::{AdaptiveConfig, AdaptiveInventory, PipelineConfig};
use patterns_of_life::engine::Engine;
use patterns_of_life::fleetsim::scenario::{generate, ScenarioConfig};
use patterns_of_life::fleetsim::WORLD_PORTS;
use patterns_of_life::geo::LatLon;

fn main() {
    let ds = generate(&ScenarioConfig {
        n_vessels: 60,
        duration_days: 10,
        ..ScenarioConfig::default()
    });
    let ports: Vec<PortSite> = WORLD_PORTS
        .iter()
        .enumerate()
        .map(|(i, p)| PortSite {
            id: i as u16,
            name: p.name.to_string(),
            pos: p.pos(),
            radius_km: 12.0,
        })
        .collect();
    let engine = Engine::with_available_parallelism();
    let out = patterns_of_life::core::run(
        &engine,
        ds.positions,
        &ds.statics,
        &ports,
        &PipelineConfig::fine(), // res 7
    )
    .expect("pipeline run failed");
    let fine_cells = out
        .inventory
        .len_of(patterns_of_life::core::features::GroupingSet::Cell);
    println!("uniform inventory: {fine_cells} cells at res 7");

    let adaptive = AdaptiveInventory::build(&out.inventory, &AdaptiveConfig::default());
    println!(
        "adaptive inventory: {} cells ({:.0}% of uniform), partition valid: {}",
        adaptive.len(),
        100.0 * adaptive.len() as f64 / fine_cells as f64,
        adaptive.partition_violations() == 0
    );
    println!("resolution mix:");
    for (res, n) in adaptive.resolution_histogram() {
        println!(
            "  res {res:>2} ({:>9.1} km² cells): {n:>6} cells",
            patterns_of_life::hexgrid::avg_cell_area_km2(
                patterns_of_life::hexgrid::Resolution::new(res).unwrap()
            )
        );
    }

    // Queries: dense port approach vs open ocean.
    let probes = [
        ("Singapore strait", LatLon::new(1.2, 103.9).unwrap()),
        ("Dover strait", LatLon::new(51.05, 1.45).unwrap()),
        ("mid South Atlantic", LatLon::new(-20.0, -15.0).unwrap()),
        ("Southern Ocean", LatLon::new(-62.0, 120.0).unwrap()),
    ];
    println!();
    for (name, pos) in probes {
        match adaptive.summary_at(pos) {
            Some((cell, stats)) => println!(
                "{name:<20} -> res {:>2} cell, {:>6} records, {:>4} ships",
                cell.resolution().level(),
                stats.records,
                stats.ships.estimate()
            ),
            None => println!("{name:<20} -> no traffic ever observed"),
        }
    }
}
