//! The Ever-Given scenario: build a normalcy model from a normal period,
//! then watch the anomaly rate react when the Suez canal closes and
//! Asia–Europe traffic reroutes around the Cape of Good Hope.
//!
//! ```sh
//! cargo run --release --example suez_disruption
//! ```

use patterns_of_life::apps::AnomalyDetector;
use patterns_of_life::core::records::PortSite;
use patterns_of_life::core::PipelineConfig;
use patterns_of_life::engine::Engine;
use patterns_of_life::fleetsim::scenario::{generate, Disruption, ScenarioConfig};
use patterns_of_life::fleetsim::{LaneGraph, RouteOptions, WORLD_PORTS};

fn main() {
    // The routing fact behind the 2021 event, straight from the lane graph:
    let g = LaneGraph::global();
    let (rtm, _) = patterns_of_life::fleetsim::ports::port_by_locode("NLRTM").unwrap();
    let (sin, _) = patterns_of_life::fleetsim::ports::port_by_locode("SGSIN").unwrap();
    let open = g.route(rtm, sin, RouteOptions::default()).unwrap();
    let closed = g
        .route(
            rtm,
            sin,
            RouteOptions {
                avoid_suez: true,
                avoid_panama: false,
            },
        )
        .unwrap();
    println!("Rotterdam -> Singapore:");
    println!(
        "  via Suez:  {:>8.0} km  (through {:?}...)",
        open.distance_km,
        &open.via[..4.min(open.via.len())]
    );
    println!(
        "  via Cape:  {:>8.0} km  (+{:.0} km, the paper's '7000 miles' detour)",
        closed.distance_km,
        closed.distance_km - open.distance_km
    );

    // Normal period → inventory → normalcy model.
    let ports: Vec<PortSite> = WORLD_PORTS
        .iter()
        .enumerate()
        .map(|(i, p)| PortSite {
            id: i as u16,
            name: p.name.to_string(),
            pos: p.pos(),
            radius_km: 12.0,
        })
        .collect();
    let normal_cfg = ScenarioConfig {
        n_vessels: 80,
        duration_days: 12,
        ..ScenarioConfig::default()
    };
    let train = generate(&normal_cfg);
    let engine = Engine::with_available_parallelism();
    let out = patterns_of_life::core::run(
        &engine,
        train.positions,
        &train.statics,
        &ports,
        &PipelineConfig::default(),
    )
    .expect("pipeline run failed");
    let detector = AnomalyDetector::new(&out.inventory);

    // Two live fleets: one normal, one sailing through the blockage.
    let live_normal = generate(&ScenarioConfig {
        seed: 999,
        n_vessels: 30,
        ..normal_cfg.clone()
    });
    let mut blocked_cfg = ScenarioConfig {
        seed: 999,
        n_vessels: 30,
        ..normal_cfg
    };
    blocked_cfg.disruption = Some(Disruption::SuezBlockage {
        from: blocked_cfg.start,
        to: blocked_cfg.end(),
    });
    let live_blocked = generate(&blocked_cfg);

    let rate = |ds: &patterns_of_life::fleetsim::scenario::Dataset| {
        detector.anomaly_rate(ds.positions.iter().enumerate().flat_map(|(vi, part)| {
            let seg = ds.fleet[vi].segment;
            part.iter()
                .map(move |r| (r.pos, r.sog_knots, r.cog_deg, Some(seg)))
        }))
    };
    let r_normal = rate(&live_normal);
    let r_blocked = rate(&live_blocked);
    println!("\nanomaly rate against the normalcy model:");
    println!("  normal fleet:          {:.2}%", r_normal * 100.0);
    println!("  Suez-blockage fleet:   {:.2}%", r_blocked * 100.0);
    println!(
        "  -> the disruption is {:.1}x louder than background",
        r_blocked / r_normal.max(1e-9)
    );
    println!(
        "\nrerouted voyages in the blocked fleet: {}/{}",
        live_blocked.truth.iter().filter(|v| v.rerouted).count(),
        live_blocked.truth.len()
    );
}
