//! §4.1.2 / §4.1.3 in action: track one live vessel against the inventory
//! — estimate its time to destination and predict where it is heading,
//! report by report.
//!
//! ```sh
//! cargo run --release --example eta_and_destination
//! ```

use patterns_of_life::apps::{naive_eta_secs, DestinationPredictor, EtaEstimator};
use patterns_of_life::core::records::PortSite;
use patterns_of_life::core::PipelineConfig;
use patterns_of_life::engine::Engine;
use patterns_of_life::fleetsim::scenario::{generate, ScenarioConfig};
use patterns_of_life::fleetsim::WORLD_PORTS;

fn port_sites(radius_km: f64) -> Vec<PortSite> {
    WORLD_PORTS
        .iter()
        .enumerate()
        .map(|(i, p)| PortSite {
            id: i as u16,
            name: p.name.to_string(),
            pos: p.pos(),
            radius_km,
        })
        .collect()
}

fn main() {
    // Historical year: build the inventory.
    let train = generate(&ScenarioConfig {
        n_vessels: 80,
        duration_days: 12,
        ..ScenarioConfig::default()
    });
    let engine = Engine::with_available_parallelism();
    let cfg = PipelineConfig::default();
    let out = patterns_of_life::core::run(
        &engine,
        train.positions,
        &train.statics,
        &port_sites(cfg.port_radius_km),
        &cfg,
    )
    .expect("pipeline run failed");
    println!(
        "inventory built: {} entries over {} cells\n",
        out.inventory.len(),
        out.inventory.coverage().occupied_cells
    );

    // A "live" vessel from a different season (different seed).
    let live = generate(&ScenarioConfig {
        seed: 777,
        n_vessels: 20,
        duration_days: 12,
        ..ScenarioConfig::default()
    });
    // Pick the longest observed voyage.
    let voyage = live
        .truth
        .iter()
        .max_by_key(|v| v.arrival - v.departure)
        .expect("voyages exist");
    let vessel = live.fleet.iter().find(|f| f.mmsi == voyage.mmsi).unwrap();
    let vi = live
        .fleet
        .iter()
        .position(|f| f.mmsi == voyage.mmsi)
        .unwrap();
    let origin = &WORLD_PORTS[voyage.origin.0 as usize];
    let dest = &WORLD_PORTS[voyage.dest.0 as usize];
    println!(
        "live vessel: {} ({}), {} -> {}, actual passage {:.1} h",
        vessel.name,
        vessel.segment,
        origin.name,
        dest.name,
        (voyage.arrival - voyage.departure) as f64 / 3600.0
    );

    let eta = EtaEstimator::new(&out.inventory);
    let mut predictor = DestinationPredictor::new(&out.inventory, Some(vessel.segment));

    println!();
    println!(
        "{:>9} {:>12} {:>12} {:>12}   {}",
        "progress", "true rem(h)", "inv ETA(h)", "naive(h)", "predicted destination"
    );
    let reports: Vec<_> = live.positions[vi]
        .iter()
        .filter(|r| r.timestamp >= voyage.departure && r.timestamp <= voyage.arrival)
        .collect();
    for r in &reports {
        predictor.observe(r.pos);
    }
    for frac in [0.2, 0.4, 0.6, 0.8, 0.95] {
        let t = voyage.departure + ((voyage.arrival - voyage.departure) as f64 * frac) as i64;
        let Some(r) = reports.iter().min_by_key(|r| (r.timestamp - t).abs()) else {
            continue;
        };
        let truth_h = (voyage.arrival - r.timestamp) as f64 / 3600.0;
        let inv_h = eta
            .estimate(
                r.pos,
                Some(vessel.segment),
                Some((voyage.origin.0, voyage.dest.0)),
            )
            .map(|e| e.p50_secs / 3600.0);
        let naive_h = naive_eta_secs(r.pos, dest.pos(), vessel.design_speed_kn) / 3600.0;
        // Re-run the predictor up to this report for an honest "at the time"
        // answer.
        let mut p = DestinationPredictor::new(&out.inventory, Some(vessel.segment));
        for rr in reports.iter().take_while(|rr| rr.timestamp <= r.timestamp) {
            p.observe(rr.pos);
        }
        let guess = p
            .best()
            .map(|(port, score)| {
                format!(
                    "{} ({:.0}%)",
                    WORLD_PORTS[port as usize].name,
                    score * 100.0
                )
            })
            .unwrap_or_else(|| "—".into());
        println!(
            "{:>8.0}% {:>12.1} {:>12} {:>12.1}   {}",
            frac * 100.0,
            truth_h,
            inv_h
                .map(|h| format!("{h:.1}"))
                .unwrap_or_else(|| "—".into()),
            naive_h,
            guess
        );
    }
    println!("\n(inv ETA = median of historical ATA in the cell for this route key;");
    println!(" naive = great-circle distance over design speed — no lane knowledge)");
}
