//! Quickstart: simulate a small global fleet, build the Patterns-of-Life
//! inventory, query it, and round-trip it through the binary codec.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use patterns_of_life::core::records::PortSite;
use patterns_of_life::core::{codec, PipelineConfig};
use patterns_of_life::engine::Engine;
use patterns_of_life::fleetsim::scenario::{generate, ScenarioConfig};
use patterns_of_life::fleetsim::WORLD_PORTS;
use patterns_of_life::hexgrid::cell_at;

fn main() {
    // 1. A deterministic synthetic AIS dataset (stand-in for the paper's
    //    2.7-billion-record 2022 archive — see DESIGN.md).
    let scenario = ScenarioConfig {
        n_vessels: 40,
        duration_days: 10,
        ..ScenarioConfig::default()
    };
    let ds = generate(&scenario);
    println!(
        "simulated {} vessels, {} positional reports, {} ground-truth voyages",
        ds.fleet.len(),
        ds.total_reports(),
        ds.truth.len()
    );

    // 2. The paper's port table (the geofencing input).
    let ports: Vec<PortSite> = WORLD_PORTS
        .iter()
        .enumerate()
        .map(|(i, p)| PortSite {
            id: i as u16,
            name: p.name.to_string(),
            pos: p.pos(),
            radius_km: 12.0,
        })
        .collect();

    // 3. Run the methodology: clean → trips → project → aggregate.
    let engine = Engine::with_available_parallelism();
    let cfg = PipelineConfig::default(); // resolution 6, like the paper
    let out = patterns_of_life::core::run(&engine, ds.positions, &ds.statics, &ports, &cfg)
        .expect("pipeline run failed");
    println!(
        "pipeline: {} raw -> {} cleaned -> {} trip records -> {} group entries",
        out.counts.raw, out.counts.cleaned, out.counts.with_trips, out.counts.group_entries
    );
    let cov = out.inventory.coverage();
    println!(
        "inventory: {} cells, compression {:.2}%, grid utilization {:.4}%",
        cov.occupied_cells,
        cov.compression * 100.0,
        cov.utilization * 100.0
    );

    // 4. Query the Dover Strait cell.
    let dover = patterns_of_life::geo::LatLon::new(51.05, 1.45).unwrap();
    let cell = cell_at(dover, cfg.resolution);
    match out.inventory.summary(cell) {
        Some(stats) => {
            println!("\nDover Strait cell {cell}:");
            println!("  records        {}", stats.records);
            println!("  distinct ships {}", stats.ships.estimate());
            println!("  distinct trips {}", stats.trips.estimate());
            if let (Some(mean), Some(std)) = (stats.speed.mean(), stats.speed.std_dev()) {
                println!("  speed          {mean:.1} ± {std:.1} kn");
            }
            if let Some(course) = stats.course.mean_deg() {
                println!("  mean course    {course:.0}°");
            }
            for (port, n) in stats.top_destinations(3) {
                println!(
                    "  heading to     {} ({n} records)",
                    WORLD_PORTS[port as usize].name
                );
            }
        }
        None => println!("\nno traffic crossed the Dover cell in this small run"),
    }

    // 5. Persist and reload.
    let bytes = codec::to_bytes(&out.inventory);
    let back = codec::from_bytes(&bytes).expect("round-trip");
    println!(
        "\nserialized inventory: {} bytes for {} entries; reload OK ({} entries)",
        bytes.len(),
        out.inventory.len(),
        back.len()
    );

    // 6. Engine observability (the paper's Figure-3 execution flow).
    println!("\nstage metrics:\n{}", engine.metrics().render());
}
