//! Offline shim for the `crossbeam` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *exact* API subset it consumes: `crossbeam::channel::unbounded` and
//! the `Sender`/`Receiver` handles, implemented as an MPMC queue over
//! `std::sync::{Mutex, Condvar}`. Semantics match crossbeam's unbounded
//! channel for this subset:
//!
//! * `send` fails only once every receiver is gone,
//! * `recv` blocks until a message arrives and fails only when the channel
//!   is empty *and* every sender is gone,
//! * both handles are cloneable and usable from many threads.

#![deny(missing_docs)]

pub mod channel {
    //! The `crossbeam::channel` subset: an unbounded MPMC channel.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> MutexGuard<'_, State<T>> {
            // A panicking sender/receiver cannot leave the queue in a
            // broken state (all mutations are single push/pop calls), so
            // poisoning is ignored like parking_lot / crossbeam do.
            match self.state.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.lock();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.senders -= 1;
            let disconnected = st.senders == 0;
            drop(st);
            if disconnected {
                // Wake blocked receivers so they observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives. Fails only when the channel is
        /// empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = match self.shared.ready.wait(st) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Returns a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.shared.lock().queue.pop_front().ok_or(RecvError)
        }

        /// Like [`Receiver::recv`] but gives up after `timeout`.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.shared.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                let now = std::time::Instant::now();
                let Some(left) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvError);
                };
                st = match self.shared.ready.wait_timeout(st, left) {
                    Ok((g, _)) => g,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.lock().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = unbounded::<usize>();
            let got = Arc::new(AtomicUsize::new(0));
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    let got = got.clone();
                    std::thread::spawn(move || {
                        while let Ok(v) = rx.recv() {
                            got.fetch_add(v, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            drop(rx);
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            for c in consumers {
                c.join().unwrap();
            }
            assert_eq!(got.load(Ordering::Relaxed), (0..1000).sum::<usize>());
        }

        #[test]
        fn blocked_receiver_wakes_on_send() {
            let (tx, rx) = unbounded::<u8>();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx.send(9).unwrap();
            assert_eq!(h.join().unwrap(), Ok(9));
        }
    }
}
