//! Offline std-only model checker exposing the loom API subset this
//! workspace's concurrency models use.
//!
//! [`model`] runs a closure under a deterministic scheduler that
//! serializes the model threads and explores their interleavings by
//! depth-first search over every scheduling decision, bounded by a
//! preemption budget (see [`rt`] for the exact search discipline). The
//! shim types in [`sync`] and [`thread`] mirror their std counterparts
//! but turn every visible operation — atomic access, lock acquisition
//! and release, condvar wait/notify, spawn and join — into a scheduling
//! point.
//!
//! ## Fidelity
//!
//! The checker is *interleaving-exhaustive* (up to the preemption
//! bound) and *memory-order-naive*: operations execute sequentially
//! consistently, so races that only manifest under weaker hardware
//! orderings are not modeled. Deadlocks, lost wakeups, torn
//! check-then-act sequences, leaked permits, and double-drops all are.
//! That trade keeps the checker a few hundred lines of std-only code,
//! which is what an offline build can afford; the real loom crate is a
//! drop-in upgrade where networked builds exist.

pub mod rt;
pub mod sync;
pub mod thread;

pub use rt::model;
