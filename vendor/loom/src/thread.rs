//! Scheduler-aware threads. A spawned model thread runs on a real OS
//! thread, but only when the scheduler hands it the token, so every
//! interleaving the scheduler can express is actually executed.

use crate::rt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    id: usize,
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
    os: Option<std::thread::JoinHandle<()>>,
}

/// Spawns a model thread and returns its handle.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let id = rt::register_thread();
    let result: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let os = std::thread::Builder::new()
        .name(format!("loom-model-{id}"))
        .spawn(move || {
            rt::enter_thread(id);
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(v) => {
                    *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(Ok(v));
                    rt::finish_thread();
                }
                Err(p) => {
                    rt::fail_thread(p.as_ref());
                }
            }
        })
        .expect("spawn loom model thread");
    // Only now that the OS thread exists may the scheduler pick the new
    // id; make the hand-off point explicit.
    rt::yield_point();
    JoinHandle {
        id,
        result,
        os: Some(os),
    }
}

impl<T> JoinHandle<T> {
    /// Blocks (in model terms) until the thread finishes and returns its
    /// result, like [`std::thread::JoinHandle::join`].
    pub fn join(mut self) -> std::thread::Result<T> {
        rt::join_thread(self.id);
        if let Some(os) = self.os.take() {
            let _ = os.join();
        }
        self.result
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("joined model thread left no result")
    }
}

/// An explicit scheduling point, like [`std::thread::yield_now`].
pub fn yield_now() {
    rt::yield_point();
}
