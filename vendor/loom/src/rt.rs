//! The model-checking runtime: a deterministic scheduler that serializes
//! model threads (exactly one runs at a time, handed a token through a
//! condvar) and explores every schedule by depth-first search over the
//! choice points, bounded by a preemption budget.
//!
//! Every visible operation of the shim types ([`crate::sync`],
//! [`crate::thread`]) calls into here at a *yield point*, where the
//! scheduler decides which runnable thread executes next. An iteration
//! replays a recorded prefix of choices and extends it greedily; after
//! the iteration the last choice with an unexplored alternative is
//! bumped and everything after it is re-derived. The search is complete
//! up to the preemption bound (`LOOM_PREEMPTION_BOUND`, default 3): a
//! schedule may switch away from a still-runnable thread at most that
//! many times, which keeps the state space tractable while catching the
//! races that matter in practice.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// What a live model thread is currently allowed to do.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    /// Eligible to be scheduled.
    Runnable,
    /// Waiting on a lock or condvar resource.
    BlockedOnRes(usize),
    /// Waiting for another thread to finish.
    BlockedOnJoin(usize),
    /// Done; never scheduled again this iteration.
    Finished,
}

/// Model-level state of one synchronization resource.
enum Res {
    /// A mutual-exclusion lock.
    Mutex { held: bool },
    /// A readers-writer lock.
    RwLock { writer: bool, readers: usize },
    /// A condition variable (state lives in the waiters' `Run`).
    Condvar,
}

/// One recorded scheduling decision: which of `options` runnable
/// threads ran. Backtracking bumps `picked` through `options`.
#[derive(Clone, Copy)]
struct Choice {
    picked: usize,
    options: usize,
}

/// Mutable state of the current iteration, all under one lock.
struct State {
    threads: Vec<Run>,
    active: usize,
    resources: Vec<Res>,
    schedule: Vec<Choice>,
    pos: usize,
    preemptions: usize,
    bound: usize,
    iteration_done: bool,
    failure: Option<String>,
    abort: bool,
}

impl State {
    fn fresh(schedule: Vec<Choice>, bound: usize) -> State {
        State {
            threads: vec![Run::Runnable],
            active: 0,
            resources: Vec::new(),
            schedule,
            pos: 0,
            preemptions: 0,
            bound,
            iteration_done: false,
            failure: None,
            abort: false,
        }
    }
}

/// The global runtime: one model runs at a time (guarded by
/// [`model_lock`]), so a single shared scheduler suffices.
struct Rt {
    state: Mutex<State>,
    cv: Condvar,
}

fn rt() -> &'static Rt {
    static RT: OnceLock<Rt> = OnceLock::new();
    RT.get_or_init(|| Rt {
        state: Mutex::new(State::fresh(Vec::new(), 0)),
        cv: Condvar::new(),
    })
}

/// Serializes whole `model()` invocations across test threads.
fn model_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

thread_local! {
    static TID: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

fn tid() -> usize {
    let t = TID.with(|c| c.get());
    assert!(t != usize::MAX, "loom type used outside loom::model");
    t
}

fn lock(rt: &Rt) -> MutexGuard<'_, State> {
    rt.state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Rt {
    /// Picks the next active thread. Called with the state locked, after
    /// the caller has updated its own `Run` entry.
    fn schedule_next(&self, s: &mut State, from: usize) {
        let runnable: Vec<usize> = (0..s.threads.len())
            .filter(|&i| s.threads[i] == Run::Runnable)
            .collect();
        if runnable.is_empty() {
            if s.threads.iter().all(|t| *t == Run::Finished) {
                s.iteration_done = true;
            } else {
                let blocked: Vec<usize> = (0..s.threads.len())
                    .filter(|&i| s.threads[i] != Run::Finished)
                    .collect();
                s.failure.get_or_insert_with(|| {
                    format!("deadlock: threads {blocked:?} blocked forever")
                });
                s.abort = true;
                s.iteration_done = true;
            }
            self.cv.notify_all();
            return;
        }
        let from_runnable = runnable.contains(&from);
        let options = if from_runnable && s.preemptions >= s.bound {
            vec![from]
        } else {
            runnable
        };
        let picked = if s.pos < s.schedule.len() {
            s.schedule[s.pos].picked.min(options.len() - 1)
        } else {
            s.schedule.push(Choice {
                picked: 0,
                options: options.len(),
            });
            0
        };
        s.pos += 1;
        let next = options[picked];
        if next != from && from_runnable {
            s.preemptions += 1;
        }
        s.active = next;
        self.cv.notify_all();
    }

    /// Blocks the calling thread until it holds the token again.
    fn wait_token(&self, mut s: MutexGuard<'_, State>, me: usize) {
        loop {
            if s.abort {
                drop(s);
                panic!("loom: iteration aborted");
            }
            if s.active == me && s.threads[me] == Run::Runnable {
                return;
            }
            s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A scheduling decision with no state change — placed before every
/// visible operation of the shim types.
pub(crate) fn yield_point() {
    let me = tid();
    let r = rt();
    let mut s = lock(r);
    if s.abort {
        // Unwinding out of an aborted iteration: do not reschedule and,
        // crucially, do not panic again from inside a Drop.
        return;
    }
    r.schedule_next(&mut s, me);
    r.wait_token(s, me);
}

/// Registers a new synchronization resource; ids are deterministic
/// because the model body is deterministic modulo scheduling.
fn register(res: Res) -> usize {
    let _ = tid();
    let r = rt();
    let mut s = lock(r);
    s.resources.push(res);
    s.resources.len() - 1
}

/// Creates a model mutex.
pub(crate) fn mutex_create() -> usize {
    register(Res::Mutex { held: false })
}

/// Creates a model rwlock.
pub(crate) fn rwlock_create() -> usize {
    register(Res::RwLock {
        writer: false,
        readers: 0,
    })
}

/// Creates a model condvar.
pub(crate) fn condvar_create() -> usize {
    register(Res::Condvar)
}

fn wake_blocked_on(s: &mut State, res: usize) {
    for t in s.threads.iter_mut() {
        if *t == Run::BlockedOnRes(res) {
            *t = Run::Runnable;
        }
    }
}

/// Acquires a model lock via `try_acquire`, blocking (in model terms)
/// and retrying until it succeeds.
fn acquire(id: usize, try_acquire: impl Fn(&mut Res) -> bool) {
    yield_point();
    let me = tid();
    let r = rt();
    loop {
        let mut s = lock(r);
        if s.abort {
            return;
        }
        if try_acquire(&mut s.resources[id]) {
            return;
        }
        s.threads[me] = Run::BlockedOnRes(id);
        r.schedule_next(&mut s, me);
        r.wait_token(s, me);
    }
}

/// Releases a model lock and wakes its waiters; itself a yield point.
fn release(id: usize, do_release: impl Fn(&mut Res)) {
    let me = tid();
    let r = rt();
    let mut s = lock(r);
    if s.abort {
        return;
    }
    do_release(&mut s.resources[id]);
    wake_blocked_on(&mut s, id);
    r.schedule_next(&mut s, me);
    r.wait_token(s, me);
}

/// Locks model mutex `id`.
pub(crate) fn mutex_lock(id: usize) {
    acquire(id, |res| match res {
        Res::Mutex { held } if !*held => {
            *held = true;
            true
        }
        _ => false,
    });
}

/// Unlocks model mutex `id`.
pub(crate) fn mutex_unlock(id: usize) {
    release(id, |res| {
        if let Res::Mutex { held } = res {
            *held = false;
        }
    });
}

/// Takes a shared read lock on model rwlock `id`.
pub(crate) fn rwlock_read(id: usize) {
    acquire(id, |res| match res {
        Res::RwLock { writer, readers } if !*writer => {
            *readers += 1;
            true
        }
        _ => false,
    });
}

/// Releases a read lock on model rwlock `id`.
pub(crate) fn rwlock_unlock_read(id: usize) {
    release(id, |res| {
        if let Res::RwLock { readers, .. } = res {
            *readers = readers.saturating_sub(1);
        }
    });
}

/// Takes the exclusive write lock on model rwlock `id`.
pub(crate) fn rwlock_write(id: usize) {
    acquire(id, |res| match res {
        Res::RwLock { writer, readers } if !*writer && *readers == 0 => {
            *writer = true;
            true
        }
        _ => false,
    });
}

/// Releases the write lock on model rwlock `id`.
pub(crate) fn rwlock_unlock_write(id: usize) {
    release(id, |res| {
        if let Res::RwLock { writer, .. } = res {
            *writer = false;
        }
    });
}

/// Condvar wait: atomically releases model mutex `mutex_id`, blocks on
/// `cv_id`, and re-acquires the mutex once woken. The caller must have
/// dropped the std-level guard first.
pub(crate) fn condvar_wait(cv_id: usize, mutex_id: usize) {
    // The wait is itself a visible operation: another thread may run —
    // and fire its notification into the void — between the caller's
    // last check and the moment this thread is parked. Without this
    // yield the model could never express a lost wakeup.
    yield_point();
    let me = tid();
    let r = rt();
    {
        let mut s = lock(r);
        if s.abort {
            return;
        }
        if let Res::Mutex { held } = &mut s.resources[mutex_id] {
            *held = false;
        }
        wake_blocked_on(&mut s, mutex_id);
        s.threads[me] = Run::BlockedOnRes(cv_id);
        r.schedule_next(&mut s, me);
        r.wait_token(s, me);
    }
    mutex_lock(mutex_id);
}

/// Wakes every waiter of condvar `cv_id`.
pub(crate) fn condvar_notify_all(cv_id: usize) {
    let me = tid();
    let r = rt();
    let mut s = lock(r);
    if s.abort {
        return;
    }
    wake_blocked_on(&mut s, cv_id);
    r.schedule_next(&mut s, me);
    r.wait_token(s, me);
}

/// Wakes the lowest-id waiter of condvar `cv_id` (deterministic).
pub(crate) fn condvar_notify_one(cv_id: usize) {
    let me = tid();
    let r = rt();
    let mut s = lock(r);
    if s.abort {
        return;
    }
    for t in s.threads.iter_mut() {
        if *t == Run::BlockedOnRes(cv_id) {
            *t = Run::Runnable;
            break;
        }
    }
    r.schedule_next(&mut s, me);
    r.wait_token(s, me);
}

/// Registers a new model thread; returns its id. Not itself a yield
/// point: the caller must spawn the OS thread first and only then yield,
/// or the scheduler could hand the token to a thread that does not exist
/// yet.
pub(crate) fn register_thread() -> usize {
    let _ = tid();
    let r = rt();
    let mut s = lock(r);
    s.threads.push(Run::Runnable);
    s.threads.len() - 1
}

/// First call from a freshly spawned OS thread: adopt `id` and wait for
/// the scheduler to hand over the token.
pub(crate) fn enter_thread(id: usize) {
    TID.with(|c| c.set(id));
    let r = rt();
    let s = lock(r);
    r.wait_token(s, id);
}

/// Marks the calling thread finished and hands the token on. Does not
/// return the token — the OS thread exits afterwards.
pub(crate) fn finish_thread() {
    let me = tid();
    let r = rt();
    let mut s = lock(r);
    if s.abort {
        return;
    }
    s.threads[me] = Run::Finished;
    for t in s.threads.iter_mut() {
        if *t == Run::BlockedOnJoin(me) {
            *t = Run::Runnable;
        }
    }
    r.schedule_next(&mut s, me);
}

/// Records a panic that escaped a model thread as the iteration's
/// failure and aborts the iteration. Returns without scheduling.
pub(crate) fn fail_thread(payload: &(dyn std::any::Any + Send)) {
    let me = tid();
    let r = rt();
    let mut s = lock(r);
    if s.abort {
        // Our own abort panic unwound back here — not a model failure.
        return;
    }
    let msg = payload
        .downcast_ref::<&str>()
        .map(|m| (*m).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    s.failure = Some(format!("thread {me} panicked: {msg}"));
    s.threads[me] = Run::Finished;
    s.abort = true;
    s.iteration_done = true;
    r.cv.notify_all();
}

/// Blocks (in model terms) until thread `target` finishes.
pub(crate) fn join_thread(target: usize) {
    yield_point();
    let me = tid();
    let r = rt();
    let mut s = lock(r);
    if s.abort {
        return;
    }
    if s.threads[target] == Run::Finished {
        return;
    }
    s.threads[me] = Run::BlockedOnJoin(target);
    r.schedule_next(&mut s, me);
    r.wait_token(s, me);
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs one iteration under the schedule prefix; returns the extended
/// schedule and the failure, if any.
fn run_iteration(
    f: Arc<dyn Fn() + Send + Sync>,
    schedule: Vec<Choice>,
    bound: usize,
) -> (Vec<Choice>, Option<String>) {
    let r = rt();
    {
        let mut s = lock(r);
        *s = State::fresh(schedule, bound);
    }
    let body = std::thread::Builder::new()
        .name("loom-model-0".to_string())
        .spawn(move || {
            enter_thread(0);
            match catch_unwind(AssertUnwindSafe(|| f())) {
                Ok(()) => finish_thread(),
                Err(p) => fail_thread(p.as_ref()),
            }
        });
    let mut s = lock(r);
    match body {
        Ok(handle) => {
            while !s.iteration_done {
                s = r.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
            }
            let out = std::mem::take(&mut s.schedule);
            let failure = s.failure.take();
            drop(s);
            let _ = handle.join();
            (out, failure)
        }
        Err(e) => (Vec::new(), Some(format!("cannot spawn model thread: {e}"))),
    }
}

/// Count of iterations explored by the most recent [`model`] call —
/// lets a meta-test assert the search actually branched.
pub fn last_iteration_count() -> usize {
    ITERS.load(Ordering::Relaxed)
}

static ITERS: StdAtomicUsize = StdAtomicUsize::new(0);

/// Exhaustively explores the schedules of `f` (up to the preemption
/// bound) and panics on the first assertion failure, panic, or deadlock,
/// reporting the iteration that exposed it.
///
/// Environment knobs: `LOOM_PREEMPTION_BOUND` (default 3) and
/// `LOOM_MAX_ITERATIONS` (default 200000 — exceeding it is an error,
/// not a silent truncation).
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let _serial = model_lock().lock().unwrap_or_else(PoisonError::into_inner);
    let bound = env_usize("LOOM_PREEMPTION_BOUND", 3);
    let max_iters = env_usize("LOOM_MAX_ITERATIONS", 200_000);
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    // Intentional model panics (e.g. a modeled worker kill) would spam
    // stderr through the default hook on every iteration.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut schedule: Vec<Choice> = Vec::new();
    let mut iters = 0usize;
    let outcome = loop {
        iters += 1;
        if iters > max_iters {
            break Some(format!(
                "schedule space not exhausted after {max_iters} iterations; \
                 shrink the model or raise LOOM_MAX_ITERATIONS"
            ));
        }
        let (explored, failure) = run_iteration(Arc::clone(&f), schedule, bound);
        if let Some(msg) = failure {
            break Some(format!("model failed on iteration {iters}: {msg}"));
        }
        schedule = explored;
        loop {
            match schedule.last_mut() {
                None => break,
                Some(c) if c.picked + 1 < c.options => {
                    c.picked += 1;
                    break;
                }
                Some(_) => {
                    schedule.pop();
                }
            }
        }
        if schedule.is_empty() {
            break None;
        }
    };
    std::panic::set_hook(prev_hook);
    ITERS.store(iters, Ordering::Relaxed);
    if let Some(msg) = outcome {
        panic!("loom: {msg}");
    }
}
