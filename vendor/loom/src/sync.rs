//! Scheduler-aware shims of the `std::sync` types the models use.
//!
//! Each type pairs a *model-level* lock state (owned by the scheduler in
//! [`crate::rt`], where blocking and waking are scheduling decisions)
//! with a *std-level* container for the protected data. Because the
//! scheduler serializes model threads and grants a model lock to at most
//! the permitted holders, the inner std lock is always uncontended — it
//! exists to move the data and hand out guards, not to synchronize.

use crate::rt;
use std::sync::PoisonError;

pub use std::sync::Arc;

pub mod atomic {
    //! Scheduler-aware atomics: every operation is a yield point, so the
    //! model explores the interleavings around it. Orderings are
    //! accepted for API fidelity but the model executes sequentially
    //! consistently — weaker-memory reorderings are out of scope (see
    //! the crate docs).

    use crate::rt;
    pub use std::sync::atomic::Ordering;
    use std::sync::atomic::{
        AtomicBool as StdBool, AtomicU64 as StdU64, AtomicUsize as StdUsize, Ordering::SeqCst,
    };

    macro_rules! atomic_shim {
        ($(#[$doc:meta])* $name:ident, $std:ident, $prim:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Creates the atomic with an initial value.
                pub fn new(v: $prim) -> Self {
                    Self { inner: $std::new(v) }
                }

                /// Atomic load (a scheduling point).
                pub fn load(&self, _order: Ordering) -> $prim {
                    rt::yield_point();
                    self.inner.load(SeqCst)
                }

                /// Atomic store (a scheduling point).
                pub fn store(&self, v: $prim, _order: Ordering) {
                    rt::yield_point();
                    self.inner.store(v, SeqCst);
                }

                /// Atomic swap (a scheduling point).
                pub fn swap(&self, v: $prim, _order: Ordering) -> $prim {
                    rt::yield_point();
                    self.inner.swap(v, SeqCst)
                }

                /// Atomic compare-exchange (a scheduling point).
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$prim, $prim> {
                    rt::yield_point();
                    self.inner.compare_exchange(current, new, SeqCst, SeqCst)
                }
            }
        };
    }

    atomic_shim!(
        /// Model `AtomicBool`.
        AtomicBool,
        StdBool,
        bool
    );

    macro_rules! atomic_arith {
        ($name:ident, $prim:ty) => {
            impl $name {
                /// Atomic add returning the previous value (a scheduling
                /// point).
                pub fn fetch_add(&self, v: $prim, _order: Ordering) -> $prim {
                    rt::yield_point();
                    self.inner.fetch_add(v, SeqCst)
                }

                /// Atomic subtract returning the previous value (a
                /// scheduling point).
                pub fn fetch_sub(&self, v: $prim, _order: Ordering) -> $prim {
                    rt::yield_point();
                    self.inner.fetch_sub(v, SeqCst)
                }
            }
        };
    }

    atomic_shim!(
        /// Model `AtomicUsize`.
        AtomicUsize,
        StdUsize,
        usize
    );
    atomic_arith!(AtomicUsize, usize);

    atomic_shim!(
        /// Model `AtomicU64`.
        AtomicU64,
        StdU64,
        u64
    );
    atomic_arith!(AtomicU64, u64);
}

/// Model mutex. Lock/unlock are scheduling points; contention blocks the
/// model thread in the scheduler.
#[derive(Debug)]
pub struct Mutex<T> {
    id: usize,
    data: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releases the model lock on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates the mutex inside a running model.
    pub fn new(t: T) -> Mutex<T> {
        Mutex {
            id: rt::mutex_create(),
            data: std::sync::Mutex::new(t),
        }
    }

    /// Acquires the lock, blocking the model thread while held
    /// elsewhere. Never poisoned: a panicking model thread aborts the
    /// whole iteration instead.
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, PoisonError<MutexGuard<'_, T>>> {
        rt::mutex_lock(self.id);
        let inner = self.data.lock().unwrap_or_else(PoisonError::into_inner);
        Ok(MutexGuard {
            lock: self,
            inner: Some(inner),
        })
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard still holds data")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard still holds data")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Free the std-level lock before the model-level release hands
        // the token to a contender.
        self.inner = None;
        rt::mutex_unlock(self.lock.id);
    }
}

/// Model readers-writer lock with the same discipline as [`Mutex`].
#[derive(Debug)]
pub struct RwLock<T> {
    id: usize,
    data: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
}

impl<T> RwLock<T> {
    /// Creates the rwlock inside a running model.
    pub fn new(t: T) -> RwLock<T> {
        RwLock {
            id: rt::rwlock_create(),
            data: std::sync::RwLock::new(t),
        }
    }

    /// Takes a shared read lock.
    pub fn read(&self) -> Result<RwLockReadGuard<'_, T>, PoisonError<RwLockReadGuard<'_, T>>> {
        rt::rwlock_read(self.id);
        let inner = self.data.read().unwrap_or_else(PoisonError::into_inner);
        Ok(RwLockReadGuard {
            lock: self,
            inner: Some(inner),
        })
    }

    /// Takes the exclusive write lock.
    pub fn write(&self) -> Result<RwLockWriteGuard<'_, T>, PoisonError<RwLockWriteGuard<'_, T>>> {
        rt::rwlock_write(self.id);
        let inner = self.data.write().unwrap_or_else(PoisonError::into_inner);
        Ok(RwLockWriteGuard {
            lock: self,
            inner: Some(inner),
        })
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard still holds data")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        rt::rwlock_unlock_read(self.lock.id);
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard still holds data")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard still holds data")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        rt::rwlock_unlock_write(self.lock.id);
    }
}

/// Model condition variable: waiting blocks the model thread in the
/// scheduler, and a notify that nobody awaits is lost, exactly as with
/// the real thing.
#[derive(Debug)]
pub struct Condvar {
    id: usize,
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl Condvar {
    /// Creates the condvar inside a running model.
    pub fn new() -> Condvar {
        Condvar {
            id: rt::condvar_create(),
        }
    }

    /// Releases the guard's mutex, waits for a notification, and
    /// re-acquires the mutex.
    pub fn wait<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
    ) -> Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>> {
        let lock = guard.lock;
        // Drop the std guard by hand, then forget the model guard so its
        // Drop does not also release the model lock — condvar_wait does
        // that atomically with blocking.
        guard.inner = None;
        std::mem::forget(guard);
        rt::condvar_wait(self.id, lock.id);
        let inner = lock.data.lock().unwrap_or_else(PoisonError::into_inner);
        Ok(MutexGuard {
            lock,
            inner: Some(inner),
        })
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        rt::condvar_notify_all(self.id);
    }

    /// Wakes one waiter (the lowest thread id, deterministically).
    pub fn notify_one(&self) {
        rt::condvar_notify_one(self.id);
    }
}
