//! Sanity suite for the vendored model checker itself: it must catch
//! classic concurrency bugs (lost updates, deadlocks, missed wakeups)
//! and pass their correct counterparts. If the checker cannot find a
//! planted bug, a green serve model means nothing.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn fails(f: impl Fn() + Send + Sync + 'static) -> bool {
    catch_unwind(AssertUnwindSafe(|| loom::model(f))).is_err()
}

#[test]
fn detects_lost_update_from_check_then_act() {
    assert!(fails(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    // Racy read-modify-write: load, then store load + 1.
                    let v = n.load(Ordering::SeqCst);
                    n.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread");
        }
        assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
    }));
}

#[test]
fn passes_fetch_add_counter() {
    loom::model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread");
        }
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
    assert!(
        loom::rt::last_iteration_count() > 1,
        "two racing threads must produce more than one schedule"
    );
}

#[test]
fn detects_lock_order_inversion_deadlock() {
    assert!(fails(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _g1 = b2.lock().expect("lock b");
            let _g2 = a2.lock().expect("lock a");
        });
        {
            let _g1 = a.lock().expect("lock a");
            let _g2 = b.lock().expect("lock b");
        }
        t.join().expect("model thread");
    }));
}

#[test]
fn passes_consistent_lock_order() {
    loom::model(|| {
        let a = Arc::new(Mutex::new(0usize));
        let b = Arc::new(Mutex::new(0usize));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let mut g1 = a2.lock().expect("lock a");
            let mut g2 = b2.lock().expect("lock b");
            *g1 += 1;
            *g2 += 1;
        });
        {
            let mut g1 = a.lock().expect("lock a");
            let mut g2 = b.lock().expect("lock b");
            *g1 += 1;
            *g2 += 1;
        }
        t.join().expect("model thread");
        assert_eq!(*a.lock().expect("lock a"), 2);
        assert_eq!(*b.lock().expect("lock b"), 2);
    });
}

#[test]
fn mutex_guard_provides_exclusion() {
    loom::model(|| {
        let n = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    // Read-modify-write under one guard: no interleaving
                    // may lose an increment.
                    let mut g = n.lock().expect("lock");
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread");
        }
        assert_eq!(*n.lock().expect("lock"), 2);
    });
}

#[test]
fn detects_missed_condvar_wakeup() {
    // The flag lives outside the condvar's mutex, so the notify can land
    // between the waiter's check and its wait() — lost, leaving the
    // waiter asleep forever. The checker must flag that schedule as a
    // deadlock.
    assert!(fails(|| {
        let flag = Arc::new(AtomicUsize::new(0));
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let (f2, p2) = (Arc::clone(&flag), Arc::clone(&pair));
        let t = thread::spawn(move || {
            f2.store(1, Ordering::SeqCst);
            p2.1.notify_one();
        });
        let (lock, cv) = &*pair;
        let guard = lock.lock().expect("lock");
        if flag.load(Ordering::SeqCst) == 0 {
            let _guard = cv.wait(guard).expect("wait");
        }
        t.join().expect("model thread");
    }));
}

#[test]
fn passes_condvar_handshake() {
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*p2;
            *lock.lock().expect("lock") = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock().expect("lock");
        while !*ready {
            ready = cv.wait(ready).expect("wait");
        }
        t.join().expect("model thread");
    });
}
