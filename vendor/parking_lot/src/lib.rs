//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! surface (guards are returned directly from `lock`/`read`/`write`). The
//! behavioural difference from real parking_lot is performance only; the
//! semantics this workspace relies on — mutual exclusion and non-poisoning
//! locks — are identical.

#![deny(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison: a panicking holder simply
/// releases the lock.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock that does not poison.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // A poisoned std mutex would panic here; the shim must not.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
