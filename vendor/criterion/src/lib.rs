//! Offline shim for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the criterion API subset its benches use: `criterion_group!` /
//! `criterion_main!`, benchmark groups with `sample_size` / `throughput`,
//! `bench_function` / `bench_with_input`, and `Bencher::iter`.
//!
//! Measurement is deliberately simple — a short calibration pass sizes the
//! batch, then each sample times a batch and the median ns/iteration is
//! printed. No statistics beyond that; the benches exist to show relative
//! magnitudes and catch order-of-magnitude regressions offline.

#![deny(missing_docs)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement driver passed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    samples: u32,
    /// Median nanoseconds per iteration of the last `iter` run.
    last_ns: f64,
}

impl Bencher {
    /// Times the closure and records median ns/iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit in ~2 ms?
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let batch = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / f64::from(batch));
        }
        per_iter.sort_by(f64::total_cmp);
        self.last_ns = per_iter[per_iter.len() / 2];
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id like `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    samples: u32,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2) as u32;
        self
    }

    /// Annotates per-iteration throughput (printed alongside the timing).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            last_ns: 0.0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.last_ns, self.throughput);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            last_ns: 0.0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.last_ns, self.throughput);
        self
    }

    /// Finishes the group (accepted for API compatibility).
    pub fn finish(self) {}
}

fn report(label: &str, ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        // n items per iteration, ns nanoseconds per iteration:
        // items/ns == Gitems/s, so ×1000 gives M/s.
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            format!("  {:.2} Melem/s", n as f64 / ns * 1000.0)
        }
        Some(Throughput::Bytes(n)) if ns > 0.0 => {
            format!("  {:.2} MB/s", n as f64 / ns * 1000.0)
        }
        _ => String::new(),
    };
    println!("bench {label:<50} {ns:>12.1} ns/iter{rate}");
}

/// The benchmark context handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            samples: 10,
            throughput: None,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: 10,
            last_ns: 0.0,
        };
        f(&mut b);
        report(&format!("{id}"), b.last_ns, None);
        self
    }
}

/// Declares a group function running each target with a fresh context.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            $(
                let mut c = $crate::Criterion::default();
                $target(&mut c);
            )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(4));
        g.bench_function("sum", |b| b.iter(|| (0..4u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn group_runs() {
        benches();
    }
}
