//! Offline shim for the `proptest` crate.
//!
//! Provides the subset of proptest this workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`, numeric range and tuple
//! strategies, `prop::collection::vec`, `prop::option::of`, a small
//! character-class string strategy, and the `proptest!` /
//! `prop_assert*!` / `prop_assume!` macros with
//! `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its case number and the
//!   deterministic per-test seed instead of a minimised input.
//! * **Deterministic generation.** The RNG seed derives from the test
//!   function's name, so failures reproduce across runs without a
//!   `proptest-regressions` file.

#![deny(missing_docs)]

pub mod test_runner {
    //! Test-case plumbing used by the [`crate::proptest!`] macro.

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs — skip, don't fail.
        Reject(String),
        /// `prop_assert*!` failed — the property is violated.
        Fail(String),
    }

    /// A deterministic split-mix-64 RNG; one instance per property test,
    /// seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from an arbitrary label (the test name).
        pub fn deterministic(label: &str) -> TestRng {
            let mut seed: u64 = 0x9e37_79b9_7f4a_7c15;
            for b in label.bytes() {
                seed = (seed ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
            }
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform integer in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            // Modulo bias is irrelevant at test-generation quality.
            self.next_u64() % n.max(1)
        }
    }
}

pub mod strategy {
    //! Input-generation strategies.

    use crate::test_runner::TestRng;

    /// Generates values of an input domain. The shim's strategies generate
    /// directly (no value tree / shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through a function.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Chains a follow-up strategy computed from the generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    debug_assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = rng.below(span as u64) as i128;
                    ((self.start as i128) + off) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    debug_assert!(lo <= hi, "empty range strategy");
                    let off = rng.below((hi - lo + 1) as u64) as i128;
                    (lo + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }

    impl Strategy for ::std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (self.end - self.start) * rng.next_f64() as f32
        }
    }

    impl Strategy for ::std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // next_f64 is in [0, 1); close enough to inclusive for floats.
            self.start() + (self.end() - self.start()) * rng.next_f64()
        }
    }

    impl Strategy for ::std::ops::RangeInclusive<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start() + (self.end() - self.start()) * rng.next_f64() as f32
        }
    }

    /// A tiny regex-subset string strategy: one character class (literals
    /// and `a-z` ranges) with an optional `{m}` / `{m,n}` repetition, e.g.
    /// `"[a-z!@#]{1,8}"`. Anything else is generated verbatim.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_char_class(self) {
                Some((chars, lo, hi)) if !chars.is_empty() => {
                    let n = lo + rng.below((hi - lo + 1) as u64) as usize;
                    (0..n)
                        .map(|_| chars[rng.below(chars.len() as u64) as usize])
                        .collect()
                }
                _ => (*self).to_string(),
            }
        }
    }

    /// Parses `[class]{m,n}` / `[class]{m}` / `[class]`; `None` when the
    /// pattern is not of that shape.
    fn parse_char_class(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i] as u32, class[i + 2] as u32);
                for c in a..=b {
                    chars.extend(char::from_u32(c));
                }
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        let tail = &rest[close + 1..];
        if tail.is_empty() {
            return Some((chars, 1, 1));
        }
        let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match counts.split_once(',') {
            Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        Some((chars, lo, hi))
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

pub mod collection {
    //! `prop::collection` — container strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification: either an exact length or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from the size range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len)` — vectors of generated
    /// elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `prop::option` — optional-value strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`, mostly `Some`.
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `prop::option::of(element)` — `None` roughly one time in four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // `PROPTEST_CASES` overrides the default case count, matching the
        // upstream crate's env knob. The `analysis` stage of ci.sh relies
        // on it to shrink property suites to Miri-feasible sizes without
        // touching the tests themselves.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

pub mod prelude {
    //! Everything a property-test module needs in scope.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Defines property tests: `proptest! { #[test] fn p(x in 0..10) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

/// Internal: expands each `fn name(args…) { body }` item in turn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                ::std::module_path!(), "::", ::std::stringify!($name)
            ));
            let mut rejected: u32 = 0;
            let mut case: u32 = 0;
            while case < cfg.cases {
                let ($($pat,)+) = ($(($strat).generate(&mut rng),)+);
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => case += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < cfg.cases * 16 + 256,
                            "proptest '{}': too many prop_assume! rejections",
                            ::std::stringify!($name),
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {}: {}",
                            ::std::stringify!($name), case, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not the
/// process) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*))
            );
        }
    };
}

/// Asserts two expressions are equal inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assume failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u8..7, y in -2.0f64..2.0, z in 1usize..=4) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn vec_and_option(xs in prop::collection::vec(0u64..10, 2..6), o in prop::option::of(1u8..3)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|v| *v < 10));
            if let Some(v) = o {
                prop_assert!(v >= 1 && v < 3);
            }
        }

        #[test]
        fn map_and_tuples((a, b) in (0u32..5, 10u32..15).prop_map(|(x, y)| (y, x))) {
            prop_assert!((10..15).contains(&a));
            prop_assert!(b < 5);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn string_class(s in "[a-c!]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4, "bad len {}", s.len());
            prop_assert!(s.chars().all(|c| ['a', 'b', 'c', '!'].contains(&c)));
        }

        #[test]
        fn assume_skips(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_rng() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("seed");
        let mut b = TestRng::deterministic("seed");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
