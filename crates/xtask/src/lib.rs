//! # xtask — the workspace conformance linter
//!
//! A repo-specific static-analysis pass (pure `std`, no external deps) run
//! as `cargo run -p xtask -- lint`. It enforces the correctness conventions
//! the compiler cannot express:
//!
//! * **`no_panics`** (R1) — no `.unwrap()` / `.expect(` / `panic!` /
//!   `todo!` / `unimplemented!` in the hot-path crates (`engine`, `core`,
//!   `sketch`, `hexgrid`) outside test code. A worker thread that panics
//!   mid-stage costs an entire pipeline run; fallible paths must return
//!   typed errors instead.
//! * **`safety_comment`** (R2) — every `unsafe` token must carry a
//!   `// SAFETY:` comment on the same line or within the three lines above.
//! * **`no_f32`** (R3) — no `f32` in the coordinate crates (`geo`,
//!   `hexgrid`): single precision is ~1 m at equatorial longitudes, which
//!   silently corrupts cell assignment near cell boundaries.
//! * **`seqcst_justify`** (R4) — `Ordering::SeqCst` outside test code must
//!   carry a nearby comment mentioning `SeqCst` that justifies why a
//!   cheaper ordering is not correct.
//! * **`lint_wall`** (R5) — every crate's `lib.rs` must open with
//!   `#![deny(missing_docs)]` and its `Cargo.toml` must opt into the
//!   workspace lint table (`[lints] workspace = true`).
//!
//! ## Escape hatch
//!
//! Any diagnostic can be suppressed with a comment of the form
//! `// lint: allow(<rule>) — <reason>` placed on the offending line or on
//! one of the six lines above it (so a short comment block above a
//! multi-line expression covers the whole expression). The reason is
//! mandatory by convention: the hatch exists for *proven* invariants, not
//! for convenience.
//!
//! ## Scope
//!
//! The linter walks `crates/*/` only (vendored shims under `vendor/` are
//! third-party API stand-ins). Directories named `tests`, `benches` or
//! `examples` and inline `#[cfg(test)]` modules are exempt from R1 and R4;
//! R2 applies everywhere; paths containing a `fixtures` component are
//! skipped entirely (they are lint-rule test *data*, full of deliberate
//! violations).
//!
//! Matching is token-based on a comment- and string-stripped view of each
//! line, so `"unsafe"` inside a string literal or `panic!` inside a doc
//! comment never fires.

#![deny(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose non-test code must be panic-free (R1). `serve` is hot:
/// a panic in a connection worker would silently shrink the pool.
/// `chaos` is held to the same bar because its no-op form is compiled
/// into every hot path (its deliberate Kill panic carries an allow).
pub const HOT_CRATES: [&str; 6] = ["engine", "core", "sketch", "hexgrid", "serve", "chaos"];

/// Crates whose coordinate math must stay in double precision (R3).
pub const F64_ONLY_CRATES: [&str; 2] = ["geo", "hexgrid"];

/// The conformance rules, in the order they are documented.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    /// R1: no panicking constructs in hot-path crates.
    NoPanics,
    /// R2: `unsafe` requires a `// SAFETY:` comment.
    SafetyComment,
    /// R3: no `f32` in coordinate crates.
    NoF32,
    /// R4: `SeqCst` requires a justification comment.
    SeqCstJustify,
    /// R5: per-crate lint-wall opt-in (`#![deny(missing_docs)]` +
    /// `[lints] workspace = true`).
    LintWall,
}

impl Rule {
    /// The rule's name as used in diagnostics and allow-comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanics => "no_panics",
            Rule::SafetyComment => "safety_comment",
            Rule::NoF32 => "no_f32",
            Rule::SeqCstJustify => "seqcst_justify",
            Rule::LintWall => "lint_wall",
        }
    }
}

/// One rule violation at a source location.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// File the violation is in (relative to the linted root).
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Splits source lines into a code part and a comment part, tracking
/// multi-line `/* */` comments and removing the contents of string and
/// char literals from the code part so pattern matching never fires on
/// text.
#[derive(Default)]
struct LineSplitter {
    in_block_comment: bool,
}

impl LineSplitter {
    /// Returns `(code, comment)` for one source line.
    fn split(&mut self, line: &str) -> (String, String) {
        let mut code = String::with_capacity(line.len());
        let mut comment = String::new();
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if self.in_block_comment {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    self.in_block_comment = false;
                    i += 2;
                } else {
                    comment.push(chars[i]);
                    i += 1;
                }
                continue;
            }
            let c = chars[i];
            match c {
                '/' if chars.get(i + 1) == Some(&'/') => {
                    // Line comment: the rest of the line is comment text.
                    comment.extend(&chars[i..]);
                    break;
                }
                '/' if chars.get(i + 1) == Some(&'*') => {
                    self.in_block_comment = true;
                    i += 2;
                }
                '"' => {
                    // String literal (possibly preceded by b/r prefixes that
                    // were already emitted as code): skip to the closing
                    // quote, honouring backslash escapes.
                    code.push('"');
                    i += 1;
                    while i < chars.len() {
                        match chars[i] {
                            '\\' => i += 2,
                            '"' => {
                                code.push('"');
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                }
                '\'' => {
                    // Char literal vs lifetime: a literal closes within a
                    // few chars (`'x'`, `'\n'`, `'\u{1F30A}'`).
                    let rest = &chars[i + 1..];
                    let close = rest.iter().take(12).position(|&c| c == '\'');
                    match close {
                        Some(n) if n > 0 => {
                            code.push('\'');
                            code.push('\'');
                            i += n + 2;
                        }
                        _ => {
                            // A lifetime (or stray quote): keep as code.
                            code.push('\'');
                            i += 1;
                        }
                    }
                }
                _ => {
                    code.push(c);
                    i += 1;
                }
            }
        }
        (code, comment)
    }
}

/// A pre-processed source file: per-line code/comment views plus the set of
/// lines that live inside `#[cfg(test)]` modules.
struct SourceFile {
    code: Vec<String>,
    comment: Vec<String>,
    in_test_mod: Vec<bool>,
}

impl SourceFile {
    fn parse(text: &str) -> SourceFile {
        let mut splitter = LineSplitter::default();
        let (mut code, mut comment) = (Vec::new(), Vec::new());
        for line in text.lines() {
            let (c, m) = splitter.split(line);
            code.push(c);
            comment.push(m);
        }
        let in_test_mod = mark_test_mods(&code);
        SourceFile {
            code,
            comment,
            in_test_mod,
        }
    }

    /// Whether an allow-comment for `rule` covers 0-based line `idx`
    /// (same line or up to six lines above).
    fn allowed(&self, rule: Rule, idx: usize) -> bool {
        let needle = format!("lint: allow({})", rule.name());
        let lo = idx.saturating_sub(6);
        self.comment[lo..=idx].iter().any(|c| c.contains(&needle))
    }

    /// Whether any comment in the window `[idx-above, idx]` contains
    /// `needle` (used for `SAFETY:` and `SeqCst` justifications).
    fn comment_near(&self, needle: &str, idx: usize, above: usize) -> bool {
        let lo = idx.saturating_sub(above);
        self.comment[lo..=idx].iter().any(|c| c.contains(needle))
    }
}

/// Marks the lines belonging to `#[cfg(test)]` items by brace tracking:
/// from a `#[cfg(test)]` attribute (including compound forms like
/// `#[cfg(all(test, feature = "..."))]`, but not `not(test)`) to the
/// close of the brace block that starts on the next code line (or to the
/// first `;` for braceless items).
fn mark_test_mods(code: &[String]) -> Vec<bool> {
    let mut flags = vec![false; code.len()];
    let mut depth: i64 = 0;
    let mut armed = false;
    let mut region_close: Option<i64> = None;
    for (i, line) in code.iter().enumerate() {
        let test_cfg = line.contains("#[cfg(")
            && !line.contains("not(test")
            && !token_lines(std::slice::from_ref(line), "test").is_empty();
        if test_cfg {
            armed = true;
        }
        if armed || region_close.is_some() {
            flags[i] = true;
        }
        let opens = line.matches('{').count() as i64;
        let closes = line.matches('}').count() as i64;
        if armed {
            if opens > 0 {
                region_close = Some(depth);
                armed = false;
            } else if line.contains(';') {
                armed = false;
            }
        }
        depth += opens - closes;
        if let Some(d) = region_close {
            if depth <= d {
                region_close = None;
            }
        }
    }
    flags
}

/// Returns 1-based line numbers where `token` appears in `code` with
/// non-identifier characters (or line edges) on both sides.
fn token_lines(code: &[String], token: &str) -> Vec<usize> {
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut out = Vec::new();
    for (i, line) in code.iter().enumerate() {
        let mut from = 0;
        while let Some(pos) = line[from..].find(token) {
            let start = from + pos;
            let end = start + token.len();
            let ok_before =
                start == 0 || !is_ident(line[..start].chars().next_back().unwrap_or(' '));
            let ok_after =
                end >= line.len() || !is_ident(line[end..].chars().next().unwrap_or(' '));
            if ok_before && ok_after {
                out.push(i + 1);
                break; // one diagnostic per line is enough
            }
            from = end;
        }
    }
    out
}

/// The panicking constructs banned from hot-path crates. `.expect(` and
/// `.unwrap()` are matched with their punctuation so `unwrap_or` and
/// `expect_err` stay legal.
const PANIC_PATTERNS: [&str; 5] = [".unwrap()", ".expect(", "panic!", "todo!", "unimplemented!"];

fn scan_rust_file(
    rel: &Path,
    text: &str,
    crate_name: &str,
    in_tests_dir: bool,
    out: &mut Vec<Diagnostic>,
) {
    let file = SourceFile::parse(text);
    let hot = HOT_CRATES.contains(&crate_name);
    let f64_only = F64_ONLY_CRATES.contains(&crate_name);

    for (i, code) in file.code.iter().enumerate() {
        let line = i + 1;
        let testish = in_tests_dir || file.in_test_mod[i];

        // R1 — no panicking constructs on hot paths.
        if hot && !testish {
            for pat in PANIC_PATTERNS {
                let hit = if pat.ends_with('!') {
                    // Macro: require a non-identifier char before the name.
                    token_lines(std::slice::from_ref(code), pat)
                        .first()
                        .is_some()
                } else {
                    code.contains(pat)
                };
                if hit && !file.allowed(Rule::NoPanics, i) {
                    out.push(Diagnostic {
                        path: rel.to_path_buf(),
                        line,
                        rule: Rule::NoPanics,
                        message: format!(
                            "`{pat}` in hot-path crate `{crate_name}`: return a typed error \
                             or add `// lint: allow(no_panics) — <reason>` for a proven invariant"
                        ),
                    });
                    break;
                }
            }
        }

        // R2 — unsafe needs a SAFETY comment (applies everywhere).
        if !token_lines(std::slice::from_ref(code), "unsafe").is_empty()
            && !file.comment_near("SAFETY:", i, 3)
            && !file.allowed(Rule::SafetyComment, i)
        {
            out.push(Diagnostic {
                path: rel.to_path_buf(),
                line,
                rule: Rule::SafetyComment,
                message: "`unsafe` without a `// SAFETY:` comment on the same line \
                          or within the three lines above"
                    .to_string(),
            });
        }

        // R3 — no f32 in coordinate crates.
        if f64_only
            && !token_lines(std::slice::from_ref(code), "f32").is_empty()
            && !file.allowed(Rule::NoF32, i)
        {
            out.push(Diagnostic {
                path: rel.to_path_buf(),
                line,
                rule: Rule::NoF32,
                message: format!(
                    "`f32` in coordinate crate `{crate_name}`: single precision corrupts \
                     cell assignment; use f64"
                ),
            });
        }

        // R4 — SeqCst needs justification (non-test code only).
        if !testish
            && !token_lines(std::slice::from_ref(code), "SeqCst").is_empty()
            && !file.comment_near("SeqCst", i, 3)
            && !file.allowed(Rule::SeqCstJustify, i)
        {
            out.push(Diagnostic {
                path: rel.to_path_buf(),
                line,
                rule: Rule::SeqCstJustify,
                message: "`Ordering::SeqCst` without a justification comment: state why \
                          a cheaper ordering is not correct, or relax it"
                    .to_string(),
            });
        }
    }
}

/// Whether a crate manifest opts into the workspace lint table: a
/// `[lints]` section containing `workspace = true` (before the next
/// section header).
fn manifest_opts_into_lints(manifest: &str) -> bool {
    let mut in_lints = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_lints = t == "[lints]";
            continue;
        }
        if in_lints && t.replace(' ', "") == "workspace=true" {
            return true;
        }
    }
    false
}

fn walk_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Fixture trees are lint-rule test data, not workspace code.
            if name == "fixtures" || name == "target" {
                continue;
            }
            walk_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints one crate directory (`<root>/crates/<name>`), appending
/// diagnostics with paths relative to `root`.
fn lint_crate(root: &Path, crate_dir: &Path, out: &mut Vec<Diagnostic>) -> io::Result<()> {
    let crate_name = crate_dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let rel = |p: &Path| p.strip_prefix(root).unwrap_or(p).to_path_buf();

    // R5 — manifest opts into the workspace lint table.
    let manifest_path = crate_dir.join("Cargo.toml");
    let manifest = fs::read_to_string(&manifest_path)?;
    if !manifest_opts_into_lints(&manifest) {
        out.push(Diagnostic {
            path: rel(&manifest_path),
            line: 1,
            rule: Rule::LintWall,
            message: "crate does not opt into the workspace lint table: add \
                      `[lints]\\nworkspace = true`"
                .to_string(),
        });
    }

    // R5 — lib.rs carries the missing-docs wall explicitly.
    let lib_path = crate_dir.join("src").join("lib.rs");
    if lib_path.is_file() {
        let lib = fs::read_to_string(&lib_path)?;
        if !lib.contains("#![deny(missing_docs)]") {
            out.push(Diagnostic {
                path: rel(&lib_path),
                line: 1,
                rule: Rule::LintWall,
                message: "lib.rs must carry `#![deny(missing_docs)]`".to_string(),
            });
        }
    }

    // R1–R4 over every .rs file in the crate.
    let mut files = Vec::new();
    walk_rs_files(crate_dir, &mut files)?;
    files.sort();
    for path in files {
        let in_tests_dir = path
            .strip_prefix(crate_dir)
            .ok()
            .map(|p| {
                p.components().any(|c| {
                    matches!(
                        c.as_os_str().to_string_lossy().as_ref(),
                        "tests" | "benches" | "examples"
                    )
                })
            })
            .unwrap_or(false);
        let text = fs::read_to_string(&path)?;
        scan_rust_file(&rel(&path), &text, &crate_name, in_tests_dir, out);
    }
    Ok(())
}

/// Runs the full conformance pass over a workspace root, returning all
/// diagnostics sorted by path and line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    crate_dirs.sort();
    let mut out = Vec::new();
    for dir in crate_dirs {
        lint_crate(root, &dir, &mut out)?;
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(out)
}
