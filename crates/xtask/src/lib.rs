//! # xtask — the workspace conformance linter
//!
//! A repo-specific static-analysis pass (pure `std`, no external deps)
//! run as `cargo run -p xtask -- lint [--format json]`. It enforces the
//! correctness conventions the compiler cannot express. Each rule lives
//! in [`rules`] and visits the shared pre-parsed [`source::SourceFile`]
//! substrate; workspace configuration comes from `xtask.toml` at the
//! linted root ([`config::Config`]).
//!
//! The catalog (see `DESIGN.md` §6 for what each rule *proves*):
//!
//! * **`no_unwrap`** (R1) — no panicking constructs (`unwrap`/`expect`/
//!   panic macros/literal slice indexing) outside test code, in every
//!   crate; CLI entry points under `[no_unwrap] exempt_dirs` excepted.
//! * **`safety_comment`** (R2) — every `unsafe` token carries a
//!   `// SAFETY:` comment on the same line or within three lines above.
//! * **`unsafe_audit`** (R3) — non-test `unsafe` contracts additionally
//!   name the exercising test (`tested by: <test>`), and the named test
//!   must exist somewhere in the workspace.
//! * **`no_f32`** (R4) — no `f32` in the coordinate crates.
//! * **`seqcst_justify`** (R5) — `SeqCst` outside test code carries a
//!   justification comment.
//! * **`lint_wall`** (R6) — every crate's `lib.rs` opens with
//!   `#![deny(missing_docs)]` and its manifest opts into the workspace
//!   lint table.
//! * **`wire_exhaustive`** (R7) — every wire opcode constant appears in
//!   encode, decode, and test code.
//! * **`lock_order`** (R8) — locks acquire in the order declared in
//!   `xtask.toml`; `SeqCst` stays inside its file allowlist.
//! * **`allow_audit`** (R9) — escape-hatch comments name real rules and
//!   carry reasons.
//!
//! ## Escape hatch
//!
//! Any diagnostic can be suppressed with a comment of the form
//! `// lint: allow(<rule>) — <reason>` placed on the offending line or on
//! one of the six lines above it (so a short comment block above a
//! multi-line expression covers the whole expression). The reason is
//! mandatory — `allow_audit` enforces it — because the hatch exists for
//! *proven* invariants, not for convenience.
//!
//! ## Scope
//!
//! The linter walks `crates/*/` only (vendored shims under `vendor/` are
//! third-party API stand-ins). Directories named `tests`, `benches` or
//! `examples` and inline `#[cfg(test)]` modules are test code to the
//! test-sensitive rules; paths containing a `fixtures` component are
//! skipped entirely (they are lint-rule test *data*, full of deliberate
//! violations). A scan that finds **zero** `.rs` files is a hard error,
//! not a clean pass — a mis-pointed `--root` must not green-light CI.
//!
//! Matching is token-based on a comment- and string-stripped view of
//! each line, so `"unsafe"` inside a string literal or `panic!` inside a
//! doc comment never fires.

#![deny(missing_docs)]

pub mod config;
pub mod json;
pub mod rules;
pub mod source;

pub use config::{Config, ConfigError};
pub use rules::{check_file, Diagnostic, FileCtx, Rule, WorkspaceIndex, ALL_RULES};
pub use source::SourceFile;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Why a lint run could not produce a verdict at all (distinct from
/// "produced diagnostics").
#[derive(Debug)]
pub enum LintError {
    /// Filesystem failure while scanning.
    Io(io::Error),
    /// The scan found zero `.rs` files under `<root>/crates` — almost
    /// certainly a mis-pointed `--root`, and never a clean pass.
    NoSources {
        /// The root that was scanned.
        root: PathBuf,
    },
    /// `xtask.toml` at the root failed to parse.
    Config(ConfigError),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io(e) => write!(f, "I/O error: {e}"),
            LintError::NoSources { root } => write!(
                f,
                "no .rs files found under {} — refusing to report a clean \
                 tree from an empty scan (is --root correct?)",
                root.join("crates").display()
            ),
            LintError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl From<io::Error> for LintError {
    fn from(e: io::Error) -> Self {
        LintError::Io(e)
    }
}

/// One parsed workspace file, carried between the index pass and the
/// rule pass.
struct ParsedFile {
    /// Path relative to the linted root.
    rel: PathBuf,
    /// Crate directory name.
    crate_name: String,
    /// Lives under `tests/`, `benches/` or `examples/`.
    in_tests_dir: bool,
    /// Lives under a `no_unwrap` exempt directory.
    in_exempt_dir: bool,
    /// Pre-parsed source.
    file: SourceFile,
}

/// Whether a crate manifest opts into the workspace lint table: a
/// `[lints]` section containing `workspace = true` (before the next
/// section header).
fn manifest_opts_into_lints(manifest: &str) -> bool {
    let mut in_lints = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_lints = t == "[lints]";
            continue;
        }
        if in_lints && t.replace(' ', "") == "workspace=true" {
            return true;
        }
    }
    false
}

fn walk_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Fixture trees are lint-rule test data, not workspace code.
            if name == "fixtures" || name == "target" {
                continue;
            }
            walk_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// R6 — manifest + lib.rs lint-wall checks for one crate.
fn lint_wall_crate(root: &Path, crate_dir: &Path, out: &mut Vec<Diagnostic>) -> io::Result<()> {
    let rel = |p: &Path| p.strip_prefix(root).unwrap_or(p).to_path_buf();
    let manifest_path = crate_dir.join("Cargo.toml");
    let manifest = fs::read_to_string(&manifest_path)?;
    if !manifest_opts_into_lints(&manifest) {
        out.push(Diagnostic {
            path: rel(&manifest_path),
            line: 1,
            rule: Rule::LintWall,
            message: "crate does not opt into the workspace lint table: add \
                      `[lints]\\nworkspace = true`"
                .to_string(),
        });
    }
    let lib_path = crate_dir.join("src").join("lib.rs");
    if lib_path.is_file() {
        let lib = fs::read_to_string(&lib_path)?;
        if !lib.contains("#![deny(missing_docs)]") {
            out.push(Diagnostic {
                path: rel(&lib_path),
                line: 1,
                rule: Rule::LintWall,
                message: "lib.rs must carry `#![deny(missing_docs)]`".to_string(),
            });
        }
    }
    Ok(())
}

/// Loads `<root>/xtask.toml`, or strict defaults when absent.
fn load_config(root: &Path) -> Result<Config, LintError> {
    let path = root.join("xtask.toml");
    if !path.is_file() {
        return Ok(Config::default());
    }
    let text = fs::read_to_string(&path)?;
    Config::parse(&text).map_err(LintError::Config)
}

/// Runs the full conformance pass over a workspace root, returning all
/// diagnostics sorted by path and line.
///
/// Two passes: the first parses every file and folds it into the
/// [`WorkspaceIndex`] (test names, per-crate test code) so cross-file
/// rules (`unsafe_audit`, `wire_exhaustive`) have the whole workspace in
/// view; the second runs the per-file rules plus the per-crate
/// `lint_wall` checks.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, LintError> {
    let config = load_config(root)?;
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    crate_dirs.sort();

    // Pass 1 — parse everything, build the workspace index.
    let mut workspace = WorkspaceIndex::default();
    let mut parsed: Vec<ParsedFile> = Vec::new();
    for crate_dir in &crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut files = Vec::new();
        walk_rs_files(crate_dir, &mut files)?;
        files.sort();
        for path in files {
            let crate_rel = path.strip_prefix(crate_dir).unwrap_or(&path);
            let crate_rel_str = crate_rel.to_string_lossy().replace('\\', "/");
            let in_tests_dir = crate_rel.components().any(|c| {
                matches!(
                    c.as_os_str().to_string_lossy().as_ref(),
                    "tests" | "benches" | "examples"
                )
            });
            let in_exempt_dir = config
                .no_unwrap_exempt_dirs
                .iter()
                .any(|d| crate_rel_str.starts_with(&format!("{d}/")));
            let text = fs::read_to_string(&path)?;
            let file = SourceFile::parse(&text);
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            workspace.absorb(&crate_name, &rel, in_tests_dir, &file);
            parsed.push(ParsedFile {
                rel,
                crate_name: crate_name.clone(),
                in_tests_dir,
                in_exempt_dir,
                file,
            });
        }
    }
    if parsed.is_empty() {
        return Err(LintError::NoSources {
            root: root.to_path_buf(),
        });
    }

    // Pass 2 — rules over every file, lint-wall over every crate.
    let mut out = Vec::new();
    for crate_dir in &crate_dirs {
        lint_wall_crate(root, crate_dir, &mut out)?;
    }
    for p in &parsed {
        let ctx = FileCtx {
            rel: &p.rel,
            crate_name: &p.crate_name,
            in_tests_dir: p.in_tests_dir,
            in_exempt_dir: p.in_exempt_dir,
            file: &p.file,
            config: &config,
            workspace: &workspace,
        };
        check_file(&ctx, &mut out);
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(out)
}
