//! Thin CLI over the [`xtask`] conformance linter.
//!
//! Usage: `cargo run -p xtask -- lint [--root <dir>] [--format text|json]`.
//! Exits 0 when the tree conforms, 1 with diagnostics when it does not,
//! and 2 on usage errors or hard failures — including a scan that finds
//! zero `.rs` files, which is never reported as clean.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p xtask -- lint [--root <dir>] [--format text|json]");
    ExitCode::from(2)
}

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    if cmd != "lint" {
        eprintln!("unknown command `{cmd}`");
        return usage();
    }
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                _ => return usage(),
            },
            _ => {
                eprintln!("unknown flag `{flag}`");
                return usage();
            }
        }
    }
    // When run via `cargo run -p xtask`, the manifest dir is
    // crates/xtask; the workspace root is two levels up.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    match xtask::lint_workspace(&root) {
        Ok(diags) => {
            match format {
                Format::Json => print!("{}", xtask::json::render(&diags)),
                Format::Text => {
                    for d in &diags {
                        println!("{d}");
                    }
                    if diags.is_empty() {
                        println!("xtask lint: clean");
                    } else {
                        println!("xtask lint: {} violation(s)", diags.len());
                    }
                }
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::from(2)
        }
    }
}
