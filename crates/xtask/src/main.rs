//! Thin CLI over the [`xtask`] conformance linter.
//!
//! Usage: `cargo run -p xtask -- lint [--root <dir>]`. Exits 0 when the
//! tree conforms, 1 with `file:line` diagnostics when it does not, and 2
//! on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p xtask -- lint [--root <dir>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    if cmd != "lint" {
        eprintln!("unknown command `{cmd}`");
        return usage();
    }
    let mut root: Option<PathBuf> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            _ => {
                eprintln!("unknown flag `{flag}`");
                return usage();
            }
        }
    }
    // When run via `cargo run -p xtask`, the manifest dir is
    // crates/xtask; the workspace root is two levels up.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    match xtask::lint_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("xtask lint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: I/O error: {e}");
            ExitCode::from(2)
        }
    }
}
