//! R7 `wire_exhaustive` — every opcode lives in encode, decode, *and* a
//! test.
//!
//! The wire protocol drifts one forgotten arm at a time: a new request
//! opcode gets an encoder, the decoder's `match` silently routes it to
//! the error arm, and the first symptom is a production `bad opcode`
//! frame. This rule closes the loop mechanically. For every constant
//! declared in a wire definition file (`[wire] files` in `xtask.toml`,
//! default `proto.rs`) whose name carries a wire prefix (`REQ_`/`RESP_`
//! by default), three legs must exist:
//!
//! 1. the constant is referenced inside a function whose name contains
//!    `encode`,
//! 2. referenced inside a function whose name contains `decode`,
//! 3. referenced from the crate's test code (a `#[cfg(test)]` module or
//!    a `tests/` file), so a round-trip actually pins the byte value.
//!
//! A missing leg is reported at the constant's declaration line.

use super::{Diagnostic, FileCtx, Rule};
use crate::source::line_has_token;

/// Runs the rule over one file.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let rel = ctx.rel.to_string_lossy().replace('\\', "/");
    if !ctx
        .config
        .wire_files
        .iter()
        .any(|f| rel.ends_with(f.as_str()))
    {
        return;
    }
    let test_code = ctx
        .workspace
        .crate_test_code
        .get(ctx.crate_name)
        .map(String::as_str)
        .unwrap_or("");
    for (decl_idx, name) in wire_consts(ctx) {
        let mut missing: Vec<&str> = Vec::new();
        if !referenced_in_fns(ctx, &name, "encode", decl_idx) {
            missing.push("an `encode` function");
        }
        if !referenced_in_fns(ctx, &name, "decode", decl_idx) {
            missing.push("a `decode` function");
        }
        if !test_code.lines().any(|line| line_has_token(line, &name)) {
            missing.push("test code (round-trip coverage)");
        }
        if !missing.is_empty() {
            ctx.emit(
                out,
                Rule::WireExhaustive,
                decl_idx,
                format!(
                    "wire opcode `{name}` is not referenced from {}: every \
                     opcode must appear in encode, decode, and a test so a \
                     new frame type cannot ship half-wired",
                    missing.join(" or ")
                ),
            );
        }
    }
}

/// Collects `(decl_line_idx, name)` for every `const <PREFIX>*` declared
/// in non-test code of this file.
fn wire_consts(ctx: &FileCtx<'_>) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, code) in ctx.file.code.iter().enumerate() {
        if ctx.testish(i) {
            continue;
        }
        let Some(pos) = crate::source::find_token(code, "const") else {
            continue;
        };
        let name: String = code[pos + "const".len()..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if ctx
            .config
            .wire_prefixes
            .iter()
            .any(|p| name.starts_with(p.as_str()))
        {
            out.push((i, name));
        }
    }
    out
}

/// Whether `name` is referenced (outside its own declaration line) inside
/// any `fn` whose name contains `fn_fragment`.
fn referenced_in_fns(ctx: &FileCtx<'_>, name: &str, fn_fragment: &str, decl_idx: usize) -> bool {
    ctx.file
        .fn_spans
        .iter()
        .filter(|(fn_name, _, _)| fn_name.contains(fn_fragment))
        .any(|(_, start, end)| {
            (*start..=*end)
                .filter(|i| *i != decl_idx)
                .any(|i| line_has_token(&ctx.file.code[i], name))
        })
}
