//! R9 `allow_audit` — the escape hatch audits itself.
//!
//! `// lint: allow(<rule>) — <reason>` is the only way past the other
//! rules, so its hygiene is load-bearing:
//!
//! * an allow naming a rule the registry does not contain suppresses
//!   nothing — it is a typo waiting to let a real violation through, and
//!   is flagged *everywhere*, test code included;
//! * an allow without a reason is an unproven exception and is flagged in
//!   non-test code (test-local allows may stay terse — the test itself
//!   is the context).

use super::{Diagnostic, FileCtx, Rule};

/// Runs the rule over one file.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for (i, allow) in ctx.file.allows.iter().enumerate() {
        let Some(allow) = allow else { continue };
        if Rule::from_name(&allow.rule_name).is_none() {
            ctx.emit(
                out,
                Rule::AllowAudit,
                i,
                format!(
                    "`lint: allow({})` names no known rule — it suppresses \
                     nothing; known rules: {}",
                    allow.rule_name,
                    super::ALL_RULES
                        .iter()
                        .map(|r| r.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            );
            continue;
        }
        if !allow.has_reason && !ctx.testish(i) {
            ctx.emit(
                out,
                Rule::AllowAudit,
                i,
                format!(
                    "`lint: allow({})` carries no reason: the hatch is for \
                     proven invariants — state the proof after an em dash",
                    allow.rule_name
                ),
            );
        }
    }
}
