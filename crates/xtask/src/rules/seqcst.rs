//! R5 `seqcst_justify` — `Ordering::SeqCst` must be argued for.
//!
//! SeqCst is the ordering people reach for when they have not thought
//! about the ordering; it serializes every store through a global fence
//! and usually hides a cheaper correct choice. Non-test code using the
//! token must carry a nearby comment mentioning `SeqCst` that justifies
//! why Acquire/Release (or Relaxed) is not enough. The separate
//! `lock_order` rule additionally confines SeqCst to an explicit file
//! allowlist — this rule is about the *argument*, that one about the
//! *inventory*.

use super::{Diagnostic, FileCtx, Rule};
use crate::source::line_has_token;

/// Runs the rule over one file.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for (i, code) in ctx.file.code.iter().enumerate() {
        if ctx.testish(i) {
            continue;
        }
        if line_has_token(code, "SeqCst") && !ctx.file.comment_near("SeqCst", i, 3) {
            ctx.emit(
                out,
                Rule::SeqCstJustify,
                i,
                "`Ordering::SeqCst` without a justification comment: state why \
                 a cheaper ordering is not correct, or relax it"
                    .to_string(),
            );
        }
    }
}
