//! R1 `no_unwrap` — no panicking constructs outside test code.
//!
//! Replaces the PR-1 `no_panics` rule: instead of a hot-crate allowlist,
//! every crate's non-test code is panic-free — a worker that panics
//! mid-request silently shrinks the serving pool, and the build pipeline
//! already reports failures as typed errors. Banned forms:
//!
//! * `.unwrap()` / `.expect(` (with punctuation, so `unwrap_or` and
//!   `expect_err` stay legal)
//! * `panic!` / `todo!` / `unimplemented!` / `unreachable!`
//! * literal slice indexing (`buf[0]`) — the indexing that panics when a
//!   length assumption drifts; use `.get(n)`, `.first()`, or a slice
//!   pattern and handle the short case.
//!
//! CLI entry points under the configured exempt directories (default
//! `src/bin`) may still panic on startup errors. Proven in-bounds
//! accesses take `// lint: allow(no_unwrap) — <why the index is proven>`.

use super::{Diagnostic, FileCtx, Rule};
use crate::source::line_has_token;

/// The panicking method calls and macros banned outside tests.
const PANIC_PATTERNS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "todo!",
    "unimplemented!",
    "unreachable!",
];

/// Runs the rule over one file.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.in_exempt_dir {
        return;
    }
    for (i, code) in ctx.file.code.iter().enumerate() {
        if ctx.testish(i) {
            continue;
        }
        let mut hit: Option<String> = None;
        for pat in PANIC_PATTERNS {
            let found = if pat.ends_with('!') {
                line_has_token(code, pat)
            } else {
                code.contains(pat)
            };
            if found {
                hit = Some(format!(
                    "`{pat}` outside test code: return a typed error, or add \
                     `// lint: allow(no_unwrap) — <reason>` for a proven invariant"
                ));
                break;
            }
        }
        if hit.is_none() && has_literal_index(code) {
            hit = Some(
                "literal slice index outside test code panics when the length \
                 assumption drifts: use `.get(n)`/a slice pattern, or add \
                 `// lint: allow(no_unwrap) — <why the index is in bounds>`"
                    .to_string(),
            );
        }
        if let Some(message) = hit {
            ctx.emit(out, Rule::NoUnwrap, i, message);
        }
    }
}

/// Detects `expr[<integer>]` indexing: a `[` immediately preceded by an
/// identifier character, `)`, or `]`, whose bracketed content is all
/// digits (with optional `_` separators). Array types (`[u8; 4]`),
/// attributes (`#[...]`) and variable indices never match.
fn has_literal_index(code: &str) -> bool {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        let indexes_expr =
            prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']';
        if !indexes_expr {
            continue;
        }
        let rest = &bytes[i + 1..];
        let mut digits = 0;
        for &c in rest {
            match c {
                b'0'..=b'9' | b'_' => digits += 1,
                b']' if digits > 0 => return true,
                _ => break,
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_index_detection_is_narrow() {
        assert!(has_literal_index("let x = buf[0];"));
        assert!(has_literal_index("w[1].0"));
        assert!(has_literal_index("f(x)[2]"));
        assert!(has_literal_index("parts[10_0]"));
        assert!(!has_literal_index("let a: [u8; 4] = [0; 4];"));
        assert!(!has_literal_index("#[derive(Debug)]"));
        assert!(!has_literal_index("buf[i]"));
        assert!(!has_literal_index("buf[n + 1]"));
        assert!(!has_literal_index("&xs[..4]"));
    }
}
