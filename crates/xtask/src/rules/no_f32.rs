//! R4 `no_f32` — coordinate math stays in double precision.
//!
//! Single precision is ~1 m at equatorial longitudes, which silently
//! corrupts cell assignment near cell boundaries; the inventory's
//! bit-identity guarantees die with it. The rule bans the `f32` token in
//! the coordinate crates.

use super::{Diagnostic, FileCtx, Rule};
use crate::source::line_has_token;

/// Crates whose coordinate math must stay in double precision.
pub const F64_ONLY_CRATES: [&str; 2] = ["geo", "hexgrid"];

/// Runs the rule over one file.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !F64_ONLY_CRATES.contains(&ctx.crate_name) {
        return;
    }
    for (i, code) in ctx.file.code.iter().enumerate() {
        if line_has_token(code, "f32") {
            ctx.emit(
                out,
                Rule::NoF32,
                i,
                format!(
                    "`f32` in coordinate crate `{}`: single precision corrupts \
                     cell assignment; use f64",
                    ctx.crate_name
                ),
            );
        }
    }
}
