//! R2 `safety_comment` and R3 `unsafe_audit` — the unsafe contract.
//!
//! `safety_comment` demands a `// SAFETY:` comment on the line of every
//! `unsafe` token or in the contiguous comment block directly above it.
//!
//! `unsafe_audit` raises the bar for non-test code: the contract must
//! name the test that exercises the invariant, with a
//! `tested by: <name>[, <name>...]` marker inside the comment block
//! (same line or up to ten lines above, so a multi-line SAFETY argument
//! counts). Each name must resolve to a test — a `fn` defined in test
//! code anywhere in the workspace, or a `tests/` file stem. An unsafe
//! block whose proof rots (the named test is renamed away) turns the
//! lint red, which is the point: the contract and its evidence move
//! together or not at all.

use super::{Diagnostic, FileCtx, Rule};
use crate::source::line_has_token;

/// How far above the `unsafe` token a multi-line SAFETY contract may
/// start.
const CONTRACT_WINDOW: usize = 10;

/// Runs both rules over one file.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for (i, code) in ctx.file.code.iter().enumerate() {
        if !line_has_token(code, "unsafe") {
            continue;
        }
        // R2 — applies everywhere, test code included. The contract may
        // span several lines: any `SAFETY:` in the contiguous comment
        // block ending at the `unsafe` line counts.
        let window = contract_block(ctx, i);
        if !window.contains("SAFETY:") {
            ctx.emit(
                out,
                Rule::SafetyComment,
                i,
                "`unsafe` without a `// SAFETY:` comment on the same line \
                 or in the contiguous comment block above"
                    .to_string(),
            );
            continue; // the audit needs a contract to audit
        }
        // R3 — non-test code must tie the contract to a test.
        if ctx.testish(i) {
            continue;
        }
        match tested_by_names(&window) {
            None => ctx.emit(
                out,
                Rule::UnsafeAudit,
                i,
                "`unsafe` contract names no exercising test: add \
                 `tested by: <test fn or tests/ file>` to the SAFETY comment"
                    .to_string(),
            ),
            Some(names) => {
                for name in names {
                    if !ctx.workspace.test_names.contains(&name) {
                        ctx.emit(
                            out,
                            Rule::UnsafeAudit,
                            i,
                            format!(
                                "SAFETY contract cites `tested by: {name}`, but no test \
                                 fn or tests/ file of that name exists in the workspace"
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// The contract block for the `unsafe` at line `idx`: the line's own
/// comment plus the contiguous run of comment-bearing lines directly
/// above it (capped at [`CONTRACT_WINDOW`]). Contiguity stops at the
/// first comment-free line, so a neighbouring function's contract never
/// bleeds into this one's window.
fn contract_block(ctx: &FileCtx<'_>, idx: usize) -> String {
    let mut lines = vec![ctx.file.comment[idx].as_str()];
    let mut j = idx;
    while j > 0 && idx - j < CONTRACT_WINDOW {
        j -= 1;
        if ctx.file.comment[j].trim().is_empty() {
            break;
        }
        lines.push(ctx.file.comment[j].as_str());
    }
    lines.reverse();
    lines.join("\n")
}

/// Extracts the identifiers after a `tested by:` marker. Returns `None`
/// when the marker is absent, `Some(names)` otherwise (possibly empty,
/// which the caller treats as unresolved).
fn tested_by_names(comment_block: &str) -> Option<Vec<String>> {
    let pos = comment_block.find("tested by:")?;
    let tail = &comment_block[pos + "tested by:".len()..];
    // Names run to the end of the marker's sentence: stop at a newline
    // or a period, split on commas/whitespace.
    let line = tail
        .split(['\n', '.'])
        .next()
        .unwrap_or("")
        .replace(" and ", ",");
    let names: Vec<String> = line
        .split([',', ' '])
        .map(|s| s.trim())
        .filter(|s| !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'))
        .map(|s| s.to_string())
        .collect();
    if names.is_empty() {
        // A bare `tested by:` with nothing resolvable is as good as no
        // marker at all.
        return None;
    }
    Some(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tested_by_parses_lists() {
        assert_eq!(
            tested_by_names("SAFETY: fine. tested by: alpha, beta_2"),
            Some(vec!["alpha".to_string(), "beta_2".to_string()])
        );
        assert_eq!(
            tested_by_names("SAFETY: x.\n tested by: one and two.\n more"),
            Some(vec!["one".to_string(), "two".to_string()])
        );
        assert_eq!(tested_by_names("SAFETY: no marker here"), None);
        assert_eq!(tested_by_names("tested by: "), None);
    }
}
