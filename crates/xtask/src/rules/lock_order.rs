//! R8 `lock_order` — locks acquire in one declared order; SeqCst is an
//! inventoried privilege.
//!
//! `xtask.toml` declares the workspace lock acquisition order
//! (`[lock_order] order = [...]`, outermost first) over *named* locks —
//! struct fields or bindings like `service` and `cache`. Within one
//! function, acquiring a lock that sorts earlier in the order while a
//! later one was acquired above it is flagged: that is the shape every
//! AB/BA deadlock starts as, and the chaos tests only sample it while
//! this rule sees every path. The scan is lexical (an acquisition
//! earlier in the function body is treated as potentially still held),
//! so a re-acquire after a provable drop takes the escape hatch with the
//! proof in the reason.
//!
//! The same section's `seqcst_files` allowlist confines
//! `Ordering::SeqCst` to named files: a SeqCst anywhere else is an
//! *escalation* — it changes the whole crate's synchronization cost
//! profile — and is flagged even when `seqcst_justify`'s comment is
//! present.

use super::{Diagnostic, FileCtx, Rule};
use crate::source::line_has_token;

/// Runs the rule over one file.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    check_acquisition_order(ctx, out);
    check_seqcst_escalation(ctx, out);
}

fn check_acquisition_order(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let order = &ctx.config.lock_order;
    if order.is_empty() {
        return;
    }
    let rank_of = |name: &str| order.iter().position(|o| o == name);
    for (fn_name, start, end) in &ctx.file.fn_spans {
        // (rank, line idx, lock name) acquisitions in body order.
        let mut held: Vec<(usize, usize, String)> = Vec::new();
        for i in *start..=(*end).min(ctx.file.code.len().saturating_sub(1)) {
            if ctx.testish(i) {
                continue;
            }
            for name in lock_acquisitions(&ctx.file.code[i]) {
                let Some(rank) = rank_of(&name) else {
                    continue;
                };
                if let Some((prev_rank, prev_line, prev_name)) =
                    held.iter().find(|(r, _, _)| *r > rank)
                {
                    ctx.emit(
                        out,
                        Rule::LockOrder,
                        i,
                        format!(
                            "`{name}` (order #{rank}) acquired after `{prev_name}` \
                             (order #{prev_rank}, line {prev_line}) in `{fn_name}`: \
                             the declared order in xtask.toml is outermost-first; \
                             reorder the acquisitions or prove the earlier guard is \
                             dropped and add `// lint: allow(lock_order) — <proof>`",
                            prev_line = prev_line + 1,
                        ),
                    );
                }
                held.push((rank, i, name));
            }
        }
    }
}

fn check_seqcst_escalation(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let rel = ctx.rel.to_string_lossy().replace('\\', "/");
    if ctx
        .config
        .seqcst_files
        .iter()
        .any(|f| rel.ends_with(f.as_str()))
    {
        return;
    }
    for (i, code) in ctx.file.code.iter().enumerate() {
        if ctx.testish(i) {
            continue;
        }
        if line_has_token(code, "SeqCst") {
            ctx.emit(
                out,
                Rule::LockOrder,
                i,
                "`SeqCst` escalation: this file is not in the `seqcst_files` \
                 allowlist in xtask.toml — relax the ordering, or add the file \
                 to the inventory alongside its justification"
                    .to_string(),
            );
        }
    }
}

/// Extracts the receiver names of `.lock()` / `.read()` / `.write()`
/// calls on a code line: the last path segment before the method, so
/// `self.cache.lock()` yields `cache`.
fn lock_acquisitions(code: &str) -> Vec<String> {
    let mut hits: Vec<(usize, String)> = Vec::new();
    for method in [".lock()", ".read()", ".write()"] {
        let mut from = 0;
        while let Some(pos) = code[from..].find(method) {
            let at = from + pos;
            let recv: String = code[..at]
                .chars()
                .rev()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            if !recv.is_empty() {
                hits.push((at, recv));
            }
            from = at + method.len();
        }
    }
    hits.sort_by_key(|(at, _)| *at);
    hits.into_iter().map(|(_, name)| name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_receiver_names() {
        assert_eq!(lock_acquisitions("let g = self.cache.lock();"), ["cache"]);
        assert_eq!(
            lock_acquisitions("service.read(); self.cache.lock();"),
            ["service", "cache"]
        );
        assert!(lock_acquisitions("file.read_to_string(&mut s)").is_empty());
    }
}
