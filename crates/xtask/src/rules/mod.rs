//! The rule registry and the context rules visit.
//!
//! Each rule lives in its own module and exposes a
//! `check(&FileCtx, &mut Vec<Diagnostic>)` pass over one pre-parsed
//! [`SourceFile`]. The registry ([`Rule`]) is the single source of truth
//! for rule names — diagnostics, `--format json` output, and the
//! `// lint: allow(<rule>)` escape hatch all resolve through it, and
//! `allow_audit` rejects allow-comments naming anything it does not
//! contain.

pub mod allow_audit;
pub mod lock_order;
pub mod no_f32;
pub mod no_unwrap;
pub mod safety;
pub mod seqcst;
pub mod wire;

use crate::config::Config;
use crate::source::SourceFile;
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// The conformance rules, in the order they are documented.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    /// R1: no panicking constructs (`unwrap`/`expect`/panic macros/
    /// literal slice indexing) outside test code, workspace-wide.
    NoUnwrap,
    /// R2: `unsafe` requires a `// SAFETY:` comment.
    SafetyComment,
    /// R3: every `unsafe` contract must name the invariant *and* the
    /// test that exercises it (`tested by: <test>`).
    UnsafeAudit,
    /// R4: no `f32` in coordinate crates.
    NoF32,
    /// R5: `SeqCst` requires a justification comment.
    SeqCstJustify,
    /// R6: per-crate lint-wall opt-in (`#![deny(missing_docs)]` +
    /// `[lints] workspace = true`).
    LintWall,
    /// R7: every wire opcode constant must appear in encode, decode, and
    /// test code — catches codec drift when a frame type is added.
    WireExhaustive,
    /// R8: locks must be acquired in the order declared in `xtask.toml`,
    /// and `SeqCst` must not appear outside the declared allowlist.
    LockOrder,
    /// R9: escape-hatch hygiene — `// lint: allow(...)` must name a real
    /// rule and carry a reason.
    AllowAudit,
}

/// Every rule, in documentation order.
pub const ALL_RULES: [Rule; 9] = [
    Rule::NoUnwrap,
    Rule::SafetyComment,
    Rule::UnsafeAudit,
    Rule::NoF32,
    Rule::SeqCstJustify,
    Rule::LintWall,
    Rule::WireExhaustive,
    Rule::LockOrder,
    Rule::AllowAudit,
];

impl Rule {
    /// The rule's name as used in diagnostics and allow-comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no_unwrap",
            Rule::SafetyComment => "safety_comment",
            Rule::UnsafeAudit => "unsafe_audit",
            Rule::NoF32 => "no_f32",
            Rule::SeqCstJustify => "seqcst_justify",
            Rule::LintWall => "lint_wall",
            Rule::WireExhaustive => "wire_exhaustive",
            Rule::LockOrder => "lock_order",
            Rule::AllowAudit => "allow_audit",
        }
    }

    /// Resolves a rule name from an allow-comment.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }
}

/// One rule violation at a source location.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// File the violation is in (relative to the linted root).
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Workspace-wide facts gathered in a first pass, shared by rules whose
/// judgement spans files: the set of test function names and test file
/// stems (for `unsafe_audit`'s `tested by:` resolution) and per-crate
/// test code (for `wire_exhaustive`'s round-trip leg).
#[derive(Default)]
pub struct WorkspaceIndex {
    /// Names of `fn` items defined in test code anywhere in the
    /// workspace, plus the stems of files under `tests/`.
    pub test_names: BTreeSet<String>,
    /// Per-crate concatenation of test-code lines (literal-stripped),
    /// keyed by crate name.
    pub crate_test_code: std::collections::BTreeMap<String, String>,
}

impl WorkspaceIndex {
    /// Folds one parsed file into the index.
    pub fn absorb(&mut self, crate_name: &str, rel: &Path, in_tests_dir: bool, file: &SourceFile) {
        if in_tests_dir {
            if let Some(stem) = rel.file_stem().and_then(|s| s.to_str()) {
                self.test_names.insert(stem.to_string());
            }
        }
        let mut test_code = String::new();
        for (i, code) in file.code.iter().enumerate() {
            if !(in_tests_dir || file.in_test_mod[i]) {
                continue;
            }
            test_code.push_str(code);
            test_code.push('\n');
            if let Some(pos) = crate::source::find_token(code, "fn") {
                let name: String = code[pos + 2..]
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() {
                    self.test_names.insert(name);
                }
            }
        }
        if !test_code.is_empty() {
            self.crate_test_code
                .entry(crate_name.to_string())
                .or_default()
                .push_str(&test_code);
        }
    }
}

/// Everything a per-file rule pass can see.
pub struct FileCtx<'a> {
    /// Path relative to the linted root.
    pub rel: &'a Path,
    /// Name of the crate directory the file belongs to.
    pub crate_name: &'a str,
    /// Whether the file lives under `tests/`, `benches/` or `examples/`.
    pub in_tests_dir: bool,
    /// Whether the file lives under a `no_unwrap` exempt directory.
    pub in_exempt_dir: bool,
    /// The pre-parsed source.
    pub file: &'a SourceFile,
    /// Workspace configuration.
    pub config: &'a Config,
    /// Cross-file facts.
    pub workspace: &'a WorkspaceIndex,
}

impl FileCtx<'_> {
    /// Whether 0-based line `idx` is test code (tests dir or cfg(test)).
    pub fn testish(&self, idx: usize) -> bool {
        self.in_tests_dir || self.file.in_test_mod[idx]
    }

    /// Emits a diagnostic unless an allow-comment covers it.
    pub fn emit(&self, out: &mut Vec<Diagnostic>, rule: Rule, idx: usize, message: String) {
        if self.file.allowed(rule.name(), idx) {
            return;
        }
        out.push(Diagnostic {
            path: self.rel.to_path_buf(),
            line: idx + 1,
            rule,
            message,
        });
    }
}

/// Runs every per-file rule over one parsed source file.
pub fn check_file(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    no_unwrap::check(ctx, out);
    safety::check(ctx, out);
    no_f32::check(ctx, out);
    seqcst::check(ctx, out);
    wire::check(ctx, out);
    lock_order::check(ctx, out);
    allow_audit::check(ctx, out);
}
