//! Workspace analysis configuration, read from `xtask.toml` at the
//! linted root.
//!
//! The parser is a deliberate TOML *subset* (pure std, like the rest of
//! the linter): `[section]` headers, `key = "string"`, `key = true/false`,
//! and `key = ["array", "of", "strings"]` — single-line values only,
//! `#` comments. Unknown sections and keys are hard errors so a typo in
//! the config cannot silently disable a rule.

use std::fmt;

/// Parsed `xtask.toml`. Every field has a default so a missing file
/// (fixture trees, bare checkouts) still lints with full strictness.
#[derive(Clone, Debug)]
pub struct Config {
    /// Directory components exempt from `no_unwrap` (e.g. `src/bin` CLI
    /// entry points, which may panic on bad arguments at startup).
    pub no_unwrap_exempt_dirs: Vec<String>,
    /// The workspace lock acquisition order, outermost first. A lock
    /// later in this list must never be held when acquiring an earlier
    /// one. Empty list disables ordering checks.
    pub lock_order: Vec<String>,
    /// Files (workspace-relative path suffixes) allowed to use
    /// `Ordering::SeqCst`. Any SeqCst outside these is an escalation
    /// flagged by `lock_order` even when justified for `seqcst_justify`.
    pub seqcst_files: Vec<String>,
    /// File names subject to `wire_exhaustive` opcode coverage.
    pub wire_files: Vec<String>,
    /// Opcode constant prefixes `wire_exhaustive` audits.
    pub wire_prefixes: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            no_unwrap_exempt_dirs: vec!["src/bin".to_string()],
            lock_order: Vec::new(),
            seqcst_files: Vec::new(),
            wire_files: vec!["proto.rs".to_string()],
            wire_prefixes: vec!["REQ_".to_string(), "RESP_".to_string()],
        }
    }
}

/// A configuration parse failure (`file:line: message`).
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line in `xtask.toml`.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xtask.toml:{}: {}", self.line, self.message)
    }
}

impl Config {
    /// Parses the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let mut section = String::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let t = raw.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            if let Some(name) = t.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.trim().to_string();
                match section.as_str() {
                    "no_unwrap" | "lock_order" | "wire" => {}
                    other => {
                        return Err(ConfigError {
                            line,
                            message: format!("unknown section `[{other}]`"),
                        })
                    }
                }
                continue;
            }
            let Some((key, value)) = t.split_once('=') else {
                return Err(ConfigError {
                    line,
                    message: format!("expected `key = value`, got `{t}`"),
                });
            };
            let key = key.trim();
            let value = value.trim();
            let slot = match (section.as_str(), key) {
                ("no_unwrap", "exempt_dirs") => &mut cfg.no_unwrap_exempt_dirs,
                ("lock_order", "order") => &mut cfg.lock_order,
                ("lock_order", "seqcst_files") => &mut cfg.seqcst_files,
                ("wire", "files") => &mut cfg.wire_files,
                ("wire", "prefixes") => &mut cfg.wire_prefixes,
                _ => {
                    return Err(ConfigError {
                        line,
                        message: format!("unknown key `{key}` in section `[{section}]`"),
                    })
                }
            };
            *slot = parse_string_array(value).ok_or(ConfigError {
                line,
                message: format!("`{key}` must be a single-line array of strings"),
            })?;
        }
        Ok(cfg)
    }
}

/// Parses `["a", "b"]` (or `[]`) into its elements.
fn parse_string_array(value: &str) -> Option<Vec<String>> {
    let inner = value.strip_prefix('[')?.strip_suffix(']')?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // tolerate a trailing comma
        }
        let s = part.strip_prefix('"')?.strip_suffix('"')?;
        out.push(s.to_string());
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_real_schema() {
        let cfg = Config::parse(
            "# comment\n\
             [no_unwrap]\n\
             exempt_dirs = [\"src/bin\"]\n\
             [lock_order]\n\
             order = [\"service\", \"cache\"]\n\
             seqcst_files = []\n\
             [wire]\n\
             files = [\"proto.rs\"]\n\
             prefixes = [\"REQ_\", \"RESP_\"]\n",
        )
        .expect("valid config parses");
        assert_eq!(cfg.lock_order, ["service", "cache"]);
        assert!(cfg.seqcst_files.is_empty());
        assert_eq!(cfg.wire_prefixes, ["REQ_", "RESP_"]);
    }

    #[test]
    fn unknown_keys_are_hard_errors() {
        assert!(Config::parse("[lock_order]\nordr = [\"a\"]\n").is_err());
        assert!(Config::parse("[nope]\n").is_err());
        assert!(Config::parse("[wire]\nfiles = \"proto.rs\"\n").is_err());
    }

    #[test]
    fn missing_file_defaults_are_strict() {
        let cfg = Config::default();
        assert_eq!(cfg.wire_files, ["proto.rs"]);
        assert!(cfg.lock_order.is_empty());
    }
}
