//! Machine-readable diagnostic rendering for `lint --format json`.
//!
//! The output is a JSON array of `{path, line, rule, message}` objects —
//! stable field names, one object per diagnostic, sorted the same way as
//! the text output — so CI can turn diagnostics into annotations without
//! scraping the human format.

use crate::rules::Diagnostic;

/// Renders diagnostics as a pretty-printed JSON array.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!(
            "\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"",
            escape(&d.path.to_string_lossy().replace('\\', "/")),
            d.line,
            d.rule.name(),
            escape(&d.message)
        ));
        out.push('}');
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;
    use std::path::PathBuf;

    #[test]
    fn renders_escaped_array() {
        let diags = vec![Diagnostic {
            path: PathBuf::from("crates/a/src/lib.rs"),
            line: 7,
            rule: Rule::NoUnwrap,
            message: "a \"quoted\" reason".to_string(),
        }];
        let json = render(&diags);
        assert!(json.contains("\"line\": 7"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
        assert_eq!(render(&[]), "[]\n");
    }
}
