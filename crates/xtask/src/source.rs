//! The shared source-file substrate every rule visits.
//!
//! A [`SourceFile`] is a pre-processed view of one `.rs` file: per-line
//! *code* and *comment* halves (string/char literal contents removed from
//! the code half, multi-line block comments tracked), the set of lines
//! living inside `#[cfg(test)]` items, parsed `// lint: allow(...)`
//! escape-hatch comments, and brace-tracked function spans. Rules match
//! against this view instead of raw text so prose and literals never
//! fire a diagnostic.

/// Which kind of string literal is currently open across lines.
#[derive(Clone, Copy)]
enum OpenString {
    /// `"..."` — backslash escapes, may continue over a trailing `\` or
    /// simply contain the newline.
    Normal,
    /// `r##"..."##` — closes on `"` followed by this many `#`s.
    Raw(usize),
}

/// Splits source lines into a code part and a comment part, tracking
/// multi-line `/* */` comments and multi-line string literals, and
/// removing the contents of string and char literals from the code part
/// so pattern matching never fires on text.
#[derive(Default)]
struct LineSplitter {
    in_block_comment: bool,
    in_string: Option<OpenString>,
}

impl LineSplitter {
    /// Returns `(code, comment)` for one source line.
    fn split(&mut self, line: &str) -> (String, String) {
        let mut code = String::with_capacity(line.len());
        let mut comment = String::new();
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        if let Some(kind) = self.in_string {
            match self.consume_string(&chars, 0, kind) {
                Some(next) => {
                    self.in_string = None;
                    code.push('"');
                    i = next;
                }
                None => return (code, comment), // whole line is string text
            }
        }
        while i < chars.len() {
            if self.in_block_comment {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    self.in_block_comment = false;
                    i += 2;
                } else {
                    comment.push(chars[i]);
                    i += 1;
                }
                continue;
            }
            let c = chars[i];
            match c {
                '/' if chars.get(i + 1) == Some(&'/') => {
                    // Line comment: the rest of the line is comment text.
                    comment.extend(&chars[i..]);
                    break;
                }
                '/' if chars.get(i + 1) == Some(&'*') => {
                    self.in_block_comment = true;
                    i += 2;
                }
                'r' | 'b'
                    if raw_string_hashes(&chars[i..]).is_some()
                        && (i == 0 || !is_ident_char(chars[i - 1])) =>
                {
                    // Raw string literal r"..." / r#"..."# / br"...": skip
                    // the prefix, then the contents to the closing quote
                    // (which may be on a later line).
                    let hashes = raw_string_hashes(&chars[i..]).unwrap_or(0);
                    code.push('"');
                    let body = i + chars[i..]
                        .iter()
                        .position(|&c| c == '"')
                        .map(|p| p + 1)
                        .unwrap_or(0);
                    match self.consume_string(&chars, body, OpenString::Raw(hashes)) {
                        Some(next) => {
                            code.push('"');
                            i = next;
                        }
                        None => {
                            self.in_string = Some(OpenString::Raw(hashes));
                            break;
                        }
                    }
                }
                '"' => {
                    // String literal (possibly preceded by a b prefix that
                    // was already emitted as code): skip to the closing
                    // quote, honouring backslash escapes — possibly on a
                    // later line.
                    code.push('"');
                    match self.consume_string(&chars, i + 1, OpenString::Normal) {
                        Some(next) => {
                            code.push('"');
                            i = next;
                        }
                        None => {
                            self.in_string = Some(OpenString::Normal);
                            break;
                        }
                    }
                }
                '\'' => {
                    // Char literal vs lifetime: a literal closes within a
                    // few chars (`'x'`, `'\n'`, `'\u{1F30A}'`).
                    let rest = &chars[i + 1..];
                    let close = rest.iter().take(12).position(|&c| c == '\'');
                    match close {
                        Some(n) if n > 0 => {
                            code.push('\'');
                            code.push('\'');
                            i += n + 2;
                        }
                        _ => {
                            // A lifetime (or stray quote): keep as code.
                            code.push('\'');
                            i += 1;
                        }
                    }
                }
                _ => {
                    code.push(c);
                    i += 1;
                }
            }
        }
        (code, comment)
    }

    /// Scans string-literal contents from `from`, returning the index
    /// just past the closing delimiter, or `None` when the literal runs
    /// off the end of the line (it continues on the next one).
    fn consume_string(&self, chars: &[char], from: usize, kind: OpenString) -> Option<usize> {
        let mut i = from;
        while i < chars.len() {
            match kind {
                OpenString::Normal => match chars[i] {
                    '\\' => i += 2,
                    '"' => return Some(i + 1),
                    _ => i += 1,
                },
                OpenString::Raw(hashes) => {
                    if chars[i] == '"'
                        && chars[i + 1..].iter().take_while(|&&c| c == '#').count() >= hashes
                    {
                        return Some(i + 1 + hashes);
                    }
                    i += 1;
                }
            }
        }
        None
    }
}

/// If `chars` begins a raw-string prefix (`r`, `br`, optionally followed
/// by `#`s, then `"`), returns the number of `#`s; `None` otherwise.
fn raw_string_hashes(chars: &[char]) -> Option<usize> {
    let mut i = 0;
    if chars.get(i) == Some(&'b') {
        i += 1;
    }
    if chars.get(i) != Some(&'r') {
        return None;
    }
    i += 1;
    let hashes = chars[i..].iter().take_while(|&&c| c == '#').count();
    if chars.get(i + hashes) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

/// Whether `c` can be part of an identifier.
fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// One parsed `// lint: allow(<rule>) — <reason>` escape-hatch comment.
#[derive(Clone, Debug)]
pub struct AllowComment {
    /// The rule name between the parentheses (not yet validated against
    /// the registry — `allow_audit` does that).
    pub rule_name: String,
    /// Whether any prose follows the closing parenthesis. The reason is
    /// mandatory: the hatch exists for *proven* invariants.
    pub has_reason: bool,
}

/// A pre-processed source file: per-line code/comment views plus the
/// structural facts (test regions, allows, function spans) rules share.
pub struct SourceFile {
    /// Code half of each line, literals stripped.
    pub code: Vec<String>,
    /// Comment half of each line.
    pub comment: Vec<String>,
    /// Whether each line lives inside a `#[cfg(test)]` item.
    pub in_test_mod: Vec<bool>,
    /// Parsed escape-hatch comment per line, if any.
    pub allows: Vec<Option<AllowComment>>,
    /// Brace-tracked `(name, first_line_idx, last_line_idx)` spans of
    /// every `fn` item (0-based, inclusive).
    pub fn_spans: Vec<(String, usize, usize)>,
}

impl SourceFile {
    /// Parses one file's text into the shared substrate.
    pub fn parse(text: &str) -> SourceFile {
        let mut splitter = LineSplitter::default();
        let (mut code, mut comment) = (Vec::new(), Vec::new());
        for line in text.lines() {
            let (c, m) = splitter.split(line);
            code.push(c);
            comment.push(m);
        }
        let in_test_mod = mark_test_mods(&code);
        let allows = comment.iter().map(|c| parse_allow(c)).collect();
        let fn_spans = mark_fn_spans(&code);
        SourceFile {
            code,
            comment,
            in_test_mod,
            allows,
            fn_spans,
        }
    }

    /// Whether an allow-comment for the rule named `rule` covers 0-based
    /// line `idx` (same line or up to six lines above).
    pub fn allowed(&self, rule: &str, idx: usize) -> bool {
        let lo = idx.saturating_sub(6);
        self.allows[lo..=idx]
            .iter()
            .any(|a| a.as_ref().is_some_and(|a| a.rule_name == rule))
    }

    /// Whether any comment in the window `[idx-above, idx]` contains
    /// `needle` (used for `SAFETY:` and `SeqCst` justifications).
    pub fn comment_near(&self, needle: &str, idx: usize, above: usize) -> bool {
        let lo = idx.saturating_sub(above);
        self.comment[lo..=idx].iter().any(|c| c.contains(needle))
    }

    /// The concatenated comment text of the window `[idx-above, idx]`,
    /// newline-joined — used to inspect multi-line `SAFETY:` contracts.
    pub fn comment_window(&self, idx: usize, above: usize) -> String {
        let lo = idx.saturating_sub(above);
        self.comment[lo..=idx].join("\n")
    }
}

/// Parses the escape hatch out of one line's comment text. The rule name
/// must be a plain identifier — documentation that shows the placeholder
/// form (`allow(<rule>)`) is not an allow.
fn parse_allow(comment: &str) -> Option<AllowComment> {
    let pos = comment.find("lint: allow(")?;
    let rest = &comment[pos + "lint: allow(".len()..];
    let close = rest.find(')')?;
    let rule_name = &rest[..close];
    if rule_name.is_empty()
        || !rule_name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    {
        return None;
    }
    let tail = &rest[close + 1..];
    // A reason is any prose after the closing parenthesis beyond
    // separator punctuation (`—`, `-`, `:`) and whitespace.
    let has_reason = tail
        .chars()
        .filter(|c| !c.is_whitespace() && !matches!(c, '—' | '-' | ':' | '–'))
        .count()
        >= 3;
    Some(AllowComment {
        rule_name: rule_name.to_string(),
        has_reason,
    })
}

/// Marks the lines belonging to `#[cfg(test)]` items by brace tracking:
/// from a `#[cfg(test)]` attribute (including compound forms like
/// `#[cfg(all(test, feature = "..."))]`, but not `not(test)`) to the
/// close of the brace block that starts on the next code line (or to the
/// first `;` for braceless items).
fn mark_test_mods(code: &[String]) -> Vec<bool> {
    let mut flags = vec![false; code.len()];
    let mut depth: i64 = 0;
    let mut armed = false;
    let mut region_close: Option<i64> = None;
    for (i, line) in code.iter().enumerate() {
        let test_cfg =
            line.contains("#[cfg(") && !line.contains("not(test") && line_has_token(line, "test");
        if test_cfg {
            armed = true;
        }
        if armed || region_close.is_some() {
            flags[i] = true;
        }
        let opens = line.matches('{').count() as i64;
        let closes = line.matches('}').count() as i64;
        if armed {
            if opens > 0 {
                region_close = Some(depth);
                armed = false;
            } else if line.contains(';') {
                armed = false;
            }
        }
        depth += opens - closes;
        if let Some(d) = region_close {
            if depth <= d {
                region_close = None;
            }
        }
    }
    flags
}

/// Brace-tracks `fn` items into `(name, start, end)` spans (0-based line
/// indices, inclusive). Nested functions and closures extend the
/// innermost enclosing span; rules that walk spans (lock ordering, wire
/// exhaustiveness) only need "which `fn` item is this line inside".
fn mark_fn_spans(code: &[String]) -> Vec<(String, usize, usize)> {
    let mut spans = Vec::new();
    let mut open: Vec<(String, usize, i64)> = Vec::new(); // (name, start, depth at open)
    let mut depth: i64 = 0;
    let mut pending: Option<(String, usize)> = None;
    for (i, line) in code.iter().enumerate() {
        if pending.is_none() {
            if let Some(name) = fn_name_on_line(line) {
                pending = Some((name, i));
            }
        }
        let opens = line.matches('{').count() as i64;
        let closes = line.matches('}').count() as i64;
        if opens > 0 {
            if let Some((name, start)) = pending.take() {
                open.push((name, start, depth));
            }
        } else if line.contains(';') && opens == 0 {
            // Braceless item (trait method declaration): no body to span.
            pending = None;
        }
        depth += opens - closes;
        while let Some((_, _, d)) = open.last() {
            if depth <= *d {
                let (name, start, _) = open.pop().unwrap_or_default();
                spans.push((name, start, i));
            } else {
                break;
            }
        }
    }
    spans.sort_by_key(|s| s.1);
    spans
}

/// Extracts the function name if this code line declares one.
fn fn_name_on_line(line: &str) -> Option<String> {
    let pos = find_token(line, "fn")?;
    let rest = &line[pos + 2..];
    let rest = rest.trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Whether `token` appears in `line` with non-identifier characters (or
/// line edges) on both sides.
pub fn line_has_token(line: &str, token: &str) -> bool {
    find_token(line, token).is_some()
}

/// Byte offset of the first token-boundary occurrence of `token`.
pub fn find_token(line: &str, token: &str) -> Option<usize> {
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(pos) = line[from..].find(token) {
        let start = from + pos;
        let end = start + token.len();
        let ok_before = start == 0 || !is_ident(line[..start].chars().next_back().unwrap_or(' '));
        let ok_after = end >= line.len() || !is_ident(line[end..].chars().next().unwrap_or(' '));
        if ok_before && ok_after {
            return Some(start);
        }
        from = end;
    }
    None
}

/// Returns 1-based line numbers where `token` appears in `code` with
/// non-identifier characters (or line edges) on both sides.
pub fn token_lines(code: &[String], token: &str) -> Vec<usize> {
    code.iter()
        .enumerate()
        .filter(|(_, line)| line_has_token(line, token))
        .map(|(i, _)| i + 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitter_strips_strings_and_comments() {
        let f = SourceFile::parse("let x = \"unsafe\"; // unsafe prose\n");
        assert!(!line_has_token(&f.code[0], "unsafe"));
        assert!(f.comment[0].contains("unsafe prose"));
    }

    #[test]
    fn multi_line_strings_stay_stripped() {
        // A string spanning lines (with and without a trailing backslash
        // continuation) must not leak its contents into code or comment.
        let f = SourceFile::parse(
            "let s = \"first \\\n    // lint: allow(bad_rule)\\n\";\nlet t = 1;\n",
        );
        assert!(f.allows[1].is_none(), "in-string text parsed as an allow");
        assert!(f.code[2].contains("let t"));
        let raw = SourceFile::parse("let r = r#\"multi\nunsafe line\n\"#;\nlet u = 2;\n");
        assert!(!line_has_token(&raw.code[1], "unsafe"));
        assert!(raw.code[3].contains("let u"));
    }

    #[test]
    fn allow_parsing_requires_identifier_rule_names() {
        let f = SourceFile::parse(
            "// lint: allow(no_unwrap) — proven\n\
             // lint: allow(<rule>) — placeholder docs\n\
             // lint: allow(bad_rule)\n",
        );
        let a0 = f.allows[0].as_ref().expect("real allow parses");
        assert_eq!(a0.rule_name, "no_unwrap");
        assert!(a0.has_reason);
        assert!(f.allows[1].is_none(), "placeholder form is not an allow");
        let a2 = f.allows[2].as_ref().expect("reasonless allow still parses");
        assert!(!a2.has_reason);
    }

    #[test]
    fn fn_spans_cover_bodies() {
        let f = SourceFile::parse(
            "fn alpha() {\n    body();\n}\n\npub fn beta(x: u32) -> u32 {\n    x\n}\n",
        );
        let names: Vec<&str> = f.fn_spans.iter().map(|s| s.0.as_str()).collect();
        assert_eq!(names, ["alpha", "beta"]);
        assert_eq!((f.fn_spans[0].1, f.fn_spans[0].2), (0, 2));
        assert_eq!((f.fn_spans[1].1, f.fn_spans[1].2), (4, 6));
    }

    #[test]
    fn test_mod_marking_tracks_braces() {
        let f = SourceFile::parse(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn live2() {}\n",
        );
        assert_eq!(f.in_test_mod, [false, true, true, true, true, false]);
    }
}
