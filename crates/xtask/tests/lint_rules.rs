//! Behavioural tests for every conformance rule: each dirty fixture fires
//! its rule exactly once, the clean fixture fires nothing, the escape
//! hatch suppresses, and — the acceptance check — injecting an `unwrap()`
//! into the real `crates/engine/src/pool.rs` or stripping a `// SAFETY:`
//! comment turns the lint red with a `file:line` diagnostic.

use std::fs;
use std::path::{Path, PathBuf};
use xtask::{lint_workspace, Diagnostic, Rule};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn lint(root: &Path) -> Vec<Diagnostic> {
    lint_workspace(root).expect("fixture tree readable")
}

/// 1-based line of the first occurrence of `needle` in a fixture file.
fn line_of(path: &Path, needle: &str) -> usize {
    let text = fs::read_to_string(path).expect("fixture file readable");
    text.lines()
        .position(|l| l.contains(needle))
        .map(|i| i + 1)
        .unwrap_or_else(|| panic!("`{needle}` not found in {}", path.display()))
}

#[test]
fn clean_fixture_fires_nothing() {
    let diags = lint(&fixture("clean"));
    assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
}

#[test]
fn r1_no_panics_fires_exactly_once() {
    let root = fixture("r1_panic");
    let diags = lint(&root);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.rule, Rule::NoPanics);
    assert_eq!(d.path, Path::new("crates/engine/src/lib.rs"));
    assert_eq!(
        d.line,
        line_of(&root.join("crates/engine/src/lib.rs"), "s.parse().unwrap()")
    );
}

#[test]
fn r2_safety_comment_fires_exactly_once() {
    let root = fixture("r2_unsafe");
    let diags = lint(&root);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.rule, Rule::SafetyComment);
    assert_eq!(d.path, Path::new("crates/util/src/lib.rs"));
    // The documented block passes; the undocumented one (the second
    // transmute) is the hit.
    let lib = root.join("crates/util/src/lib.rs");
    let text = fs::read_to_string(&lib).unwrap();
    let second = text
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("unsafe {"))
        .nth(1)
        .map(|(i, _)| i + 1)
        .unwrap();
    assert_eq!(d.line, second);
}

#[test]
fn r3_no_f32_fires_exactly_once_and_only_in_coordinate_crates() {
    let root = fixture("r3_f32");
    let diags = lint(&root);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.rule, Rule::NoF32);
    assert_eq!(d.path, Path::new("crates/geo/src/lib.rs"));
    assert_eq!(
        d.line,
        line_of(&root.join("crates/geo/src/lib.rs"), "-> f32")
    );
}

#[test]
fn r4_seqcst_fires_exactly_once() {
    let root = fixture("r4_seqcst");
    let diags = lint(&root);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.rule, Rule::SeqCstJustify);
    assert_eq!(d.path, Path::new("crates/engine/src/lib.rs"));
    // The unjustified bump(), not the justified bump_fenced() and not the
    // test module.
    let lib = root.join("crates/engine/src/lib.rs");
    let text = fs::read_to_string(&lib).unwrap();
    let first = text
        .lines()
        .position(|l| l.contains("fetch_add(1, Ordering::SeqCst)"))
        .unwrap()
        + 1;
    assert_eq!(d.line, first);
}

#[test]
fn r5_missing_deny_attr_fires_exactly_once() {
    let diags = lint(&fixture("r5_attr"));
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.rule, Rule::LintWall);
    assert_eq!(d.path, Path::new("crates/plain/src/lib.rs"));
    assert_eq!(d.line, 1);
}

#[test]
fn r5_missing_manifest_opt_in_fires_exactly_once() {
    let diags = lint(&fixture("r5_manifest"));
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.rule, Rule::LintWall);
    assert_eq!(d.path, Path::new("crates/plain/Cargo.toml"));
}

#[test]
fn escape_hatch_suppresses_every_covered_rule() {
    let diags = lint(&fixture("allowed"));
    assert!(diags.is_empty(), "hatch did not suppress: {diags:?}");
}

#[test]
fn the_real_tree_is_clean() {
    let diags = lint(&repo_root());
    assert!(
        diags.is_empty(),
        "workspace no longer conforms:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Builds a scratch workspace containing the real `pol-engine` sources and
/// returns its root.
fn scratch_engine_tree(name: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let engine = root.join("crates/engine");
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(engine.join("src")).unwrap();
    let real = repo_root().join("crates/engine");
    fs::copy(real.join("Cargo.toml"), engine.join("Cargo.toml")).unwrap();
    for f in [
        "lib.rs",
        "pool.rs",
        "dataset.rs",
        "keyed.rs",
        "error.rs",
        "metrics.rs",
    ] {
        let src = real.join("src").join(f);
        if src.is_file() {
            fs::copy(&src, engine.join("src").join(f)).unwrap();
        }
    }
    root
}

#[test]
fn inserting_unwrap_into_pool_rs_turns_the_lint_red() {
    let root = scratch_engine_tree("unwrap-in-pool");
    assert!(
        lint(&root).is_empty(),
        "scratch copy of engine must start clean"
    );

    let pool = root.join("crates/engine/src/pool.rs");
    let mut text = fs::read_to_string(&pool).unwrap();
    text.push_str("\n/// Deliberately non-conforming.\npub fn broken() -> u32 {\n    \"7\".parse().unwrap()\n}\n");
    let bad_line = text.lines().count() - 1;
    fs::write(&pool, text).unwrap();

    let diags = lint(&root);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.rule, Rule::NoPanics);
    assert_eq!(d.path, Path::new("crates/engine/src/pool.rs"));
    assert_eq!(d.line, bad_line);
    // The rendered diagnostic is the promised file:line form.
    assert!(d.to_string().starts_with(&format!(
        "crates/engine/src/pool.rs:{bad_line}: [no_panics]"
    )));
}

#[test]
fn removing_a_safety_comment_turns_the_lint_red() {
    let root = scratch_engine_tree("safety-removed");
    let extra = root.join("crates/engine/src/ffi.rs");
    fs::write(
        &extra,
        "//! Scratch module with a documented unsafe block.\n\n\
         /// Bit-level view of a float.\n\
         pub fn bits(x: f64) -> u64 {\n\
         \x20   // SAFETY: f64 and u64 have identical size; all bit\n\
         \x20   // patterns are valid u64 values.\n\
         \x20   unsafe { std::mem::transmute(x) }\n\
         }\n",
    )
    .unwrap();
    assert!(lint(&root).is_empty(), "documented unsafe must pass");

    // Strip the SAFETY comment and lint again.
    let text = fs::read_to_string(&extra).unwrap();
    let stripped: String = text
        .lines()
        .filter(|l| !l.contains("SAFETY:") && !l.contains("patterns are valid"))
        .map(|l| format!("{l}\n"))
        .collect();
    fs::write(&extra, &stripped).unwrap();

    let diags = lint(&root);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.rule, Rule::SafetyComment);
    assert_eq!(d.path, Path::new("crates/engine/src/ffi.rs"));
    assert_eq!(
        d.line,
        stripped
            .lines()
            .position(|l| l.contains("unsafe {"))
            .unwrap()
            + 1
    );
}
