//! Behavioural tests for every conformance rule: each dirty fixture fires
//! its rule at known locations, the clean fixture fires nothing, the
//! escape hatch suppresses (and audits itself), and — the acceptance
//! check — injecting an `unwrap()` into the real
//! `crates/engine/src/pool.rs` or stripping a `// SAFETY:` comment turns
//! the lint red with a `file:line` diagnostic.

use std::fs;
use std::path::{Path, PathBuf};
use xtask::{lint_workspace, Diagnostic, LintError, Rule};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn lint(root: &Path) -> Vec<Diagnostic> {
    lint_workspace(root).expect("fixture tree readable")
}

/// 1-based line of the first occurrence of `needle` in a fixture file.
fn line_of(path: &Path, needle: &str) -> usize {
    let text = fs::read_to_string(path).expect("fixture file readable");
    text.lines()
        .position(|l| l.contains(needle))
        .map(|i| i + 1)
        .unwrap_or_else(|| panic!("`{needle}` not found in {}", path.display()))
}

#[test]
fn clean_fixture_fires_nothing() {
    let diags = lint(&fixture("clean"));
    assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
}

#[test]
fn r1_no_unwrap_fires_exactly_once() {
    let root = fixture("r1_panic");
    let diags = lint(&root);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.rule, Rule::NoUnwrap);
    assert_eq!(d.path, Path::new("crates/engine/src/lib.rs"));
    assert_eq!(
        d.line,
        line_of(&root.join("crates/engine/src/lib.rs"), "s.parse().unwrap()")
    );
}

#[test]
fn r2_safety_comment_fires_exactly_once() {
    let root = fixture("r2_unsafe");
    let diags = lint(&root);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.rule, Rule::SafetyComment);
    assert_eq!(d.path, Path::new("crates/util/src/lib.rs"));
    // The documented + audited block passes; the undocumented one (the
    // second transmute) is the hit.
    let lib = root.join("crates/util/src/lib.rs");
    let text = fs::read_to_string(&lib).unwrap();
    let second = text
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("unsafe {"))
        .nth(1)
        .map(|(i, _)| i + 1)
        .unwrap();
    assert_eq!(d.line, second);
}

#[test]
fn r3_unsafe_audit_requires_a_live_test_reference() {
    let root = fixture("r3_audit");
    let diags = lint(&root);
    assert_eq!(diags.len(), 2, "{diags:?}");
    let lib = root.join("crates/util/src/lib.rs");
    for d in &diags {
        assert_eq!(d.rule, Rule::UnsafeAudit);
        assert_eq!(d.path, Path::new("crates/util/src/lib.rs"));
    }
    // bits_untested: documented but no `tested by:` marker.
    assert_eq!(diags[0].line, line_of(&lib, "bits_untested") + 2);
    assert!(diags[0].message.contains("names no exercising test"));
    // bits_rotted: cites a test that does not exist.
    assert_eq!(diags[1].line, line_of(&lib, "bits_rotted") + 2);
    assert!(diags[1].message.contains("a_test_renamed_away"));
}

#[test]
fn r4_no_f32_fires_exactly_once_and_only_in_coordinate_crates() {
    let root = fixture("r3_f32");
    let diags = lint(&root);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.rule, Rule::NoF32);
    assert_eq!(d.path, Path::new("crates/geo/src/lib.rs"));
    assert_eq!(
        d.line,
        line_of(&root.join("crates/geo/src/lib.rs"), "-> f32")
    );
}

#[test]
fn r5_seqcst_fires_exactly_once() {
    let root = fixture("r4_seqcst");
    let diags = lint(&root);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.rule, Rule::SeqCstJustify);
    assert_eq!(d.path, Path::new("crates/engine/src/lib.rs"));
    // The unjustified bump(), not the justified bump_fenced() and not the
    // test module.
    let lib = root.join("crates/engine/src/lib.rs");
    let text = fs::read_to_string(&lib).unwrap();
    let first = text
        .lines()
        .position(|l| l.contains("fetch_add(1, Ordering::SeqCst)"))
        .unwrap()
        + 1;
    assert_eq!(d.line, first);
}

#[test]
fn r6_missing_deny_attr_fires_exactly_once() {
    let diags = lint(&fixture("r5_attr"));
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.rule, Rule::LintWall);
    assert_eq!(d.path, Path::new("crates/plain/src/lib.rs"));
    assert_eq!(d.line, 1);
}

#[test]
fn r6_missing_manifest_opt_in_fires_exactly_once() {
    let diags = lint(&fixture("r5_manifest"));
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.rule, Rule::LintWall);
    assert_eq!(d.path, Path::new("crates/plain/Cargo.toml"));
}

#[test]
fn r7_wire_exhaustive_flags_the_half_wired_opcode() {
    let root = fixture("r7_wire");
    let diags = lint(&root);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.rule, Rule::WireExhaustive);
    assert_eq!(d.path, Path::new("crates/net/src/proto.rs"));
    let proto = root.join("crates/net/src/proto.rs");
    assert_eq!(d.line, line_of(&proto, "pub const REQ_GHOST"));
    assert!(d.message.contains("REQ_GHOST"));
    assert!(d.message.contains("decode"), "{}", d.message);
    assert!(d.message.contains("test"), "{}", d.message);
}

#[test]
fn r8_lock_order_flags_inversion_and_seqcst_escalation() {
    let root = fixture("r8_lock");
    let diags = lint(&root);
    assert_eq!(diags.len(), 2, "{diags:?}");
    for d in &diags {
        assert_eq!(d.rule, Rule::LockOrder);
    }
    // The inverted acquisition fires at the service.read() inside
    // `inverted`, not at the correctly ordered pair in `ordered`.
    let lib = root.join("crates/srv/src/lib.rs");
    let text = fs::read_to_string(&lib).unwrap();
    let inverted_read = text
        .lines()
        .enumerate()
        .skip(line_of(&lib, "fn inverted"))
        .find(|(_, l)| l.contains("service.read()"))
        .map(|(i, _)| i + 1)
        .unwrap();
    let d_order = diags
        .iter()
        .find(|d| d.path == Path::new("crates/srv/src/lib.rs"))
        .unwrap();
    assert_eq!(d_order.line, inverted_read);
    assert!(d_order.message.contains("`service`"));
    // The justified-but-uninventoried SeqCst is an escalation.
    let d_seq = diags
        .iter()
        .find(|d| d.path == Path::new("crates/srv/src/seq.rs"))
        .unwrap();
    assert_eq!(
        d_seq.line,
        line_of(&root.join("crates/srv/src/seq.rs"), "fetch_add")
    );
    assert!(d_seq.message.contains("escalation"));
}

#[test]
fn escape_hatch_suppresses_every_covered_rule() {
    let diags = lint(&fixture("allowed"));
    assert!(diags.is_empty(), "hatch did not suppress: {diags:?}");
}

#[test]
fn r9_unknown_rule_in_allow_suppresses_nothing_and_is_flagged() {
    let root = fixture("hatch_unknown");
    let diags = lint(&root);
    assert_eq!(diags.len(), 2, "{diags:?}");
    let lib = root.join("crates/a/src/lib.rs");
    let d_allow = diags.iter().find(|d| d.rule == Rule::AllowAudit).unwrap();
    assert_eq!(d_allow.line, line_of(&lib, "allow(no_panics)"));
    assert!(d_allow.message.contains("no_panics"));
    assert!(d_allow.message.contains("known rules"));
    // The violation the typo'd allow failed to cover still fires.
    let d_unwrap = diags.iter().find(|d| d.rule == Rule::NoUnwrap).unwrap();
    assert_eq!(d_unwrap.line, line_of(&lib, "s.parse().unwrap()"));
}

#[test]
fn r9_reasonless_allow_is_flagged_but_still_suppresses() {
    let root = fixture("hatch_reasonless");
    let diags = lint(&root);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.rule, Rule::AllowAudit);
    assert_eq!(
        d.line,
        line_of(&root.join("crates/a/src/lib.rs"), "allow(no_unwrap)")
    );
    assert!(d.message.contains("no reason"));
}

#[test]
fn r9_test_code_allows_may_be_terse_but_not_typod() {
    let root = fixture("hatch_in_test");
    let diags = lint(&root);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.rule, Rule::AllowAudit);
    assert_eq!(
        d.line,
        line_of(&root.join("crates/a/src/lib.rs"), "allow(safety_coment)")
    );
    assert!(d.message.contains("safety_coment"));
}

#[test]
fn empty_scan_is_a_hard_error_not_a_clean_pass() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("empty-scan");
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("crates")).unwrap();
    match lint_workspace(&root) {
        Err(LintError::NoSources { root: r }) => assert_eq!(r, root),
        other => panic!("expected NoSources, got {other:?}"),
    }
}

#[test]
fn config_typos_are_hard_errors() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("bad-config");
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("crates")).unwrap();
    fs::write(root.join("xtask.toml"), "[lock_order]\nordr = [\"a\"]\n").unwrap();
    match lint_workspace(&root) {
        Err(LintError::Config(e)) => assert!(e.to_string().contains("ordr")),
        other => panic!("expected Config error, got {other:?}"),
    }
}

#[test]
fn json_rendering_is_machine_readable() {
    let diags = lint(&fixture("r1_panic"));
    let json = xtask::json::render(&diags);
    assert!(json.contains("\"rule\": \"no_unwrap\""));
    assert!(json.contains("\"path\": \"crates/engine/src/lib.rs\""));
    assert!(json.trim_start().starts_with('['));
    assert!(json.trim_end().ends_with(']'));
}

#[test]
fn the_real_tree_is_clean() {
    let diags = lint(&repo_root());
    assert!(
        diags.is_empty(),
        "workspace no longer conforms:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Builds a scratch workspace containing the real `pol-engine` sources and
/// returns its root.
fn scratch_engine_tree(name: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let engine = root.join("crates/engine");
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(engine.join("src")).unwrap();
    let real = repo_root().join("crates/engine");
    fs::copy(real.join("Cargo.toml"), engine.join("Cargo.toml")).unwrap();
    for f in [
        "lib.rs",
        "pool.rs",
        "dataset.rs",
        "keyed.rs",
        "error.rs",
        "metrics.rs",
    ] {
        let src = real.join("src").join(f);
        if src.is_file() {
            fs::copy(&src, engine.join("src").join(f)).unwrap();
        }
    }
    root
}

#[test]
fn inserting_unwrap_into_pool_rs_turns_the_lint_red() {
    let root = scratch_engine_tree("unwrap-in-pool");
    assert!(
        lint(&root).is_empty(),
        "scratch copy of engine must start clean"
    );

    let pool = root.join("crates/engine/src/pool.rs");
    let mut text = fs::read_to_string(&pool).unwrap();
    text.push_str("\n/// Deliberately non-conforming.\npub fn broken() -> u32 {\n    \"7\".parse().unwrap()\n}\n");
    let bad_line = text.lines().count() - 1;
    fs::write(&pool, text).unwrap();

    let diags = lint(&root);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.rule, Rule::NoUnwrap);
    assert_eq!(d.path, Path::new("crates/engine/src/pool.rs"));
    assert_eq!(d.line, bad_line);
    // The rendered diagnostic is the promised file:line form.
    assert!(d.to_string().starts_with(&format!(
        "crates/engine/src/pool.rs:{bad_line}: [no_unwrap]"
    )));
}

#[test]
fn removing_a_safety_comment_turns_the_lint_red() {
    let root = scratch_engine_tree("safety-removed");
    let extra = root.join("crates/engine/src/ffi.rs");
    fs::write(
        &extra,
        "//! Scratch module with a documented unsafe block.\n\n\
         /// Bit-level view of a float.\n\
         pub fn bits(x: f64) -> u64 {\n\
         \x20   // SAFETY: f64 and u64 have identical size; all bit\n\
         \x20   // patterns are valid u64 values; tested by: scratch_bits.\n\
         \x20   unsafe { std::mem::transmute(x) }\n\
         }\n\n\
         #[cfg(test)]\n\
         mod tests {\n\
         \x20   #[test]\n\
         \x20   fn scratch_bits() {\n\
         \x20       assert_eq!(f64::from_bits(super::bits(1.5)), 1.5);\n\
         \x20   }\n\
         }\n",
    )
    .unwrap();
    assert!(lint(&root).is_empty(), "documented unsafe must pass");

    // Strip the SAFETY comment and lint again.
    let text = fs::read_to_string(&extra).unwrap();
    let stripped: String = text
        .lines()
        .filter(|l| !l.contains("SAFETY:") && !l.contains("patterns are valid"))
        .map(|l| format!("{l}\n"))
        .collect();
    fs::write(&extra, &stripped).unwrap();

    let diags = lint(&root);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.rule, Rule::SafetyComment);
    assert_eq!(d.path, Path::new("crates/engine/src/ffi.rs"));
    assert_eq!(
        d.line,
        stripped
            .lines()
            .position(|l| l.contains("unsafe {"))
            .unwrap()
            + 1
    );
}
