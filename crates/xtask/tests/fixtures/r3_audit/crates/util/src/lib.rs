//! Crate exercising the `unsafe_audit` contract rule.
#![deny(missing_docs)]

/// Fully audited: SAFETY names the invariant and the test (must not fire).
pub fn bits_ok(x: f64) -> u64 {
    // SAFETY: f64 and u64 have the same size and any bit pattern is a
    // valid u64; tested by: bits_roundtrip.
    unsafe { std::mem::transmute(x) }
}

/// Documented but unaudited: no `tested by:` marker (violation one).
pub fn bits_untested(x: f64) -> u64 {
    // SAFETY: same-size transmute is always defined for u64.
    unsafe { std::mem::transmute(x) }
}

/// Cites a test that does not exist (violation two).
pub fn bits_rotted(x: f64) -> u64 {
    // SAFETY: same-size transmute; tested by: a_test_renamed_away.
    unsafe { std::mem::transmute(x) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        assert_eq!(f64::from_bits(bits_ok(1.5)), 1.5);
    }
}
