//! Serving-shaped crate exercising lock acquisition order.
#![deny(missing_docs)]

pub mod seq;

use std::sync::{Mutex, RwLock};

/// Shared state with the workspace's two ordered locks.
pub struct State {
    /// Outermost lock.
    pub service: RwLock<u64>,
    /// Innermost lock.
    pub cache: Mutex<u64>,
}

/// Acquires in the declared order (must not fire).
pub fn ordered(s: &State) -> u64 {
    let svc = match s.service.read() {
        Ok(g) => *g,
        Err(_) => return 0,
    };
    match s.cache.lock() {
        Ok(g) => svc + *g,
        Err(_) => svc,
    }
}

/// Acquires the outer lock while holding the inner one (the violation).
pub fn inverted(s: &State) -> u64 {
    let held = match s.cache.lock() {
        Ok(g) => *g,
        Err(_) => return 0,
    };
    match s.service.read() {
        Ok(g) => held + *g,
        Err(_) => held,
    }
}
