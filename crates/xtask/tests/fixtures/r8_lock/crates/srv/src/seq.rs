//! SeqCst outside the declared allowlist (escalation violation).

use std::sync::atomic::{AtomicU64, Ordering};

/// Justified for `seqcst_justify`, but the file is not inventoried.
pub fn bump(c: &AtomicU64) -> u64 {
    // SeqCst: needs a single total order with the reload flag.
    c.fetch_add(1, Ordering::SeqCst)
}
