//! Documented crate that forgot the missing_docs wall.

/// A documented function.
pub fn noop() {}
