//! Hot-path crate with one banned unwrap in non-test code.
#![deny(missing_docs)]

/// Parses a number, panicking on malformed input (the violation).
pub fn parse(s: &str) -> u32 {
    s.parse().unwrap()
}

/// `unwrap_or` is not a panic and must not fire.
pub fn parse_or_zero(s: &str) -> u32 {
    s.parse().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_test_mod_is_exempt() {
        assert_eq!(super::parse("3"), 3);
        let v: u32 = "4".parse().unwrap();
        assert_eq!(v, 4);
    }
}
