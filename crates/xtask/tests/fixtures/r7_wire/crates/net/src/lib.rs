//! Wire crate exercising opcode exhaustiveness.
#![deny(missing_docs)]

pub mod proto;
