//! Toy wire protocol with one fully wired opcode and one half-wired.

/// Fully wired request opcode (must not fire).
pub const REQ_PING: u8 = 0;
/// Encoded but never decoded and never round-tripped (the violation).
pub const REQ_GHOST: u8 = 1;

/// Encodes an opcode marker.
pub fn encode_op(op: u8) -> Vec<u8> {
    vec![op]
}

/// Encodes a ping frame.
pub fn encode_ping() -> Vec<u8> {
    encode_op(REQ_PING)
}

/// Encodes the ghost frame nobody can decode.
pub fn encode_ghost() -> Vec<u8> {
    encode_op(REQ_GHOST)
}

/// Decodes a frame tag.
pub fn decode_op(buf: &[u8]) -> Option<u8> {
    match buf.first().copied() {
        Some(REQ_PING) => Some(REQ_PING),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_round_trips() {
        assert_eq!(decode_op(&encode_ping()), Some(REQ_PING));
    }
}
