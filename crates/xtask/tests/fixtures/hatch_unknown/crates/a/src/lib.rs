//! An escape hatch citing a rule that does not exist.
#![deny(missing_docs)]

/// The allow names `no_panics` (retired) so it suppresses nothing.
pub fn parse(s: &str) -> u32 {
    // lint: allow(no_panics) — legacy rule name from an older catalog.
    s.parse().unwrap()
}
