//! A conforming hot-path crate: no rule fires here.
#![deny(missing_docs)]

/// Divides, returning `None` on a zero divisor instead of panicking.
pub fn checked_div(a: u64, b: u64) -> Option<u64> {
    a.checked_div(b)
}

// A doc-comment or string mentioning panic! or .unwrap() must not fire:
/// This API never calls `.unwrap()` and never hits `panic!`.
pub fn describe() -> &'static str {
    "no unwrap() here; the word unsafe in a string is fine"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_unwrap() {
        assert_eq!(checked_div(8, 2).unwrap(), 4);
    }
}
