//! Integration tests are exempt from no_panics.
#[test]
fn unwrap_is_fine_here() {
    assert_eq!("7".parse::<u32>().unwrap(), 7);
}
