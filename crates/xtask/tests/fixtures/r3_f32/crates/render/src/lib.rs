//! Non-coordinate crate: f32 is allowed here.
#![deny(missing_docs)]

/// Pixel intensity for figures; precision is irrelevant.
pub fn intensity(records: u64) -> f32 {
    (records as f32).ln_1p()
}
