//! Coordinate crate using single precision (the violation).
#![deny(missing_docs)]

/// A latitude stored at single precision loses metres of accuracy.
pub fn truncate_lat(lat: f64) -> f32 { lat as _ }
