//! Crate with one unjustified SeqCst ordering.
#![deny(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};

/// Counter bumped with an unjustified strongest ordering (the violation).
pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::SeqCst)
}

/// Justified use (must not fire).
pub fn bump_fenced(c: &AtomicU64) -> u64 {
    // SeqCst: this op must totally order with the flush flag below;
    // Acquire/Release on two locations does not give a single total order.
    c.fetch_add(1, Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqcst_in_tests_is_exempt() {
        let c = AtomicU64::new(0);
        c.store(5, Ordering::SeqCst);
        assert_eq!(bump(&c), 5);
    }
}
