//! Crate whose manifest skips the workspace lint table.
#![deny(missing_docs)]

/// A documented function.
pub fn noop() {}
