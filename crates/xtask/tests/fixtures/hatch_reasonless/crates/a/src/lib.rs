//! An escape hatch with no reason.
#![deny(missing_docs)]

/// Suppressed, but the hatch itself is flagged for missing its proof.
pub fn parse(s: &str) -> u32 {
    // lint: allow(no_unwrap)
    s.parse().unwrap()
}
