//! Escape hatches inside test code: reasons optional, typos still flagged.
#![deny(missing_docs)]

/// A documented function so the crate has non-test content.
pub fn id(x: u64) -> u64 {
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terse_allow_is_fine_in_tests() {
        // lint: allow(safety_comment)
        let bits = unsafe { std::mem::transmute::<f64, u64>(1.0) };
        assert_eq!(id(bits), bits);
    }

    #[test]
    fn typo_still_flagged() {
        // lint: allow(safety_coment) — typo'd rule names suppress nothing.
        assert_eq!(id(7), 7);
    }
}
