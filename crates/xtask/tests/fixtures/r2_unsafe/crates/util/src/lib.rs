//! Crate with one undocumented unsafe block.
#![deny(missing_docs)]

/// Reinterprets bits with a documented, audited invariant (must not fire).
pub fn bits_ok(x: f64) -> u64 {
    // SAFETY: f64 and u64 have the same size and any bit pattern is a
    // valid u64; tested by: bits_roundtrip.
    unsafe { std::mem::transmute(x) }
}

/// Same operation, missing the SAFETY comment (the violation).
pub fn bits_bad(x: f64) -> u64 {
    unsafe { std::mem::transmute(x) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        assert_eq!(f64::from_bits(bits_ok(1.5)), 1.5);
    }
}
