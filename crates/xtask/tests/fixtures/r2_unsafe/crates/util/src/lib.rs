//! Crate with one undocumented unsafe block.
#![deny(missing_docs)]

/// Reinterprets bits with a documented invariant (must not fire).
pub fn bits_ok(x: f64) -> u64 {
    // SAFETY: f64 and u64 have the same size and any bit pattern is a
    // valid u64.
    unsafe { std::mem::transmute(x) }
}

/// Same operation, missing the SAFETY comment (the violation).
pub fn bits_bad(x: f64) -> u64 {
    unsafe { std::mem::transmute(x) }
}
