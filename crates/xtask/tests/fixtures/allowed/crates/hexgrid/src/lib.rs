//! Hot-path coordinate crate where every hit is hatch-allowed.
#![deny(missing_docs)]

/// A checked-at-construction invariant justifies the expect.
pub fn first_digit(digits: &[u8]) -> u8 {
    // lint: allow(no_unwrap) — callers construct `digits` non-empty; the
    // invariant is asserted at parse time.
    *digits.first().expect("digits are non-empty by construction")
}

/// The allow comment also covers a multi-line expression below it.
pub fn compact_level(levels: &[u8]) -> u8 {
    // lint: allow(no_unwrap) — same construction invariant as above.
    levels
        .iter()
        .copied()
        .max()
        .expect("levels are non-empty by construction")
}

/// A lossy diagnostic export, hatch-allowed for the whole function.
// lint: allow(no_f32) — diagnostics only; never fed back into math.
pub fn lossy_export(x: f64) -> f32 {
    x as f32
}
