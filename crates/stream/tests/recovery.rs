//! The recovery gate: a kill/restart at *any* point of the streamed
//! run must reconverge exactly.
//!
//! The sweep simulates a crash after every stride of wire records —
//! the journaled engine is abandoned mid-run (no seal, no close,
//! pending group-commit frames lost, exactly what an `abort()` leaves
//! on a healthy filesystem) — then recovers, resumes the wire where
//! the durable journal ends, and closes. The gate:
//!
//! * the recovered-then-closed inventory is **byte-identical** to an
//!   uninterrupted streamed run *and* to the batch build;
//! * the published delta chain holds contiguous generations whose
//!   files are byte-identical to the uninterrupted run's chain — no
//!   duplicated, skipped, or diverging generation;
//! * ingestion counters match the uninterrupted run exactly
//!   (exactly-once accounting).
//!
//! Alongside the sweep: checkpoint-cadence permutations (replay from a
//! checkpoint equals full replay equals no checkpoint at all), torn
//! journal tails, and planted chain orphans.

use pol_ais::PositionReport;
use pol_core::codec::{self, columnar, manifest};
use pol_core::records::PortSite;
use pol_core::{run_fused, PipelineConfig};
use pol_engine::Engine;
use pol_fleetsim::scenario::{generate, ScenarioConfig};
use pol_fleetsim::stream::interleave;
use pol_fleetsim::WORLD_PORTS;
use pol_stream::{
    recover, DeltaPublisher, IngestCounters, JournaledEngine, StreamConfig, StreamEngine,
    WalConfig, WindowSpec,
};
use std::path::{Path, PathBuf};

fn port_sites(radius_km: f64) -> Vec<PortSite> {
    WORLD_PORTS
        .iter()
        .enumerate()
        .map(|(i, p)| PortSite {
            id: i as u16,
            name: p.name.to_string(),
            pos: p.pos(),
            radius_km,
        })
        .collect()
}

struct Fixture {
    wire: Vec<PositionReport>,
    statics: Vec<pol_ais::StaticReport>,
    ports: Vec<PortSite>,
    spec: WindowSpec,
    /// Batch-oracle inventory bytes over the same records.
    batch_bytes: Vec<u8>,
}

fn fixture() -> Fixture {
    let scenario = ScenarioConfig::tiny();
    let ds = generate(&scenario);
    let cfg = PipelineConfig::default();
    let ports = port_sites(cfg.port_radius_km);
    let batch = run_fused(
        &Engine::new(2),
        ds.positions.clone(),
        &ds.statics,
        &ports,
        &cfg,
    )
    .unwrap();
    Fixture {
        wire: interleave(ds.positions).collect(),
        statics: ds.statics,
        ports,
        spec: WindowSpec {
            start_ts: ds.config.start,
            window_secs: 2 * 86_400,
        },
        batch_bytes: codec::to_bytes(&batch.inventory),
    }
}

/// Small journal tunables so even the tiny scenario exercises group
/// commit boundaries and segment rotation.
fn wal_cfg() -> WalConfig {
    WalConfig {
        batch_records: 64,
        group_commit_batches: 4,
        max_segment_bytes: 64 << 10,
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One driver step, shared by every run in this suite (and mirrored by
/// the `polstream` binary): push, then cut every window the watermark
/// allows, publishing exactly-once by generation.
fn step(
    je: &mut JournaledEngine,
    publisher: &mut DeltaPublisher,
    spec: &WindowSpec,
    engine: &Engine,
    r: PositionReport,
) {
    je.push(r).unwrap();
    while je.watermark() >= spec.cut_at(je.window_cuts()) {
        let gen = je.window_cuts();
        let delta = je.take_window_delta(engine).unwrap();
        publisher.publish_at(gen, &delta).unwrap();
    }
}

struct RunResult {
    inventory_bytes: Vec<u8>,
    counters: IngestCounters,
    /// `(file name, file bytes)` for every chain link, in generation
    /// order.
    chain_files: Vec<(String, Vec<u8>)>,
}

fn chain_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let man = match manifest::load(&dir.join(pol_stream::MANIFEST_NAME)) {
        Ok(m) => m,
        Err(_) => return Vec::new(),
    };
    man.entries
        .iter()
        .map(|e| (e.name.clone(), std::fs::read(dir.join(&e.name)).unwrap()))
        .collect()
}

/// The uninterrupted oracle: the full wire through one journaled
/// engine, windows cut on schedule, clean close.
fn uninterrupted(fx: &Fixture, dir: &Path, checkpoint_every: u64) -> RunResult {
    let engine = Engine::new(2);
    let se = StreamEngine::new(&fx.statics, &fx.ports, StreamConfig::default());
    let mut je = JournaledEngine::create(dir, se, wal_cfg(), checkpoint_every).unwrap();
    let mut publisher = DeltaPublisher::create(dir);
    for &r in &fx.wire {
        step(&mut je, &mut publisher, &fx.spec, &engine, r);
    }
    let out = je.close(&engine).unwrap();
    RunResult {
        inventory_bytes: codec::to_bytes(&out.inventory),
        counters: out.counters,
        chain_files: chain_files(dir),
    }
}

/// Feeds `kill_at` wire records and abandons the run (simulated kill),
/// then recovers in place, resumes the wire at the durable ingested
/// count, and closes cleanly.
fn crash_and_recover(fx: &Fixture, dir: &Path, kill_at: usize, checkpoint_every: u64) -> RunResult {
    let engine = Engine::new(2);
    {
        let se = StreamEngine::new(&fx.statics, &fx.ports, StreamConfig::default());
        let mut je = JournaledEngine::create(dir, se, wal_cfg(), checkpoint_every).unwrap();
        let mut publisher = DeltaPublisher::create(dir);
        for &r in &fx.wire[..kill_at] {
            step(&mut je, &mut publisher, &fx.spec, &engine, r);
        }
        // Kill: drop without seal or close. Pending records that never
        // reached a durable batch die with the process.
    }

    let (mut publisher, _swept) = DeltaPublisher::open(dir).unwrap();
    let (mut je, report) = recover(
        dir,
        &engine,
        &fx.statics,
        &fx.ports,
        StreamConfig::default(),
        wal_cfg(),
        checkpoint_every,
        Some((&mut publisher, fx.spec)),
    )
    .unwrap();

    // The journal's durable prefix is exactly what the engine counted:
    // the wire resumes at that index with no duplicate and no gap.
    let resume_at = usize::try_from(je.counters().ingested).unwrap();
    assert!(
        resume_at <= kill_at,
        "recovery cannot know records the crash never durably journaled"
    );
    if report.checkpoint_found {
        assert!(
            report.records_replayed <= checkpoint_every.max(1) + 8 * 64,
            "replay past a checkpoint is bounded by cadence plus the group-commit window"
        );
    }
    for &r in &fx.wire[resume_at..] {
        step(&mut je, &mut publisher, &fx.spec, &engine, r);
    }
    let out = je.close(&engine).unwrap();
    RunResult {
        inventory_bytes: codec::to_bytes(&out.inventory),
        counters: out.counters,
        chain_files: chain_files(dir),
    }
}

fn assert_converged(oracle: &RunResult, recovered: &RunResult, label: &str) {
    assert_eq!(
        recovered.inventory_bytes, oracle.inventory_bytes,
        "{label}: recovered-then-closed inventory must be byte-identical"
    );
    assert_eq!(
        recovered.counters, oracle.counters,
        "{label}: counters must match the uninterrupted run exactly"
    );
    assert_eq!(
        recovered.chain_files.len(),
        oracle.chain_files.len(),
        "{label}: chain length must match (no duplicate or skipped generation)"
    );
    for ((got_name, got), (want_name, want)) in
        recovered.chain_files.iter().zip(&oracle.chain_files)
    {
        assert_eq!(
            got_name, want_name,
            "{label}: chain file names must line up"
        );
        assert_eq!(
            got, want,
            "{label}: chain file {got_name} must be byte-identical"
        );
    }
}

#[test]
fn crash_point_sweep_reconverges_byte_identically() {
    let fx = fixture();
    let oracle_dir = fresh_dir("pol-recovery-oracle");
    let oracle = uninterrupted(&fx, &oracle_dir, 500);
    assert_eq!(oracle.counters.late_dropped, 0);
    assert_eq!(
        oracle.inventory_bytes, fx.batch_bytes,
        "journaling must not perturb the streamed-equals-batch identity"
    );
    assert!(
        oracle.chain_files.len() >= 2,
        "scenario must span several delta windows"
    );
    let report = manifest::verify_chain(&oracle_dir.join(pol_stream::MANIFEST_NAME)).unwrap();
    assert_eq!(report.files.len(), oracle.chain_files.len());

    // Kill points across the whole wire, plus the edges: before any
    // record, one record in, mid-wire around checkpoint/cut boundaries,
    // and after the final record (crash before the clean close).
    let n = fx.wire.len();
    let mut kill_points = vec![0, 1, n / 7, n / 3, n / 2, 2 * n / 3, n - 1, n];
    kill_points.dedup();
    for kill_at in kill_points {
        let dir = fresh_dir(&format!("pol-recovery-sweep-{kill_at}"));
        let recovered = crash_and_recover(&fx, &dir, kill_at, 500);
        assert_converged(&oracle, &recovered, &format!("kill at {kill_at}/{n}"));
        let verify = manifest::verify_chain(&dir.join(pol_stream::MANIFEST_NAME)).unwrap();
        for (gen, file) in verify.files.iter().enumerate() {
            assert_eq!(
                file.generation, gen as u64,
                "generations must be contiguous from 0"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&oracle_dir).ok();
}

#[test]
fn checkpoint_cadence_never_changes_the_answer() {
    let fx = fixture();
    let oracle_dir = fresh_dir("pol-recovery-cadence-oracle");
    let oracle = uninterrupted(&fx, &oracle_dir, 0);
    let kill_at = fx.wire.len() / 2;
    // 0 = no checkpoints (full replay); the others replay checkpoint +
    // suffix. Every cadence must agree with every other byte for byte.
    for cadence in [0u64, 128, 701, 5_000] {
        let dir = fresh_dir(&format!("pol-recovery-cadence-{cadence}"));
        let recovered = crash_and_recover(&fx, &dir, kill_at, cadence);
        assert_converged(&oracle, &recovered, &format!("cadence {cadence}"));
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&oracle_dir).ok();
}

#[test]
fn torn_journal_tail_is_discarded_and_replayed_from_the_wire() {
    let fx = fixture();
    let oracle_dir = fresh_dir("pol-recovery-torn-oracle");
    let oracle = uninterrupted(&fx, &oracle_dir, 300);

    let dir = fresh_dir("pol-recovery-torn");
    let engine = Engine::new(2);
    {
        let se = StreamEngine::new(&fx.statics, &fx.ports, StreamConfig::default());
        let mut je = JournaledEngine::create(&dir, se, wal_cfg(), 300).unwrap();
        let mut publisher = DeltaPublisher::create(&dir);
        for &r in &fx.wire[..fx.wire.len() / 2] {
            step(&mut je, &mut publisher, &fx.spec, &engine, r);
        }
    }
    // Tear the journal tail mid-frame — the torn suffix must be
    // detected, discarded, and re-fed from the wire instead.
    let mut tail: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "polwal"))
        .collect();
    tail.sort();
    let tail = tail.pop().unwrap();
    let bytes = std::fs::read(&tail).unwrap();
    assert!(bytes.len() > 40, "tail must hold something to tear");
    std::fs::write(&tail, &bytes[..bytes.len() - 11]).unwrap();

    let (mut publisher, _) = DeltaPublisher::open(&dir).unwrap();
    let (mut je, report) = recover(
        &dir,
        &engine,
        &fx.statics,
        &fx.ports,
        StreamConfig::default(),
        wal_cfg(),
        300,
        Some((&mut publisher, fx.spec)),
    )
    .unwrap();
    assert!(report.torn_bytes > 0, "the torn suffix must be observed");
    let resume_at = usize::try_from(je.counters().ingested).unwrap();
    for &r in &fx.wire[resume_at..] {
        step(&mut je, &mut publisher, &fx.spec, &engine, r);
    }
    let out = je.close(&engine).unwrap();
    let recovered = RunResult {
        inventory_bytes: codec::to_bytes(&out.inventory),
        counters: out.counters,
        chain_files: chain_files(&dir),
    };
    assert_converged(&oracle, &recovered, "torn tail");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&oracle_dir).ok();
}

#[test]
fn planted_chain_orphan_is_swept_and_generation_reused() {
    let fx = fixture();
    let oracle_dir = fresh_dir("pol-recovery-orphan-oracle");
    let oracle = uninterrupted(&fx, &oracle_dir, 400);

    let dir = fresh_dir("pol-recovery-orphan");
    let engine = Engine::new(2);
    {
        let se = StreamEngine::new(&fx.statics, &fx.ports, StreamConfig::default());
        let mut je = JournaledEngine::create(&dir, se, wal_cfg(), 400).unwrap();
        let mut publisher = DeltaPublisher::create(&dir);
        for &r in &fx.wire[..2 * fx.wire.len() / 3] {
            step(&mut je, &mut publisher, &fx.spec, &engine, r);
        }
        // Plant the debris of a publish that died between snapshot
        // write and manifest commit.
        let next_gen = publisher.chain_len();
        std::fs::write(
            dir.join(format!("delta-{next_gen:05}.pol")),
            b"half-published garbage",
        )
        .unwrap();
    }

    let (mut publisher, swept) = DeltaPublisher::open(&dir).unwrap();
    assert_eq!(swept.removed.len(), 1, "the orphan must be swept");
    let (mut je, _) = recover(
        &dir,
        &engine,
        &fx.statics,
        &fx.ports,
        StreamConfig::default(),
        wal_cfg(),
        400,
        Some((&mut publisher, fx.spec)),
    )
    .unwrap();
    let resume_at = usize::try_from(je.counters().ingested).unwrap();
    for &r in &fx.wire[resume_at..] {
        step(&mut je, &mut publisher, &fx.spec, &engine, r);
    }
    let out = je.close(&engine).unwrap();
    let recovered = RunResult {
        inventory_bytes: codec::to_bytes(&out.inventory),
        counters: out.counters,
        chain_files: chain_files(&dir),
    };
    assert_converged(&oracle, &recovered, "planted orphan");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&oracle_dir).ok();
}

#[test]
fn double_crash_recovers_from_the_recovery_checkpoint() {
    let fx = fixture();
    let oracle_dir = fresh_dir("pol-recovery-double-oracle");
    let oracle = uninterrupted(&fx, &oracle_dir, 250);

    let dir = fresh_dir("pol-recovery-double");
    let engine = Engine::new(2);
    let n = fx.wire.len();
    // First life: a third of the wire, then a kill.
    {
        let se = StreamEngine::new(&fx.statics, &fx.ports, StreamConfig::default());
        let mut je = JournaledEngine::create(&dir, se, wal_cfg(), 250).unwrap();
        let mut publisher = DeltaPublisher::create(&dir);
        for &r in &fx.wire[..n / 3] {
            step(&mut je, &mut publisher, &fx.spec, &engine, r);
        }
    }
    // Second life: recover, push up to two thirds, killed again.
    {
        let (mut publisher, _) = DeltaPublisher::open(&dir).unwrap();
        let (mut je, _) = recover(
            &dir,
            &engine,
            &fx.statics,
            &fx.ports,
            StreamConfig::default(),
            wal_cfg(),
            250,
            Some((&mut publisher, fx.spec)),
        )
        .unwrap();
        let resume_at = usize::try_from(je.counters().ingested).unwrap();
        for &r in &fx.wire[resume_at..2 * n / 3] {
            step(&mut je, &mut publisher, &fx.spec, &engine, r);
        }
    }
    // Third life: recover again — the recovery checkpoint written by
    // life two bounds this replay — and finish.
    let (mut publisher, _) = DeltaPublisher::open(&dir).unwrap();
    let (mut je, report) = recover(
        &dir,
        &engine,
        &fx.statics,
        &fx.ports,
        StreamConfig::default(),
        wal_cfg(),
        250,
        Some((&mut publisher, fx.spec)),
    )
    .unwrap();
    assert!(report.checkpoint_found, "life two re-checkpointed");
    let resume_at = usize::try_from(je.counters().ingested).unwrap();
    for &r in &fx.wire[resume_at..] {
        step(&mut je, &mut publisher, &fx.spec, &engine, r);
    }
    let out = je.close(&engine).unwrap();
    let recovered = RunResult {
        inventory_bytes: codec::to_bytes(&out.inventory),
        counters: out.counters,
        chain_files: chain_files(&dir),
    };
    assert_converged(&oracle, &recovered, "double crash");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&oracle_dir).ok();
}

#[test]
fn recovery_without_windows_matches_ingest_recover_wrapper() {
    let fx = fixture();
    let dir = fresh_dir("pol-recovery-windowless");
    let engine = Engine::new(2);
    {
        let se = StreamEngine::new(&fx.statics, &fx.ports, StreamConfig::default());
        let mut je = JournaledEngine::create(&dir, se, WalConfig::default(), 300).unwrap();
        for &r in &fx.wire[..fx.wire.len() / 2] {
            je.push(r).unwrap();
        }
    }
    let (mut je, report) = StreamEngine::recover(
        &dir,
        &engine,
        &fx.statics,
        &fx.ports,
        StreamConfig::default(),
    )
    .unwrap();
    assert!(report.checkpoint_found);
    assert!(report.records_replayed > 0 || report.batches_replayed == 0);
    let resume_at = usize::try_from(je.counters().ingested).unwrap();
    for &r in &fx.wire[resume_at..] {
        je.push(r).unwrap();
    }
    let out = je.close(&engine).unwrap();
    assert_eq!(out.counters.late_dropped, 0);
    assert_eq!(
        codec::to_bytes(&out.inventory),
        fx.batch_bytes,
        "windowless recovery must still close byte-identical to the batch build"
    );
    assert!(!columnar::to_bytes(&out.inventory).is_empty());
    std::fs::remove_dir_all(&dir).ok();
}
