//! The tentpole invariant: after all watermarks close, the streamed
//! inventory is byte-identical to the batch build over the same
//! records — fed through `fleetsim`'s interleaved `--stream` wire,
//! disorder, dropouts and corrupt duplicates included.

use pol_core::codec::{self, columnar, manifest};
use pol_core::records::PortSite;
use pol_core::run_fused;
use pol_core::PipelineConfig;
use pol_engine::Engine;
use pol_fleetsim::emit::EmissionConfig;
use pol_fleetsim::scenario::{generate, ScenarioConfig};
use pol_fleetsim::stream::interleave;
use pol_fleetsim::WORLD_PORTS;
use pol_stream::{DeltaPublisher, StreamConfig, StreamEngine};

fn port_sites(radius_km: f64) -> Vec<PortSite> {
    WORLD_PORTS
        .iter()
        .enumerate()
        .map(|(i, p)| PortSite {
            id: i as u16,
            name: p.name.to_string(),
            pos: p.pos(),
            radius_km,
        })
        .collect()
}

/// Streams a scenario through a fresh engine and returns
/// (batch bytes, streamed bytes, counters, batch projected count).
fn run_both(scenario: &ScenarioConfig) -> (Vec<u8>, Vec<u8>, pol_stream::IngestCounters, u64) {
    let ds = generate(scenario);
    let cfg = PipelineConfig::default();
    let ports = port_sites(cfg.port_radius_km);
    let batch = run_fused(
        &Engine::new(2),
        ds.positions.clone(),
        &ds.statics,
        &ports,
        &cfg,
    )
    .unwrap();

    let mut se = StreamEngine::new(&ds.statics, &ports, StreamConfig::default());
    for r in interleave(ds.positions) {
        se.push(r);
    }
    let out = se.close(&Engine::new(2)).unwrap();
    (
        codec::to_bytes(&batch.inventory),
        codec::to_bytes(&out.inventory),
        out.counters,
        batch.counts.projected,
    )
}

#[test]
fn streamed_inventory_matches_batch_bytes() {
    let (batch, streamed, counters, projected) = run_both(&ScenarioConfig::tiny());
    assert_eq!(
        counters.late_dropped, 0,
        "reorder bound must cover the wire"
    );
    assert_eq!(counters.trip_points, projected);
    assert_eq!(batch, streamed, "streamed inventory must equal batch build");
}

#[test]
fn streamed_matches_batch_under_heavy_disorder() {
    let mut scenario = ScenarioConfig::tiny();
    scenario.seed = 77;
    scenario.emission = EmissionConfig {
        corrupt_rate: 0.02, // 40× the default out-of-order duplicate rate
        ..scenario.emission
    };
    let (batch, streamed, counters, _) = run_both(&scenario);
    assert_eq!(counters.late_dropped, 0);
    assert_eq!(batch, streamed);
}

#[test]
fn delta_emission_preserves_close_identity() {
    let ds = generate(&ScenarioConfig::tiny());
    let cfg = PipelineConfig::default();
    let ports = port_sites(cfg.port_radius_km);
    let batch = run_fused(
        &Engine::new(2),
        ds.positions.clone(),
        &ds.statics,
        &ports,
        &cfg,
    )
    .unwrap();

    let dir = std::env::temp_dir().join("pol-stream-identity-deltas");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let mut publisher = DeltaPublisher::create(&dir);

    // Cut a delta window every two simulated days of watermark progress.
    let engine = Engine::new(2);
    let mut se = StreamEngine::new(&ds.statics, &ports, StreamConfig::default());
    let mut next_cut = ds.config.start + 2 * 86_400;
    let mut published_records = 0u64;
    for r in interleave(ds.positions) {
        se.push(r);
        if se.watermark() >= next_cut {
            let delta = se.take_window_delta(&engine).unwrap();
            published_records += delta.total_records();
            publisher.publish(&delta).unwrap();
            next_cut += 2 * 86_400;
        }
    }

    // Snapshot emission must not perturb the close: identity holds.
    let out = se.close(&engine).unwrap();
    assert_eq!(out.counters.late_dropped, 0);
    assert_eq!(
        codec::to_bytes(&batch.inventory),
        codec::to_bytes(&out.inventory),
        "delta emission must not perturb the final inventory"
    );
    assert_eq!(
        columnar::to_bytes(&batch.inventory),
        columnar::to_bytes(&out.inventory),
        "identity must hold for the columnar image too"
    );

    // The published chain is sound and accounts for every record that
    // was final at the last cut.
    assert!(
        publisher.chain_len() >= 2,
        "scenario must span several windows"
    );
    let (merged, info) = manifest::load_chain(publisher.manifest_path()).unwrap();
    assert_eq!(info.chain_len, publisher.chain_len() as u64);
    assert_eq!(merged.total_records(), published_records);
    assert!(published_records <= out.counters.trip_points);
    let report = manifest::verify_chain(publisher.manifest_path()).unwrap();
    assert_eq!(report.files.len(), publisher.chain_len());
    std::fs::remove_dir_all(&dir).ok();
}
