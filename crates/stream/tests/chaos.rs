//! Chaos tests for delta publication (run with
//! `cargo test -p pol-stream --features chaos --test chaos`): injected
//! write and rename failures at any step of a publish must never
//! produce a loadable-but-wrong chain — readers either see the old
//! manifest (intact, fully verifiable) or the new one.

#![cfg(feature = "chaos")]

use pol_ais::types::{MarketSegment, Mmsi};
use pol_chaos::{configure, remove, stats, FaultAction, Trigger};
use pol_core::codec::{columnar, manifest};
use pol_core::features::{CellStats, GroupKey};
use pol_core::records::{CellPoint, TripPoint};
use pol_core::Inventory;
use pol_geo::LatLon;
use pol_hexgrid::{cell_at, Resolution};
use pol_sketch::hash::FxHashMap;
use pol_stream::DeltaPublisher;
use std::path::Path;

fn window_inventory(n: usize, salt: u64) -> Inventory {
    let res = Resolution::new(6).unwrap();
    let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
    for i in 0..n {
        let k = i as u64 + salt * 500;
        let pos = LatLon::new(5.0 + (k % 60) as f64, (k % 120) as f64).unwrap();
        let cell = cell_at(pos, res);
        let cp = CellPoint {
            point: TripPoint {
                mmsi: Mmsi(200_000_000 + (k % 5) as u32),
                timestamp: k as i64,
                pos,
                sog_knots: Some(9.0),
                cog_deg: Some((k % 360) as f64),
                heading_deg: None,
                segment: MarketSegment::from_id((k % 6) as u8).unwrap(),
                trip_id: k % 2,
                origin: 0,
                dest: 1,
                eto_secs: 0,
                ata_secs: 0,
            },
            cell,
            next_cell: None,
        };
        entries
            .entry(GroupKey::Cell(cell))
            .or_insert_with(|| CellStats::new(0.02, 8))
            .observe(&cp);
    }
    Inventory::from_entries(res, entries, n as u64)
}

/// Asserts the chain at `path` is fully sound and at `generation` with
/// `chain_len` files, returning the merged inventory's canonical bytes.
fn assert_chain(path: &Path, generation: u64, chain_len: u64) -> Vec<u8> {
    let report = manifest::verify_chain(path).unwrap();
    assert_eq!(report.generation, generation);
    assert_eq!(report.files.len(), chain_len as usize);
    let (merged, info) = manifest::load_chain(path).unwrap();
    assert_eq!(info.generation, generation);
    assert_eq!(info.chain_len, chain_len);
    columnar::to_bytes(&merged)
}

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn injected_snapshot_write_failure_keeps_old_chain_loadable() {
    let dir = fresh_dir("pol-stream-chaos-write");
    let mut publisher = DeltaPublisher::create(&dir);
    publisher.publish(&window_inventory(40, 0)).unwrap();
    publisher.publish(&window_inventory(25, 1)).unwrap();
    let before = assert_chain(publisher.manifest_path(), 1, 2);

    // The snapshot write itself fails — before the manifest is touched.
    configure("codec.save.write", Trigger::OneShot(FaultAction::Err));
    let err = publisher.publish(&window_inventory(30, 2));
    assert!(err.is_err(), "injected snapshot write failure must surface");
    assert_eq!(stats("codec.save.write").fired, 1);
    remove("codec.save.write");

    // The old chain is untouched: same generation, same merged bytes.
    assert_eq!(publisher.chain_len(), 2);
    assert_eq!(assert_chain(publisher.manifest_path(), 1, 2), before);

    // Disarmed, the retry extends the chain normally.
    assert_eq!(publisher.publish(&window_inventory(30, 2)).unwrap(), 2);
    assert_chain(publisher.manifest_path(), 2, 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_manifest_failure_leaves_orphan_but_valid_old_chain() {
    let dir = fresh_dir("pol-stream-chaos-manifest");
    let mut publisher = DeltaPublisher::create(&dir);
    publisher.publish(&window_inventory(40, 0)).unwrap();
    let before = assert_chain(publisher.manifest_path(), 0, 1);

    // Hit 1 is the snapshot file, hit 2 the manifest rewrite: the
    // worst case — a fully written new delta the commit never blessed.
    configure(
        "codec.save.write",
        Trigger::NthHit {
            n: 2,
            action: FaultAction::Err,
        },
    );
    assert!(publisher.publish(&window_inventory(25, 1)).is_err());
    assert_eq!(stats("codec.save.write").fired, 1);
    remove("codec.save.write");

    // The orphaned delta file exists but the manifest never names it:
    // the chain still loads exactly as before.
    assert_eq!(publisher.chain_len(), 1);
    assert_eq!(assert_chain(publisher.manifest_path(), 0, 1), before);

    // Recovery: the next publish reuses the generation slot and commits.
    assert_eq!(publisher.publish(&window_inventory(25, 1)).unwrap(), 1);
    assert_chain(publisher.manifest_path(), 1, 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_rename_failure_never_blesses_a_torn_manifest() {
    let dir = fresh_dir("pol-stream-chaos-rename");
    let mut publisher = DeltaPublisher::create(&dir);
    publisher.publish(&window_inventory(40, 0)).unwrap();
    publisher.publish(&window_inventory(30, 1)).unwrap();
    let before = assert_chain(publisher.manifest_path(), 1, 2);

    // Fail the manifest's atomic rename — after its temp file is fully
    // written and fsynced.
    configure(
        "codec.save.rename",
        Trigger::NthHit {
            n: 2,
            action: FaultAction::Err,
        },
    );
    assert!(publisher.publish(&window_inventory(20, 2)).is_err());
    remove("codec.save.rename");

    assert_eq!(assert_chain(publisher.manifest_path(), 1, 2), before);
    // No temp debris anywhere in the publication directory.
    assert!(std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .all(|e| !e.file_name().to_string_lossy().contains(".tmp.")));
    std::fs::remove_dir_all(&dir).ok();
}
