//! Chaos tests for delta publication and the write-ahead journal (run
//! with `cargo test -p pol-stream --features chaos --test chaos`):
//! injected write, sync, rename, and seal failures at any step of a
//! publish, journal append, or checkpoint must never produce
//! loadable-but-wrong state — readers either see the old artifact
//! (intact, fully verifiable) or the new one, and a crash at any
//! failpoint recovers byte-identically.
//!
//! Failpoint configuration is process-global, so every test takes the
//! [`GATE`] mutex for its whole body.

#![cfg(feature = "chaos")]

use pol_ais::types::{MarketSegment, Mmsi, NavStatus};
use pol_ais::PositionReport;
use pol_chaos::{configure, remove, stats, FaultAction, Trigger};
use pol_core::codec::{columnar, manifest};
use pol_core::features::{CellStats, GroupKey};
use pol_core::records::{CellPoint, PortSite, TripPoint};
use pol_core::Inventory;
use pol_engine::Engine;
use pol_fleetsim::scenario::{generate, ScenarioConfig};
use pol_fleetsim::stream::interleave;
use pol_fleetsim::WORLD_PORTS;
use pol_geo::LatLon;
use pol_hexgrid::{cell_at, Resolution};
use pol_sketch::hash::FxHashMap;
use pol_stream::{
    checkpoint, recover, DeltaPublisher, JournaledEngine, StreamConfig, StreamEngine, WalConfig,
    WalReader, WalWriter, WindowSpec, CHECKPOINT_NAME,
};
use std::path::Path;
use std::sync::Mutex;

/// Serializes every test in this binary: failpoints are global state.
static GATE: Mutex<()> = Mutex::new(());

fn window_inventory(n: usize, salt: u64) -> Inventory {
    let res = Resolution::new(6).unwrap();
    let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
    for i in 0..n {
        let k = i as u64 + salt * 500;
        let pos = LatLon::new(5.0 + (k % 60) as f64, (k % 120) as f64).unwrap();
        let cell = cell_at(pos, res);
        let cp = CellPoint {
            point: TripPoint {
                mmsi: Mmsi(200_000_000 + (k % 5) as u32),
                timestamp: k as i64,
                pos,
                sog_knots: Some(9.0),
                cog_deg: Some((k % 360) as f64),
                heading_deg: None,
                segment: MarketSegment::from_id((k % 6) as u8).unwrap(),
                trip_id: k % 2,
                origin: 0,
                dest: 1,
                eto_secs: 0,
                ata_secs: 0,
            },
            cell,
            next_cell: None,
        };
        entries
            .entry(GroupKey::Cell(cell))
            .or_insert_with(|| CellStats::new(0.02, 8))
            .observe(&cp);
    }
    Inventory::from_entries(res, entries, n as u64)
}

/// Asserts the chain at `path` is fully sound and at `generation` with
/// `chain_len` files, returning the merged inventory's canonical bytes.
fn assert_chain(path: &Path, generation: u64, chain_len: u64) -> Vec<u8> {
    let report = manifest::verify_chain(path).unwrap();
    assert_eq!(report.generation, generation);
    assert_eq!(report.files.len(), chain_len as usize);
    let (merged, info) = manifest::load_chain(path).unwrap();
    assert_eq!(info.generation, generation);
    assert_eq!(info.chain_len, chain_len);
    columnar::to_bytes(&merged)
}

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn injected_snapshot_write_failure_keeps_old_chain_loadable() {
    let _gate = GATE.lock().unwrap();
    let dir = fresh_dir("pol-stream-chaos-write");
    let mut publisher = DeltaPublisher::create(&dir);
    publisher.publish(&window_inventory(40, 0)).unwrap();
    publisher.publish(&window_inventory(25, 1)).unwrap();
    let before = assert_chain(publisher.manifest_path(), 1, 2);

    // The snapshot write itself fails — before the manifest is touched.
    configure("codec.save.write", Trigger::OneShot(FaultAction::Err));
    let err = publisher.publish(&window_inventory(30, 2));
    assert!(err.is_err(), "injected snapshot write failure must surface");
    assert_eq!(stats("codec.save.write").fired, 1);
    remove("codec.save.write");

    // The old chain is untouched: same generation, same merged bytes.
    assert_eq!(publisher.chain_len(), 2);
    assert_eq!(assert_chain(publisher.manifest_path(), 1, 2), before);

    // Disarmed, the retry extends the chain normally.
    assert_eq!(publisher.publish(&window_inventory(30, 2)).unwrap(), 2);
    assert_chain(publisher.manifest_path(), 2, 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_manifest_failure_leaves_orphan_but_valid_old_chain() {
    let _gate = GATE.lock().unwrap();
    let dir = fresh_dir("pol-stream-chaos-manifest");
    let mut publisher = DeltaPublisher::create(&dir);
    publisher.publish(&window_inventory(40, 0)).unwrap();
    let before = assert_chain(publisher.manifest_path(), 0, 1);

    // Hit 1 is the snapshot file, hit 2 the manifest rewrite: the
    // worst case — a fully written new delta the commit never blessed.
    configure(
        "codec.save.write",
        Trigger::NthHit {
            n: 2,
            action: FaultAction::Err,
        },
    );
    assert!(publisher.publish(&window_inventory(25, 1)).is_err());
    assert_eq!(stats("codec.save.write").fired, 1);
    remove("codec.save.write");

    // The orphaned delta file exists but the manifest never names it:
    // the chain still loads exactly as before.
    assert_eq!(publisher.chain_len(), 1);
    assert_eq!(assert_chain(publisher.manifest_path(), 0, 1), before);

    // Recovery: the next publish reuses the generation slot and commits.
    assert_eq!(publisher.publish(&window_inventory(25, 1)).unwrap(), 1);
    assert_chain(publisher.manifest_path(), 1, 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_rename_failure_never_blesses_a_torn_manifest() {
    let _gate = GATE.lock().unwrap();
    let dir = fresh_dir("pol-stream-chaos-rename");
    let mut publisher = DeltaPublisher::create(&dir);
    publisher.publish(&window_inventory(40, 0)).unwrap();
    publisher.publish(&window_inventory(30, 1)).unwrap();
    let before = assert_chain(publisher.manifest_path(), 1, 2);

    // Fail the manifest's atomic rename — after its temp file is fully
    // written and fsynced.
    configure(
        "codec.save.rename",
        Trigger::NthHit {
            n: 2,
            action: FaultAction::Err,
        },
    );
    assert!(publisher.publish(&window_inventory(20, 2)).is_err());
    remove("codec.save.rename");

    assert_eq!(assert_chain(publisher.manifest_path(), 1, 2), before);
    // No temp debris anywhere in the publication directory.
    assert!(std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .all(|e| !e.file_name().to_string_lossy().contains(".tmp.")));
    std::fs::remove_dir_all(&dir).ok();
}

fn wire_report(mmsi: u32, ts: i64) -> PositionReport {
    PositionReport {
        mmsi: Mmsi(mmsi),
        timestamp: ts,
        pos: LatLon::new(12.0 + (ts % 60) as f64, -30.0 + (ts % 120) as f64).unwrap(),
        sog_knots: Some((ts % 30) as f64),
        cog_deg: Some((ts % 360) as f64),
        heading_deg: None,
        nav_status: NavStatus::UnderWayUsingEngine,
    }
}

#[test]
fn wal_append_write_fault_preserves_the_pending_frame() {
    let _gate = GATE.lock().unwrap();
    let dir = fresh_dir("pol-stream-chaos-wal-append");
    let cfg = WalConfig {
        batch_records: 8,
        group_commit_batches: 1,
        ..WalConfig::default()
    };
    let mut w = WalWriter::create(&dir, cfg).unwrap();
    for i in 0..7 {
        w.push(wire_report(200_000_001, i)).unwrap();
    }
    configure("wal.append.write", Trigger::OneShot(FaultAction::Err));
    assert!(
        w.push(wire_report(200_000_001, 7)).is_err(),
        "the eighth record completes a frame and hits the failpoint"
    );
    remove("wal.append.write");
    // The frame went back to the buffer: nothing silently dropped.
    assert_eq!(w.pending_records(), 8);
    w.flush().unwrap();
    drop(w);
    let load = WalReader::load(&dir).unwrap();
    assert_eq!(load.records(), 8, "the retried flush covers every record");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_sync_fault_surfaces_and_the_retry_makes_records_durable() {
    let _gate = GATE.lock().unwrap();
    let dir = fresh_dir("pol-stream-chaos-wal-sync");
    let cfg = WalConfig {
        batch_records: 4,
        group_commit_batches: 1,
        ..WalConfig::default()
    };
    let mut w = WalWriter::create(&dir, cfg).unwrap();
    for i in 0..3 {
        w.push(wire_report(200_000_001, i)).unwrap();
    }
    configure("wal.append.sync", Trigger::OneShot(FaultAction::Err));
    assert!(w.push(wire_report(200_000_001, 3)).is_err());
    remove("wal.append.sync");
    // The frame is appended; only the fsync failed. A retried flush
    // makes it durable without duplicating it.
    assert_eq!(w.pending_records(), 0);
    w.flush().unwrap();
    drop(w);
    let load = WalReader::load(&dir).unwrap();
    assert_eq!(load.records(), 4);
    assert_eq!(load.batches.len(), 1, "the frame must not be re-appended");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_seal_fault_poisons_rotation_but_recovery_heals_the_tail() {
    let _gate = GATE.lock().unwrap();
    let dir = fresh_dir("pol-stream-chaos-wal-seal");
    let cfg = WalConfig {
        batch_records: 4,
        group_commit_batches: 1,
        max_segment_bytes: 256, // rotate after a frame or two
    };
    let mut w = WalWriter::create(&dir, cfg).unwrap();
    configure("wal.seal", Trigger::OneShot(FaultAction::Err));
    let mut pushed = 0i64;
    let err = loop {
        match w.push(wire_report(200_000_001, pushed)) {
            Ok(()) => pushed += 1,
            Err(e) => break e,
        }
        assert!(
            pushed < 10_000,
            "rotation must eventually hit the failpoint"
        );
    };
    remove("wal.seal");
    assert!(format!("{err}").contains("journal segment"));
    // The writer is poisoned: later appends fail typed, never reorder.
    for i in 0..4 {
        let r = w.push(wire_report(200_000_001, pushed + i));
        if let Err(e) = r {
            assert!(format!("{e}").contains("poisoned"));
            break;
        }
    }
    drop(w);
    // The durable prefix still serves, and a resume continues appending
    // into the unsealed (never-rotated) tail.
    let load = WalReader::load(&dir).unwrap();
    let durable = load.records();
    assert!(durable > 0);
    let mut w = WalWriter::resume(&dir, cfg, &load).unwrap();
    for i in 0..8 {
        w.push(wire_report(200_000_001, 20_000 + i)).unwrap();
    }
    w.seal().unwrap();
    let load = WalReader::load(&dir).unwrap();
    assert_eq!(load.records(), durable + 8);
    assert_eq!(load.torn_bytes, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_save_fault_keeps_the_previous_checkpoint() {
    let _gate = GATE.lock().unwrap();
    let dir = fresh_dir("pol-stream-chaos-ckpt");
    let statics = vec![pol_ais::StaticReport {
        mmsi: Mmsi(200_000_001),
        imo: None,
        name: "TEST".to_string(),
        ship_type: pol_ais::types::ShipTypeCode(70),
        gross_tonnage: 30_000,
    }];
    let se = StreamEngine::new(&statics, &[], StreamConfig::default());
    let mut je = JournaledEngine::create(&dir, se, WalConfig::default(), 0).unwrap();
    for i in 0..50 {
        je.push(wire_report(200_000_001, i * 60)).unwrap();
    }
    je.checkpoint().unwrap();
    let first = checkpoint::load(&dir.join(CHECKPOINT_NAME))
        .unwrap()
        .unwrap();

    for i in 50..100 {
        je.push(wire_report(200_000_001, i * 60)).unwrap();
    }
    configure("codec.save.write", Trigger::OneShot(FaultAction::Err));
    assert!(je.checkpoint().is_err());
    remove("codec.save.write");
    // Atomic save discipline: the failed checkpoint never replaced the
    // durable one.
    let after = checkpoint::load(&dir.join(CHECKPOINT_NAME))
        .unwrap()
        .unwrap();
    assert_eq!(after, first, "previous checkpoint must survive the fault");

    // Disarmed, the retry supersedes it.
    je.checkpoint().unwrap();
    let healed = checkpoint::load(&dir.join(CHECKPOINT_NAME))
        .unwrap()
        .unwrap();
    assert!(healed.wal_seq > first.wal_seq);
    std::fs::remove_dir_all(&dir).ok();
}

/// The full sweep: crash the journaled pipeline at every WAL and
/// checkpoint/publish failpoint, recover in place, resume the wire,
/// and demand byte-identity with an uninterrupted run — inventory,
/// counters, and every chain file.
#[test]
fn crash_at_every_failpoint_reconverges_byte_identically() {
    let _gate = GATE.lock().unwrap();
    let scenario = ScenarioConfig::tiny();
    let ds = generate(&scenario);
    let pipeline = pol_core::PipelineConfig::default();
    let ports: Vec<PortSite> = WORLD_PORTS
        .iter()
        .enumerate()
        .map(|(i, p)| PortSite {
            id: i as u16,
            name: p.name.to_string(),
            pos: p.pos(),
            radius_km: pipeline.port_radius_km,
        })
        .collect();
    let wire: Vec<PositionReport> = interleave(ds.positions).collect();
    let spec = WindowSpec {
        start_ts: ds.config.start,
        window_secs: 2 * 86_400,
    };
    let wal_cfg = WalConfig {
        batch_records: 64,
        group_commit_batches: 4,
        max_segment_bytes: 64 << 10,
    };
    let engine = Engine::new(2);

    // Uninterrupted oracle with the identical cut schedule.
    let oracle_dir = fresh_dir("pol-stream-chaos-sweep-oracle");
    let (oracle_bytes, oracle_counters) = {
        let se = StreamEngine::new(&ds.statics, &ports, StreamConfig::default());
        let mut je = JournaledEngine::create(&oracle_dir, se, wal_cfg, 400).unwrap();
        let mut publisher = DeltaPublisher::create(&oracle_dir);
        for &r in &wire {
            je.push(r).unwrap();
            while je.watermark() >= spec.cut_at(je.window_cuts()) {
                let gen = je.window_cuts();
                let delta = je.take_window_delta(&engine).unwrap();
                publisher.publish_at(gen, &delta).unwrap();
            }
        }
        let out = je.close(&engine).unwrap();
        (pol_core::codec::to_bytes(&out.inventory), out.counters)
    };
    let oracle_chain: Vec<(String, Vec<u8>)> =
        manifest::load(&oracle_dir.join(pol_stream::MANIFEST_NAME))
            .unwrap()
            .entries
            .iter()
            .map(|e| {
                (
                    e.name.clone(),
                    std::fs::read(oracle_dir.join(&e.name)).unwrap(),
                )
            })
            .collect();

    let failpoints: &[(&str, u64)] = &[
        ("wal.append.write", 1),
        ("wal.append.write", 9),
        ("wal.append.sync", 1),
        ("wal.append.sync", 3),
        ("wal.seal", 1),
        ("codec.save.write", 1),
        ("codec.save.write", 4),
        ("codec.save.rename", 1),
        ("codec.save.rename", 3),
    ];
    for &(name, n) in failpoints {
        let dir = fresh_dir(&format!(
            "pol-stream-chaos-sweep-{}-{n}",
            name.replace('.', "-")
        ));
        configure(
            name,
            Trigger::NthHit {
                n,
                action: FaultAction::Err,
            },
        );
        // Drive until the injected fault kills the run (or the wire
        // ends first — also a valid sweep point).
        {
            let se = StreamEngine::new(&ds.statics, &ports, StreamConfig::default());
            let mut je = JournaledEngine::create(&dir, se, wal_cfg, 400).unwrap();
            let mut publisher = DeltaPublisher::create(&dir);
            'wire: for &r in &wire {
                if je.push(r).is_err() {
                    break 'wire;
                }
                while je.watermark() >= spec.cut_at(je.window_cuts()) {
                    let gen = je.window_cuts();
                    let delta = match je.take_window_delta(&engine) {
                        Ok(d) => d,
                        Err(_) => break 'wire,
                    };
                    if publisher.publish_at(gen, &delta).is_err() {
                        break 'wire;
                    }
                }
            }
        }
        remove(name);

        let (mut publisher, _) = DeltaPublisher::open(&dir).unwrap();
        let (mut je, _report) = recover(
            &dir,
            &engine,
            &ds.statics,
            &ports,
            StreamConfig::default(),
            wal_cfg,
            400,
            Some((&mut publisher, spec)),
        )
        .unwrap();
        let resume_at = usize::try_from(je.counters().ingested).unwrap();
        for &r in &wire[resume_at..] {
            je.push(r).unwrap();
            while je.watermark() >= spec.cut_at(je.window_cuts()) {
                let gen = je.window_cuts();
                let delta = je.take_window_delta(&engine).unwrap();
                publisher.publish_at(gen, &delta).unwrap();
            }
        }
        let out = je.close(&engine).unwrap();
        assert_eq!(
            pol_core::codec::to_bytes(&out.inventory),
            oracle_bytes,
            "{name} hit {n}: inventory must reconverge byte-identically"
        );
        assert_eq!(
            out.counters, oracle_counters,
            "{name} hit {n}: exactly-once counter accounting"
        );
        let chain: Vec<(String, Vec<u8>)> = manifest::load(&dir.join(pol_stream::MANIFEST_NAME))
            .unwrap()
            .entries
            .iter()
            .map(|e| (e.name.clone(), std::fs::read(dir.join(&e.name)).unwrap()))
            .collect();
        assert_eq!(
            chain, oracle_chain,
            "{name} hit {n}: the published chain must match file for file"
        );
        let verify = manifest::verify_chain(&dir.join(pol_stream::MANIFEST_NAME)).unwrap();
        for (gen, file) in verify.files.iter().enumerate() {
            assert_eq!(file.generation, gen as u64);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&oracle_dir).ok();
}
