//! Order-insensitivity of delta merging: any permutation of the same
//! `(generation, delta)` set merges to byte-identical POLINV3 output,
//! because [`pol_stream::merge_chain`] canonicalizes on generation —
//! the same order a manifest chain load applies.

use pol_ais::types::{MarketSegment, Mmsi};
use pol_core::codec::columnar;
use pol_core::features::{CellStats, GroupKey};
use pol_core::records::{CellPoint, TripPoint};
use pol_core::Inventory;
use pol_geo::LatLon;
use pol_hexgrid::{cell_at, Resolution};
use pol_sketch::hash::FxHashMap;
use pol_stream::merge_chain;
use proptest::prelude::*;

/// A deterministic synthetic window inventory; `salt` varies content.
/// Windows deliberately overlap in cells so merges exercise real
/// per-key sketch combination, not disjoint-key concatenation.
fn window_inventory(n: usize, salt: u64) -> Inventory {
    let res = Resolution::new(6).unwrap();
    let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
    for i in 0..n {
        let k = i as u64 * 7 + salt * 3;
        let pos = LatLon::new(10.0 + (k % 37) as f64, (k % 80) as f64).unwrap();
        let cell = cell_at(pos, res);
        let cp = CellPoint {
            point: TripPoint {
                mmsi: Mmsi(200_000_000 + (k % 13) as u32),
                timestamp: k as i64,
                pos,
                sog_knots: Some(4.0 + (k % 17) as f64),
                cog_deg: Some((k % 360) as f64),
                heading_deg: Some(((k * 5) % 360) as f64),
                segment: MarketSegment::from_id((k % 6) as u8).unwrap(),
                trip_id: k % 3,
                origin: (k % 4) as u16,
                dest: (k % 6) as u16,
                eto_secs: k as i64,
                ata_secs: 5_000 - k as i64,
            },
            cell,
            next_cell: None,
        };
        for key in [
            GroupKey::Cell(cell),
            GroupKey::CellType(cell, cp.point.segment),
        ] {
            entries
                .entry(key)
                .or_insert_with(|| CellStats::new(0.02, 8))
                .observe(&cp);
        }
    }
    Inventory::from_entries(res, entries, n as u64)
}

/// Decodes `index` into the lexicographic permutation of `0..len`.
fn nth_permutation(len: usize, mut index: u64) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..len).collect();
    let mut out = Vec::with_capacity(len);
    for remaining in (1..=len).rev() {
        let fact: u64 = (1..remaining as u64).product();
        let pick = ((index / fact) as usize) % remaining;
        index %= fact;
        out.push(pool.remove(pick));
    }
    out
}

fn chain_bytes(order: &[usize], sizes: &[usize]) -> Vec<u8> {
    let parts: Vec<(u64, Inventory)> = order
        .iter()
        .map(|&g| (g as u64, window_inventory(sizes[g], g as u64)))
        .collect();
    columnar::to_bytes(&merge_chain(parts).unwrap())
}

proptest! {
    /// The satellite gate: merging the same deltas in any permutation
    /// yields byte-identical POLINV3 output.
    #[test]
    fn delta_merge_is_order_insensitive(
        perm in 0u64..120,          // all orderings of 5 generations
        sizes in prop::collection::vec(10usize..60, 5)
    ) {
        let generations = sizes.len();
        let identity: Vec<usize> = (0..generations).collect();
        let reference = chain_bytes(&identity, &sizes);
        let shuffled = nth_permutation(generations, perm);
        prop_assert_eq!(
            chain_bytes(&shuffled, &sizes),
            reference,
            "merge order {:?} diverged from canonical",
            shuffled
        );
    }
}

#[test]
fn every_permutation_of_four_matches_exhaustively() {
    let sizes = [25usize, 40, 15, 33];
    let reference = chain_bytes(&[0, 1, 2, 3], &sizes);
    for index in 0..24 {
        let perm = nth_permutation(4, index);
        assert_eq!(
            chain_bytes(&perm, &sizes),
            reference,
            "permutation {perm:?} diverged"
        );
    }
}
