//! Per-vessel online sessions with watermark-driven trip finalization.
//!
//! One [`StreamEngine`] owns a session per vessel. Each incoming record
//! is range-checked and enriched exactly as the batch scan does, then
//! parked in its vessel's reorder buffer keyed by
//! `(timestamp, arrival sequence)`. A global **watermark** — the
//! maximum event time seen minus [`StreamConfig::reorder_bound_secs`] —
//! bounds how far out of order the wire may deliver: records at or
//! below the watermark are released to the session's state machines in
//! key order, which reproduces the batch path's stable timestamp sort.
//! Records arriving *behind* a vessel's already-released frontier are
//! dropped and counted ([`IngestCounters::late_dropped`]); the
//! byte-identity gate requires that count to be zero, i.e. the bound
//! must cover the wire's true disorder (the simulator's worst case is
//! the 120 s-backward corrupt duplicate; the default bound is 300 s).
//!
//! Released records drive the exact incremental primitives the batch
//! fold uses — [`VesselCleaner`] for duplicate/feasibility filtering,
//! [`TripTracker`] for port-to-port segmentation, and
//! [`pol_core::project::project_trip`] per finalized trip — so the
//! retained per-vessel cell points equal the batch intermediates, and
//! [`StreamEngine::close`] reproduces the batch inventory byte for byte
//! via [`fold_projected`].

use pol_ais::types::{MarketSegment, Mmsi};
use pol_ais::{PositionReport, StaticReport};
use pol_core::clean::{enrich_one, segment_lookup, VesselCleaner};
use pol_core::fused::fold_projected;
use pol_core::project::project_trip;
use pol_core::records::{CellPoint, EnrichedReport, PortSite, TripPoint};
use pol_core::trips::{Geofence, TripTracker};
use pol_core::{Inventory, PipelineConfig, PipelineError};
use pol_engine::Engine;
use pol_hexgrid::CellIndex;
use pol_sketch::hash::FxHashMap;
use std::collections::BTreeMap;

/// Tunables of the streaming ingestion layer.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// The batch pipeline's tunables — cleaning thresholds, geofence
    /// radius, grid resolution, sketch parameters. Shared verbatim so
    /// the streamed and batch inventories are comparable at all.
    pub pipeline: PipelineConfig,
    /// Out-of-order tolerance, seconds: the watermark trails the
    /// maximum event time by this much. Must exceed the wire's true
    /// disorder or records are late-dropped and identity breaks.
    pub reorder_bound_secs: i64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            pipeline: PipelineConfig::default(),
            // 2.5× the simulator's worst backward jump (the 120 s
            // corrupt duplicate), with slack for cross-vessel skew.
            reorder_bound_secs: 300,
        }
    }
}

/// What ingestion did so far — the streaming analogue of the batch
/// pipeline's stage accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestCounters {
    /// Records pushed into the engine.
    pub ingested: u64,
    /// Dropped before buffering: outside AIS protocol ranges.
    pub out_of_range: u64,
    /// Dropped before buffering: unknown vessel or non-commercial.
    pub non_commercial: u64,
    /// Records released from reorder buffers to the state machines.
    pub released: u64,
    /// Records arriving behind their vessel's released frontier —
    /// nonzero means the reorder bound is too small for the wire.
    pub late_dropped: u64,
    /// Trips finalized by port arrival.
    pub trips_finalized: u64,
    /// Trip points projected onto the grid (the batch pipeline's
    /// `projected` count).
    pub trip_points: u64,
}

/// One vessel's online state: the reorder buffer plus the shared
/// incremental clean → segment → project machinery.
struct VesselSession {
    /// Out-of-order parking lot, keyed `(timestamp, arrival_seq)` —
    /// draining in key order reproduces the batch stable sort.
    buffer: BTreeMap<(i64, u64), EnrichedReport>,
    /// Maximum released timestamp; records behind it are late.
    frontier: i64,
    cleaner: VesselCleaner,
    tracker: TripTracker,
    /// Points of the trip currently being emitted (one finalized trip
    /// at a time; cleared after projection).
    trip_buf: Vec<TripPoint>,
    cell_scratch: Vec<CellIndex>,
    /// Every projected cell point, in emission order — the vessel's
    /// contribution to [`fold_projected`] at close.
    retained: Vec<CellPoint>,
    /// Start of the current delta window within `retained`.
    window_mark: usize,
}

impl VesselSession {
    fn new(cfg: &StreamConfig) -> VesselSession {
        VesselSession {
            buffer: BTreeMap::new(),
            frontier: i64::MIN,
            cleaner: VesselCleaner::new(cfg.pipeline.max_feasible_speed_kn),
            tracker: TripTracker::new(cfg.pipeline.min_trip_points),
            trip_buf: Vec::new(),
            cell_scratch: Vec::new(),
            retained: Vec::new(),
            window_mark: 0,
        }
    }

    /// Feeds one released record through clean → segment → project.
    fn feed(
        &mut self,
        r: EnrichedReport,
        geofence: &Geofence,
        pipeline: &PipelineConfig,
        counters: &mut IngestCounters,
    ) {
        self.frontier = self.frontier.max(r.timestamp);
        counters.released += 1;
        let Some(survivor) = self.cleaner.push(r) else {
            return;
        };
        if self.tracker.push(geofence, &survivor, &mut self.trip_buf) {
            counters.trips_finalized += 1;
            counters.trip_points += self.trip_buf.len() as u64;
            project_trip(
                &self.trip_buf,
                pipeline.resolution,
                &mut self.cell_scratch,
                &mut self.retained,
            );
            self.trip_buf.clear();
        }
    }

    /// Releases every buffered record at or below `watermark`, in key
    /// order.
    fn release(
        &mut self,
        watermark: i64,
        geofence: &Geofence,
        pipeline: &PipelineConfig,
        counters: &mut IngestCounters,
    ) {
        while let Some(entry) = self.buffer.first_entry() {
            if entry.key().0 > watermark {
                break;
            }
            let (_, r) = entry.remove_entry();
            self.feed(r, geofence, pipeline, counters);
        }
    }
}

/// What [`StreamEngine::close`] produced.
pub struct StreamOutput {
    /// The final inventory — byte-identical to the batch build over the
    /// same records when [`IngestCounters::late_dropped`] is zero.
    pub inventory: Inventory,
    /// Final ingestion accounting.
    pub counters: IngestCounters,
}

/// The live-ingestion engine: per-vessel sessions, a global watermark,
/// and delta-window bookkeeping.
pub struct StreamEngine {
    cfg: StreamConfig,
    lookup: FxHashMap<Mmsi, (MarketSegment, bool)>,
    geofence: Geofence,
    sessions: FxHashMap<u32, VesselSession>,
    arrival_seq: u64,
    /// Maximum event timestamp seen; `i64::MIN` before the first record.
    max_event_ts: i64,
    counters: IngestCounters,
}

impl StreamEngine {
    /// An engine joined against `statics` (the enrichment side-input)
    /// and geofenced by `ports`, with all pipeline semantics from `cfg`.
    pub fn new(statics: &[StaticReport], ports: &[PortSite], cfg: StreamConfig) -> StreamEngine {
        let geofence = Geofence::build(ports, cfg.pipeline.resolution);
        StreamEngine {
            lookup: segment_lookup(statics),
            geofence,
            cfg,
            sessions: FxHashMap::default(),
            arrival_seq: 0,
            max_event_ts: i64::MIN,
            counters: IngestCounters::default(),
        }
    }

    /// The current watermark: everything at or below it is final.
    pub fn watermark(&self) -> i64 {
        if self.max_event_ts == i64::MIN {
            i64::MIN
        } else {
            self.max_event_ts
                .saturating_sub(self.cfg.reorder_bound_secs)
        }
    }

    /// Ingestion accounting so far.
    pub fn counters(&self) -> IngestCounters {
        self.counters
    }

    /// Vessels with live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Records currently parked in reorder buffers.
    pub fn buffered(&self) -> usize {
        self.sessions.values().map(|s| s.buffer.len()).sum()
    }

    /// Ingests one wire record: range-check, enrich, advance the
    /// watermark, release what it finalizes for this vessel, and park
    /// or late-drop the record itself.
    pub fn push(&mut self, r: PositionReport) {
        self.counters.ingested += 1;
        if !r.in_protocol_ranges() {
            self.counters.out_of_range += 1;
            return;
        }
        // Every in-range record advances event time, enrichable or not:
        // the wire's clock is the fleet's, not the commercial subset's.
        self.max_event_ts = self.max_event_ts.max(r.timestamp);
        let Some(e) = enrich_one(&self.lookup, self.cfg.pipeline.commercial_only, r) else {
            self.counters.non_commercial += 1;
            return;
        };
        let watermark = self.watermark();
        let session = self
            .sessions
            .entry(e.mmsi.0)
            .or_insert_with(|| VesselSession::new(&self.cfg));
        // Drain first so the new record is ordered against everything
        // the advanced watermark just finalized.
        session.release(
            watermark,
            &self.geofence,
            &self.cfg.pipeline,
            &mut self.counters,
        );
        if e.timestamp < session.frontier {
            self.counters.late_dropped += 1;
            return;
        }
        if e.timestamp <= watermark {
            // Already final and not behind the frontier: everything
            // still buffered is above the watermark, so feeding now is
            // key order.
            session.feed(e, &self.geofence, &self.cfg.pipeline, &mut self.counters);
            return;
        }
        self.arrival_seq += 1;
        session.buffer.insert((e.timestamp, self.arrival_seq), e);
    }

    /// Releases every vessel's buffered records up to the current
    /// watermark — the barrier before a delta snapshot, so the window
    /// reflects one consistent watermark point.
    pub fn drain_to_watermark(&mut self) {
        let watermark = self.watermark();
        for session in self.sessions.values_mut() {
            session.release(
                watermark,
                &self.geofence,
                &self.cfg.pipeline,
                &mut self.counters,
            );
        }
    }

    /// Cuts the current delta window: drains to the watermark, folds
    /// every cell point projected since the previous cut into a
    /// deterministic window [`Inventory`], and starts the next window.
    /// The result is a *mergeable delta* — its record total is the
    /// window's trip-point count — not the identity artifact (see the
    /// crate docs).
    pub fn take_window_delta(&mut self, engine: &Engine) -> Result<Inventory, PipelineError> {
        self.drain_to_watermark();
        let mut per_vessel: Vec<(u32, Vec<CellPoint>)> = Vec::new();
        let mut window_points = 0u64;
        for (mmsi, session) in self.sessions.iter_mut() {
            let fresh = &session.retained[session.window_mark..];
            if fresh.is_empty() {
                continue;
            }
            window_points += fresh.len() as u64;
            per_vessel.push((*mmsi, fresh.to_vec()));
            session.window_mark = session.retained.len();
        }
        fold_projected(engine, &self.cfg.pipeline, per_vessel, window_points)
    }

    /// Captures the engine's complete mutable state for a POLCKP1
    /// checkpoint. `wal_seq` and `window_cuts` are the journal layer's
    /// bookkeeping (batches applied, delta windows cut) — the engine
    /// itself does not track them but recovery needs them bound to the
    /// exact engine state they describe.
    ///
    /// Everything the remaining records' processing depends on is
    /// captured: the per-vessel reorder buffers (with arrival sequence
    /// numbers, preserving release tie-breaks), frontiers, cleaner and
    /// tracker state, retained cell points and window marks, plus the
    /// engine-wide arrival counter, event clock, and counters. The
    /// transient `trip_buf`/`cell_scratch` are always empty between
    /// pushes and are deliberately absent.
    pub fn snapshot_state(&self, wal_seq: u64, window_cuts: u64) -> crate::checkpoint::EngineState {
        let c = &self.counters;
        let sessions = self
            .sessions
            .iter()
            .map(|(&mmsi, s)| {
                let (last_port, trip_seq, open) = s.tracker.state();
                crate::checkpoint::SessionState {
                    mmsi,
                    frontier: s.frontier,
                    window_mark: s.window_mark as u64,
                    cleaner_last: s.cleaner.last(),
                    last_port,
                    trip_seq,
                    open_passage: open.to_vec(),
                    retained: s.retained.clone(),
                    buffer: s
                        .buffer
                        .iter()
                        .map(|(&(ts, seq), &r)| (ts, seq, r))
                        .collect(),
                }
            })
            .collect();
        crate::checkpoint::EngineState {
            resolution: self.cfg.pipeline.resolution.level(),
            reorder_bound_secs: self.cfg.reorder_bound_secs,
            wal_seq,
            window_cuts,
            arrival_seq: self.arrival_seq,
            max_event_ts: self.max_event_ts,
            counters: [
                c.ingested,
                c.out_of_range,
                c.non_commercial,
                c.released,
                c.late_dropped,
                c.trips_finalized,
                c.trip_points,
            ],
            sessions,
        }
    }

    /// Rebuilds an engine from a checkpointed [`EngineState`]
    /// (the inverse of [`StreamEngine::snapshot_state`]). Refuses a
    /// checkpoint whose resolution or reorder-bound echo disagrees with
    /// `cfg` — replaying a journal against different semantics would
    /// silently diverge from the pre-crash run.
    ///
    /// [`EngineState`]: crate::checkpoint::EngineState
    pub fn from_state(
        statics: &[StaticReport],
        ports: &[PortSite],
        cfg: StreamConfig,
        state: &crate::checkpoint::EngineState,
    ) -> Result<StreamEngine, &'static str> {
        if state.resolution != cfg.pipeline.resolution.level() {
            return Err("checkpoint grid resolution does not match the configured pipeline");
        }
        if state.reorder_bound_secs != cfg.reorder_bound_secs {
            return Err("checkpoint reorder bound does not match the configured pipeline");
        }
        let mut engine = StreamEngine::new(statics, ports, cfg);
        engine.arrival_seq = state.arrival_seq;
        engine.max_event_ts = state.max_event_ts;
        let [ingested, out_of_range, non_commercial, released, late_dropped, trips_finalized, trip_points] =
            state.counters;
        engine.counters = IngestCounters {
            ingested,
            out_of_range,
            non_commercial,
            released,
            late_dropped,
            trips_finalized,
            trip_points,
        };
        for s in &state.sessions {
            let window_mark = usize::try_from(s.window_mark)
                .map_err(|_| "checkpoint window mark out of range")?;
            if window_mark > s.retained.len() {
                return Err("checkpoint window mark past retained points");
            }
            let session = VesselSession {
                buffer: s
                    .buffer
                    .iter()
                    .map(|&(ts, seq, r)| ((ts, seq), r))
                    .collect(),
                frontier: s.frontier,
                cleaner: VesselCleaner::resume(
                    engine.cfg.pipeline.max_feasible_speed_kn,
                    s.cleaner_last,
                ),
                tracker: TripTracker::resume(
                    engine.cfg.pipeline.min_trip_points,
                    s.last_port,
                    s.trip_seq,
                    s.open_passage.clone(),
                ),
                trip_buf: Vec::new(),
                cell_scratch: Vec::new(),
                retained: s.retained.clone(),
                window_mark,
            };
            if engine.sessions.insert(s.mmsi, session).is_some() {
                return Err("checkpoint holds duplicate vessel sessions");
            }
        }
        Ok(engine)
    }

    /// Closes the stream: treats the watermark as infinite, drains and
    /// finalizes everything, and folds all retained cell points into
    /// the final inventory via [`fold_projected`] — byte-identical to
    /// the batch build over the same records.
    pub fn close(mut self, engine: &Engine) -> Result<StreamOutput, PipelineError> {
        for session in self.sessions.values_mut() {
            session.release(
                i64::MAX,
                &self.geofence,
                &self.cfg.pipeline,
                &mut self.counters,
            );
        }
        let per_vessel: Vec<(u32, Vec<CellPoint>)> = self
            .sessions
            .into_iter()
            .map(|(mmsi, s)| (mmsi, s.retained))
            .collect();
        let inventory = fold_projected(
            engine,
            &self.cfg.pipeline,
            per_vessel,
            self.counters.trip_points,
        )?;
        Ok(StreamOutput {
            inventory,
            counters: self.counters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pol_ais::types::NavStatus;
    use pol_geo::LatLon;

    fn statics() -> Vec<StaticReport> {
        vec![StaticReport {
            mmsi: Mmsi(200_000_001),
            imo: None,
            name: "TEST".to_string(),
            ship_type: pol_ais::types::ShipTypeCode(70), // cargo
            gross_tonnage: 30_000,
        }]
    }

    fn report(ts: i64, lat: f64, lon: f64) -> PositionReport {
        PositionReport {
            mmsi: Mmsi(200_000_001),
            timestamp: ts,
            pos: LatLon::new(lat, lon).unwrap(),
            sog_knots: Some(12.0),
            cog_deg: Some(90.0),
            heading_deg: None,
            nav_status: NavStatus::UnderWayUsingEngine,
        }
    }

    fn engine_with(bound: i64) -> StreamEngine {
        StreamEngine::new(
            &statics(),
            &[],
            StreamConfig {
                reorder_bound_secs: bound,
                ..StreamConfig::default()
            },
        )
    }

    #[test]
    fn watermark_trails_max_event_time() {
        let mut se = engine_with(300);
        assert_eq!(se.watermark(), i64::MIN);
        se.push(report(1_000, 10.0, 10.0));
        assert_eq!(se.watermark(), 700);
        se.push(report(5_000, 10.0, 10.1));
        assert_eq!(se.watermark(), 4_700);
        // Older records never move the watermark backwards.
        se.push(report(2_000, 10.0, 10.2));
        assert_eq!(se.watermark(), 4_700);
    }

    #[test]
    fn records_buffer_until_watermark_passes() {
        let mut se = engine_with(300);
        se.push(report(1_000, 10.0, 10.0));
        assert_eq!(se.buffered(), 1);
        assert_eq!(se.counters().released, 0);
        // Advancing event time past ts + bound releases the first record.
        se.push(report(1_400, 10.0, 10.1));
        assert_eq!(se.counters().released, 1);
        assert_eq!(se.buffered(), 1);
        se.drain_to_watermark();
        assert_eq!(se.counters().released, 1, "second record is not final yet");
    }

    #[test]
    fn out_of_order_within_bound_is_reordered_not_dropped() {
        let mut se = engine_with(300);
        se.push(report(1_000, 10.0, 10.0));
        se.push(report(1_200, 10.0, 10.1));
        // 120 s behind the newest — the simulator's corrupt-duplicate
        // shape. Must park, not drop.
        se.push(report(1_080, 10.0, 10.05));
        assert_eq!(se.counters().late_dropped, 0);
        assert_eq!(se.buffered(), 3);
    }

    #[test]
    fn late_beyond_bound_is_counted() {
        let mut se = engine_with(100);
        se.push(report(1_000, 10.0, 10.0));
        se.push(report(2_000, 10.0, 10.1)); // watermark 1900 releases ts 1000
        assert_eq!(se.counters().released, 1);
        se.push(report(500, 10.0, 10.0)); // behind the released frontier
        assert_eq!(se.counters().late_dropped, 1);
    }

    #[test]
    fn close_flushes_everything() {
        let mut se = engine_with(3_600);
        for i in 0..10 {
            se.push(report(i * 60, 10.0, 10.0 + i as f64 * 0.01));
        }
        assert_eq!(se.buffered(), 10);
        let out = se.close(&Engine::new(1)).unwrap();
        assert_eq!(out.counters.released, 10);
        assert_eq!(out.counters.late_dropped, 0);
        // No ports in the geofence: no trips, empty inventory.
        assert_eq!(out.counters.trips_finalized, 0);
        assert!(out.inventory.is_empty());
    }
}
