//! # pol-stream — live ingestion for the mobility inventory
//!
//! The batch pipeline ([`pol_core::run_fused`]) sees a finished archive:
//! every vessel's reports, partitioned and complete. This crate turns
//! the same methodology into a **live** one — records arrive one at a
//! time, interleaved across the fleet and mildly out of order, and the
//! inventory stays continuously current:
//!
//! * [`ingest`] — per-vessel online state machines built from the exact
//!   incremental primitives the batch path folds over
//!   ([`pol_core::clean::VesselCleaner`],
//!   [`pol_core::trips::TripTracker`],
//!   [`pol_core::project::project_trip`]), fronted by a bounded
//!   out-of-order buffer with watermark-driven release;
//! * [`delta`] — periodic, mergeable inventory deltas published as
//!   POLINV3 snapshots chained by a POLMAN1 manifest
//!   ([`pol_core::codec::manifest`]), which `pol-serve` hot-reloads
//!   without dropping in-flight queries;
//! * [`journal`] — a POLWAL1 write-ahead journal
//!   ([`pol_core::codec::wal`]) that makes every pushed record durable
//!   *before* the engine applies it, wrapped with the engine as
//!   [`journal::JournaledEngine`];
//! * [`checkpoint`] — POLCKP1 snapshots of the whole engine state, so
//!   recovery replays only the journal suffix past the checkpoint;
//! * [`recover`] — the crash-recovery path: checkpoint restore +
//!   journal replay + exactly-once delta-chain reconciliation,
//!   reconverging byte-identically to a run that never crashed (see
//!   DESIGN.md §10 for the failure model and crash matrix).
//!
//! ## The identity contract
//!
//! The headline invariant — gated by the `polstream` bench driver — is
//! that after all watermarks close, the streamed inventory is
//! **byte-identical** to the batch build over the same records. The
//! chain of reasoning:
//!
//! 1. the reorder buffer releases each vessel's records in
//!    `(timestamp, arrival)` order, which is exactly the batch path's
//!    stable sort by timestamp;
//! 2. the released sequence drives the same `VesselCleaner` →
//!    `TripTracker` → `project_trip` state machines the batch fold
//!    uses, so the retained per-vessel cell points match the batch
//!    intermediates record for record;
//! 3. [`pol_core::fused::fold_projected`] replays the fused executor's
//!    scatter/morsel/radix-merge ordering over those points, which is
//!    pinned byte-identical to [`pol_core::run_fused`] in pol-core's
//!    own tests.
//!
//! Delta snapshots are deliberately *not* the identity artifact: they
//! summarize each watermark window independently (sketch merges across
//! windows are approximation-preserving but not byte-neutral) and exist
//! for freshness — a warm `pol-serve` applies them seconds after the
//! window closes. The identity artifact is [`ingest::StreamEngine::close`].

#![deny(missing_docs)]

pub mod checkpoint;
pub mod delta;
pub mod ingest;
pub mod journal;
pub mod recover;

pub use checkpoint::{EngineState, SessionState, CHECKPOINT_NAME};
pub use delta::{merge_chain, DeltaPublisher, PublishOutcome, SweepReport, MANIFEST_NAME};
pub use ingest::{IngestCounters, StreamConfig, StreamEngine, StreamOutput};
pub use journal::{JournalError, JournaledEngine, WalConfig, WalLoad, WalReader, WalWriter};
pub use recover::{recover, RecoveryReport, WindowSpec};
