//! POLCKP1 — atomic snapshots of the full streaming-engine state.
//!
//! A checkpoint bounds recovery: instead of replaying the journal from
//! record zero, recovery restores the newest checkpoint and replays
//! only the WAL suffix past [`EngineState::wal_seq`]. For that to
//! reconverge **byte-identically**, the checkpoint must capture every
//! bit of engine state the remaining records' processing depends on:
//!
//! * per vessel — the reorder buffer (with arrival sequence numbers,
//!   so release tie-breaking is preserved), the released frontier, the
//!   cleaner's last surviving report, the trip tracker's port/sequence/
//!   open-passage state, every retained cell point, and the delta
//!   window mark into them;
//! * engine-wide — the arrival counter, the maximum event timestamp,
//!   all ingestion counters, and the delta-window cut count.
//!
//! The format follows the house discipline: magic, one length-framed
//! CRC-64-guarded body, POLSEAL footer, written via
//! [`pol_core::codec::save_bytes`]'s temp-sibling + fsync + atomic
//! rename (so a crash mid-checkpoint leaves the previous checkpoint
//! intact — and the `codec.save.*` chaos failpoints cover this path
//! for free). Loads never trust a byte before the seal and body CRC
//! pass, and never panic on hostile input (`tests/recovery.rs`).

use pol_ais::types::{MarketSegment, Mmsi, NavStatus};
use pol_core::codec::{save_bytes, CodecError, FOOTER_MAGIC};
use pol_core::records::{CellPoint, EnrichedReport, TripPoint};
use pol_geo::LatLon;
use pol_hexgrid::CellIndex;
use pol_sketch::crc64::crc64;
use pol_sketch::wire::{get_f64, get_varint, put_f64, put_varint, WireError};
use std::io;
use std::path::Path;

/// Checkpoint file magic.
pub const MAGIC_CKP: &[u8; 8] = b"POLCKP1\0";

/// File name of the checkpoint inside a journal directory.
pub const CHECKPOINT_NAME: &str = "checkpoint.polckp";

/// One vessel session's checkpointed state.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionState {
    /// Vessel identity (the session key).
    pub mmsi: u32,
    /// Maximum released timestamp.
    pub frontier: i64,
    /// Start of the current delta window within `retained`.
    pub window_mark: u64,
    /// The cleaner's last surviving report.
    pub cleaner_last: Option<EnrichedReport>,
    /// The trip tracker's last port sighting.
    pub last_port: Option<u16>,
    /// The trip tracker's emitted-trip sequence counter.
    pub trip_seq: u32,
    /// The trip tracker's open (unemitted) passage.
    pub open_passage: Vec<EnrichedReport>,
    /// Every projected cell point retained for the close-time fold.
    pub retained: Vec<CellPoint>,
    /// The reorder buffer: `(timestamp, arrival_seq, report)` in key
    /// order.
    pub buffer: Vec<(i64, u64, EnrichedReport)>,
}

/// The complete checkpointed engine state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineState {
    /// Grid resolution echo — restore refuses a config mismatch.
    pub resolution: u8,
    /// Reorder bound echo — restore refuses a config mismatch.
    pub reorder_bound_secs: i64,
    /// WAL batches fully applied to this state: recovery replays
    /// batches with sequence numbers `>= wal_seq`.
    pub wal_seq: u64,
    /// Delta windows cut so far (the next cut publishes generation
    /// `window_cuts`).
    pub window_cuts: u64,
    /// The engine's arrival sequence counter.
    pub arrival_seq: u64,
    /// Maximum event timestamp seen (`i64::MIN` before any record).
    pub max_event_ts: i64,
    /// Ingestion counters, in `IngestCounters` field order.
    pub counters: [u64; 7],
    /// Per-vessel session states, sorted by MMSI (canonical encoding).
    pub sessions: Vec<SessionState>,
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    put_varint(out, zigzag(v));
}

fn get_i64(input: &mut &[u8]) -> Result<i64, WireError> {
    Ok(unzigzag(get_varint(input)?))
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(x) => {
            out.push(1);
            put_f64(out, x);
        }
        None => out.push(0),
    }
}

fn get_u8(input: &mut &[u8]) -> Result<u8, WireError> {
    let (&b, rest) = input.split_first().ok_or(WireError("byte truncated"))?;
    *input = rest;
    Ok(b)
}

fn get_opt_f64(input: &mut &[u8]) -> Result<Option<f64>, WireError> {
    match get_u8(input)? {
        0 => Ok(None),
        1 => get_f64(input).map(Some),
        _ => Err(WireError("bad option tag")),
    }
}

fn put_enriched(out: &mut Vec<u8>, r: &EnrichedReport) {
    put_varint(out, r.mmsi.0 as u64);
    put_i64(out, r.timestamp);
    put_f64(out, r.pos.lat());
    put_f64(out, r.pos.lon());
    put_opt_f64(out, r.sog_knots);
    put_opt_f64(out, r.cog_deg);
    put_opt_f64(out, r.heading_deg);
    out.push(r.nav_status.raw());
    out.push(r.segment.id());
}

fn get_enriched(input: &mut &[u8]) -> Result<EnrichedReport, WireError> {
    let mmsi = u32::try_from(get_varint(input)?)
        .ok()
        .and_then(Mmsi::new)
        .ok_or(WireError("bad mmsi"))?;
    let timestamp = get_i64(input)?;
    let lat = get_f64(input)?;
    let lon = get_f64(input)?;
    let pos = LatLon::new(lat, lon).ok_or(WireError("bad position"))?;
    let sog_knots = get_opt_f64(input)?;
    let cog_deg = get_opt_f64(input)?;
    let heading_deg = get_opt_f64(input)?;
    let nav_status = NavStatus::from_raw(get_u8(input)?);
    let segment = MarketSegment::from_id(get_u8(input)?).ok_or(WireError("bad segment id"))?;
    Ok(EnrichedReport {
        mmsi,
        timestamp,
        pos,
        sog_knots,
        cog_deg,
        heading_deg,
        nav_status,
        segment,
    })
}

fn put_cell_point(out: &mut Vec<u8>, cp: &CellPoint) {
    let p = &cp.point;
    put_varint(out, p.mmsi.0 as u64);
    put_i64(out, p.timestamp);
    put_f64(out, p.pos.lat());
    put_f64(out, p.pos.lon());
    put_opt_f64(out, p.sog_knots);
    put_opt_f64(out, p.cog_deg);
    put_opt_f64(out, p.heading_deg);
    out.push(p.segment.id());
    put_varint(out, p.trip_id);
    put_varint(out, p.origin as u64);
    put_varint(out, p.dest as u64);
    put_i64(out, p.eto_secs);
    put_i64(out, p.ata_secs);
    put_varint(out, cp.cell.raw());
    match cp.next_cell {
        Some(c) => {
            out.push(1);
            put_varint(out, c.raw());
        }
        None => out.push(0),
    }
}

fn get_cell(input: &mut &[u8]) -> Result<CellIndex, WireError> {
    CellIndex::from_raw(get_varint(input)?).map_err(|_| WireError("bad cell index"))
}

fn get_cell_point(input: &mut &[u8]) -> Result<CellPoint, WireError> {
    let mmsi = u32::try_from(get_varint(input)?)
        .ok()
        .and_then(Mmsi::new)
        .ok_or(WireError("bad mmsi"))?;
    let timestamp = get_i64(input)?;
    let lat = get_f64(input)?;
    let lon = get_f64(input)?;
    let pos = LatLon::new(lat, lon).ok_or(WireError("bad position"))?;
    let sog_knots = get_opt_f64(input)?;
    let cog_deg = get_opt_f64(input)?;
    let heading_deg = get_opt_f64(input)?;
    let segment = MarketSegment::from_id(get_u8(input)?).ok_or(WireError("bad segment id"))?;
    let trip_id = get_varint(input)?;
    let origin = u16::try_from(get_varint(input)?).map_err(|_| WireError("bad origin"))?;
    let dest = u16::try_from(get_varint(input)?).map_err(|_| WireError("bad dest"))?;
    let eto_secs = get_i64(input)?;
    let ata_secs = get_i64(input)?;
    let cell = get_cell(input)?;
    let next_cell = match get_u8(input)? {
        0 => None,
        1 => Some(get_cell(input)?),
        _ => return Err(WireError("bad option tag")),
    };
    Ok(CellPoint {
        point: TripPoint {
            mmsi,
            timestamp,
            pos,
            sog_knots,
            cog_deg,
            heading_deg,
            segment,
            trip_id,
            origin,
            dest,
            eto_secs,
            ata_secs,
        },
        cell,
        next_cell,
    })
}

fn put_session(out: &mut Vec<u8>, s: &SessionState) {
    put_varint(out, s.mmsi as u64);
    put_i64(out, s.frontier);
    put_varint(out, s.window_mark);
    match &s.cleaner_last {
        Some(r) => {
            out.push(1);
            put_enriched(out, r);
        }
        None => out.push(0),
    }
    match s.last_port {
        Some(p) => {
            out.push(1);
            put_varint(out, p as u64);
        }
        None => out.push(0),
    }
    put_varint(out, s.trip_seq as u64);
    put_varint(out, s.open_passage.len() as u64);
    for r in &s.open_passage {
        put_enriched(out, r);
    }
    put_varint(out, s.retained.len() as u64);
    for cp in &s.retained {
        put_cell_point(out, cp);
    }
    put_varint(out, s.buffer.len() as u64);
    for (ts, seq, r) in &s.buffer {
        put_i64(out, *ts);
        put_varint(out, *seq);
        put_enriched(out, r);
    }
}

fn get_session(input: &mut &[u8]) -> Result<SessionState, WireError> {
    let mmsi = u32::try_from(get_varint(input)?).map_err(|_| WireError("bad mmsi"))?;
    let frontier = get_i64(input)?;
    let window_mark = get_varint(input)?;
    let cleaner_last = match get_u8(input)? {
        0 => None,
        1 => Some(get_enriched(input)?),
        _ => return Err(WireError("bad option tag")),
    };
    let last_port = match get_u8(input)? {
        0 => None,
        1 => Some(u16::try_from(get_varint(input)?).map_err(|_| WireError("bad port"))?),
        _ => return Err(WireError("bad option tag")),
    };
    let trip_seq = u32::try_from(get_varint(input)?).map_err(|_| WireError("bad trip seq"))?;
    // Counts are decoded without count-based reserves: a hostile count
    // simply runs the decoder into a typed truncation error instead of
    // reserving unbounded memory first.
    let n = get_varint(input)?;
    let mut open_passage = Vec::new();
    for _ in 0..n {
        open_passage.push(get_enriched(input)?);
    }
    let n = get_varint(input)?;
    let mut retained = Vec::new();
    for _ in 0..n {
        retained.push(get_cell_point(input)?);
    }
    let n = get_varint(input)?;
    let mut buffer = Vec::new();
    for _ in 0..n {
        let ts = get_i64(input)?;
        let seq = get_varint(input)?;
        buffer.push((ts, seq, get_enriched(input)?));
    }
    if window_mark > retained.len() as u64 {
        return Err(WireError("window mark past retained points"));
    }
    Ok(SessionState {
        mmsi,
        frontier,
        window_mark,
        cleaner_last,
        last_port,
        trip_seq,
        open_passage,
        retained,
        buffer,
    })
}

/// Serializes a checkpoint to its complete file image (magic through
/// sealed footer). Sessions are sorted by MMSI first, making the
/// encoding canonical: equal states produce identical bytes.
pub fn to_bytes(state: &EngineState) -> Vec<u8> {
    let mut body = Vec::new();
    body.push(state.resolution);
    put_i64(&mut body, state.reorder_bound_secs);
    put_varint(&mut body, state.wal_seq);
    put_varint(&mut body, state.window_cuts);
    put_varint(&mut body, state.arrival_seq);
    put_i64(&mut body, state.max_event_ts);
    for c in state.counters {
        put_varint(&mut body, c);
    }
    let mut sessions: Vec<&SessionState> = state.sessions.iter().collect();
    sessions.sort_by_key(|s| s.mmsi);
    put_varint(&mut body, sessions.len() as u64);
    for s in sessions {
        put_session(&mut body, s);
    }

    let mut out = Vec::with_capacity(MAGIC_CKP.len() + body.len() + 32);
    out.extend_from_slice(MAGIC_CKP);
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc64(&body).to_le_bytes());
    let file_len = out.len() as u64 + 16;
    out.extend_from_slice(&file_len.to_le_bytes());
    out.extend_from_slice(FOOTER_MAGIC);
    out
}

/// Deserializes a checkpoint from a complete file image, proving the
/// footer seal and body CRC before trusting a byte.
pub fn from_bytes(bytes: &[u8]) -> Result<EngineState, CodecError> {
    if bytes.len() < MAGIC_CKP.len() || &bytes[..MAGIC_CKP.len()] != MAGIC_CKP {
        return Err(CodecError::BadHeader);
    }
    if bytes.len() < MAGIC_CKP.len() + 32 {
        return Err(CodecError::Unsealed);
    }
    let seal_at = bytes.len() - FOOTER_MAGIC.len();
    if &bytes[seal_at..] != FOOTER_MAGIC {
        return Err(CodecError::Unsealed);
    }
    let len_at = seal_at - 8;
    let recorded = u64::from_le_bytes(
        bytes[len_at..seal_at]
            .try_into()
            .map_err(|_| CodecError::Unsealed)?,
    );
    if recorded != bytes.len() as u64 {
        return Err(CodecError::Unsealed);
    }
    let body_len = u64::from_le_bytes(
        bytes[MAGIC_CKP.len()..MAGIC_CKP.len() + 8]
            .try_into()
            .map_err(|_| CodecError::Unsealed)?,
    );
    let body_at = MAGIC_CKP.len() + 8;
    let body_end = body_at
        .checked_add(usize::try_from(body_len).map_err(|_| CodecError::Unsealed)?)
        .ok_or(CodecError::Unsealed)?;
    if body_end + 8 != len_at {
        return Err(CodecError::Unsealed);
    }
    let body = &bytes[body_at..body_end];
    let body_crc = u64::from_le_bytes(
        bytes[body_end..body_end + 8]
            .try_into()
            .map_err(|_| CodecError::Unsealed)?,
    );
    if crc64(body) != body_crc {
        return Err(CodecError::Checksum { section: "body" });
    }

    let mut input = body;
    let resolution = get_u8(&mut input).map_err(CodecError::Wire)?;
    let reorder_bound_secs = get_i64(&mut input).map_err(CodecError::Wire)?;
    let wal_seq = get_varint(&mut input).map_err(CodecError::Wire)?;
    let window_cuts = get_varint(&mut input).map_err(CodecError::Wire)?;
    let arrival_seq = get_varint(&mut input).map_err(CodecError::Wire)?;
    let max_event_ts = get_i64(&mut input).map_err(CodecError::Wire)?;
    let mut counters = [0u64; 7];
    for c in &mut counters {
        *c = get_varint(&mut input).map_err(CodecError::Wire)?;
    }
    let n = get_varint(&mut input).map_err(CodecError::Wire)?;
    let mut sessions = Vec::new();
    for _ in 0..n {
        sessions.push(get_session(&mut input).map_err(CodecError::Wire)?);
    }
    if !input.is_empty() {
        return Err(CodecError::Wire(WireError("trailing checkpoint bytes")));
    }
    Ok(EngineState {
        resolution,
        reorder_bound_secs,
        wal_seq,
        window_cuts,
        arrival_seq,
        max_event_ts,
        counters,
        sessions,
    })
}

/// Atomically writes a checkpoint file (temp sibling + fsync + rename,
/// with the `codec.save.*` failpoints active on the way).
pub fn save(state: &EngineState, path: &Path) -> io::Result<()> {
    save_bytes(&to_bytes(state), path)
}

/// Loads a checkpoint file. `Ok(None)` when no checkpoint exists yet —
/// recovery then replays the journal from record zero.
pub fn load(path: &Path) -> Result<Option<EngineState>, CodecError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(CodecError::Io(e)),
    };
    from_bytes(&bytes).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enriched(ts: i64) -> EnrichedReport {
        EnrichedReport {
            mmsi: Mmsi(200_000_007),
            timestamp: ts,
            pos: LatLon::new(40.0 + (ts % 9) as f64 * 0.1, 3.0).unwrap(),
            sog_knots: (ts % 2 == 0).then_some(11.0),
            cog_deg: Some(180.0),
            heading_deg: None,
            nav_status: NavStatus::from_raw((ts % 5) as u8),
            segment: MarketSegment::from_id((ts % 6) as u8).unwrap(),
        }
    }

    fn cell_point(ts: i64) -> CellPoint {
        let pos = LatLon::new(42.0, 4.0 + (ts % 7) as f64 * 0.2).unwrap();
        let res = pol_hexgrid::Resolution::new(6).unwrap();
        CellPoint {
            point: TripPoint {
                mmsi: Mmsi(200_000_007),
                timestamp: ts,
                pos,
                sog_knots: Some(9.5),
                cog_deg: None,
                heading_deg: Some(15.0),
                segment: MarketSegment::from_id(1).unwrap(),
                trip_id: 77,
                origin: 3,
                dest: 5,
                eto_secs: ts,
                ata_secs: 10_000 - ts,
            },
            cell: pol_hexgrid::cell_at(pos, res),
            next_cell: (ts % 2 == 0)
                .then(|| pol_hexgrid::cell_at(LatLon::new(42.1, 4.1).unwrap(), res)),
        }
    }

    fn sample_state() -> EngineState {
        EngineState {
            resolution: 6,
            reorder_bound_secs: 300,
            wal_seq: 17,
            window_cuts: 3,
            arrival_seq: 912,
            max_event_ts: 5_000_000,
            counters: [900, 3, 5, 800, 0, 12, 450],
            sessions: vec![
                SessionState {
                    mmsi: 200_000_007,
                    frontier: 4_999_000,
                    window_mark: 2,
                    cleaner_last: Some(enriched(4_999_000)),
                    last_port: Some(4),
                    trip_seq: 9,
                    open_passage: (0..5).map(|i| enriched(4_999_100 + i * 10)).collect(),
                    retained: (0..7).map(|i| cell_point(1_000 + i)).collect(),
                    buffer: (0..4)
                        .map(|i| (4_999_500 + i, 900 + i as u64, enriched(4_999_500 + i)))
                        .collect(),
                },
                SessionState {
                    mmsi: 200_000_001,
                    frontier: i64::MIN,
                    window_mark: 0,
                    cleaner_last: None,
                    last_port: None,
                    trip_seq: 0,
                    open_passage: Vec::new(),
                    retained: Vec::new(),
                    buffer: vec![(10, 1, enriched(10))],
                },
            ],
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let state = sample_state();
        let bytes = to_bytes(&state);
        let back = from_bytes(&bytes).unwrap();
        // Canonical encoding sorts sessions by MMSI.
        let mut want = state.clone();
        want.sessions.sort_by_key(|s| s.mmsi);
        assert_eq!(back, want);
    }

    #[test]
    fn encoding_is_canonical_under_session_order() {
        let state = sample_state();
        let mut flipped = state.clone();
        flipped.sessions.reverse();
        assert_eq!(to_bytes(&state), to_bytes(&flipped));
    }

    #[test]
    fn truncation_and_bit_flips_are_typed() {
        let bytes = to_bytes(&sample_state());
        for cut in (0..bytes.len()).step_by(7) {
            assert!(from_bytes(&bytes[..cut]).is_err(), "prefix {cut} loaded");
        }
        for at in (0..bytes.len()).step_by(11) {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= 0x04;
            assert!(from_bytes(&corrupt).is_err(), "flip at {at} loaded");
        }
    }

    #[test]
    fn file_round_trip_and_missing_is_none() {
        let dir = std::env::temp_dir().join("pol-ckp-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CHECKPOINT_NAME);
        std::fs::remove_file(&path).ok();
        assert!(load(&path).unwrap().is_none());
        save(&sample_state(), &path).unwrap();
        let back = load(&path).unwrap().unwrap();
        assert_eq!(back.wal_seq, 17);
        assert_eq!(back.sessions.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hostile_window_mark_rejected() {
        let mut state = sample_state();
        state.sessions[1].window_mark = 10; // past retained.len()
        let bytes = to_bytes(&state);
        assert!(matches!(from_bytes(&bytes), Err(CodecError::Wire(_))));
    }
}
