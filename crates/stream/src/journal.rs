//! The write-ahead journal: durable POLWAL1 segments fronting the
//! streaming engine.
//!
//! [`WalWriter`] owns a journal *directory* of POLWAL1 segments
//! (`wal-{first_seq:010}.polwal`). Records are journaled in raw wire
//! order **before** the engine sees them, batched
//! ([`WalConfig::batch_records`] per frame) and group-committed
//! ([`WalConfig::group_commit_batches`] frames per fsync); full
//! segments are sealed with the POLSEAL footer and a fresh tail opened
//! ([`WalConfig::max_segment_bytes`]). The invariant a reader may rely
//! on: **every segment but the last is sealed**, and the last is at
//! worst torn in its final frame — which [`pol_core::codec::wal`]
//! detects and discards.
//!
//! [`JournaledEngine`] threads the writer in front of
//! [`StreamEngine::push`]: journal first, apply second, so the durable
//! prefix of the journal always covers at least what any checkpoint or
//! published delta was derived from. Its two barriers:
//!
//! * **checkpoint** — flushes the journal (pending frame + fsync), then
//!   snapshots the engine with `wal_seq` = batches durable, so replay
//!   applies exactly the suffix `seq >= wal_seq`, no double-apply, no
//!   gap;
//! * **window cut** — flushes the journal before deriving a delta, so
//!   a published generation is always re-derivable from the journal
//!   ("publish implies journal durable to the cut").
//!
//! Recovery (in [`crate::recover`]) is the inverse: newest checkpoint,
//! plus a replay of the journal suffix, reconverges byte-identically —
//! pinned by the crash-point sweep in `tests/recovery.rs`.

use crate::checkpoint::{self, CHECKPOINT_NAME};
use crate::ingest::{IngestCounters, StreamEngine, StreamOutput};
use pol_ais::PositionReport;
use pol_core::codec::wal::{self, SegmentWriter, WalError};
use pol_core::codec::CodecError;
use pol_core::{Inventory, PipelineError};
use pol_engine::Engine;
use std::fmt;
use std::path::{Path, PathBuf};

/// Tunables of the journal layer.
#[derive(Clone, Copy, Debug)]
pub struct WalConfig {
    /// Records buffered per appended batch frame.
    pub batch_records: usize,
    /// Batch frames per fsync (the group-commit interval): durability
    /// lags the wire by at most `batch_records × group_commit_batches`
    /// records plus one partial frame.
    pub group_commit_batches: u64,
    /// Segment rotation threshold, bytes: a batch landing at or past it
    /// seals the segment and opens the next.
    pub max_segment_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            batch_records: 256,
            group_commit_batches: 8,
            max_segment_bytes: 8 << 20,
        }
    }
}

/// Any failure of the journal layer: segment I/O and format defects
/// ([`WalError`]), checkpoint codec defects ([`CodecError`]),
/// inventory-fold failures ([`PipelineError`]), or recovery-state
/// contradictions (`State`).
#[derive(Debug)]
pub enum JournalError {
    /// A POLWAL1 segment operation failed.
    Wal(WalError),
    /// A checkpoint save or load failed.
    Codec(CodecError),
    /// A delta-window fold failed.
    Pipeline(PipelineError),
    /// The journal, checkpoint, and chain contradict each other —
    /// recovery refuses to guess.
    State(&'static str),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Wal(e) => write!(f, "journal segment: {e}"),
            JournalError::Codec(e) => write!(f, "checkpoint codec: {e}"),
            JournalError::Pipeline(e) => write!(f, "window fold: {e}"),
            JournalError::State(msg) => write!(f, "recovery state: {msg}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<WalError> for JournalError {
    fn from(e: WalError) -> Self {
        JournalError::Wal(e)
    }
}

impl From<CodecError> for JournalError {
    fn from(e: CodecError) -> Self {
        JournalError::Codec(e)
    }
}

impl From<PipelineError> for JournalError {
    fn from(e: PipelineError) -> Self {
        JournalError::Pipeline(e)
    }
}

/// File name of the segment whose first batch carries `first_seq`.
fn segment_name(first_seq: u64) -> String {
    format!("wal-{first_seq:010}.polwal")
}

/// Parses a segment file name back to its first batch sequence.
fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".polwal")?;
    if digits.len() != 10 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// The journal tail as a resume target.
enum Tail {
    /// An unsealed final segment with a clean (possibly repaired-on-
    /// resume) prefix.
    Resume(PathBuf, wal::SegmentLoad),
    /// The final segment's header itself was torn — nothing durable in
    /// it; resume recreates the file in place.
    Recreate(PathBuf, u64),
}

/// What a journal-directory load found.
pub struct WalLoad {
    /// Every durable batch across all segments, in sequence order. The
    /// first batch's sequence may exceed zero when covered segments
    /// were purged.
    pub batches: Vec<wal::Batch>,
    /// Torn trailing bytes detected in the final segment and discarded.
    pub torn_bytes: u64,
    /// Segment files read.
    pub segments: usize,
    /// The sequence the next appended batch will carry.
    pub next_seq: u64,
    tail: Option<Tail>,
}

impl WalLoad {
    /// Total durable records across all batches.
    pub fn records(&self) -> u64 {
        self.batches.iter().map(|b| b.records.len() as u64).sum()
    }
}

/// Loads a journal directory.
pub struct WalReader;

impl WalReader {
    /// Reads every segment of the journal in `dir`: all but the last
    /// with the zero-tolerance sealed contract, the last tolerantly
    /// (torn tail detected and discarded; an unreadable tail *header*
    /// is an empty tail). Validates file names against headers and
    /// batch-sequence continuity across segment boundaries. A missing
    /// directory is an empty journal.
    pub fn load(dir: &Path) -> Result<WalLoad, JournalError> {
        let mut names: Vec<String> = Vec::new();
        match std::fs::read_dir(dir) {
            Ok(entries) => {
                for entry in entries {
                    let entry = entry.map_err(|e| JournalError::Wal(WalError::Io(e)))?;
                    if let Ok(name) = entry.file_name().into_string() {
                        if parse_segment_name(&name).is_some() {
                            names.push(name);
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(JournalError::Wal(WalError::Io(e))),
        }
        names.sort();
        let segments = names.len();

        let mut batches: Vec<wal::Batch> = Vec::new();
        let mut torn_bytes = 0u64;
        let mut next_seq: Option<u64> = None;
        let mut tail = None;
        for (i, name) in names.iter().enumerate() {
            let name_seq =
                parse_segment_name(name).ok_or(JournalError::State("unparsable segment name"))?;
            if let Some(expect) = next_seq {
                if name_seq != expect {
                    return Err(JournalError::State("journal segments are not contiguous"));
                }
            }
            let path = dir.join(name);
            let bytes = std::fs::read(&path).map_err(|e| JournalError::Wal(WalError::Io(e)))?;
            let last = i + 1 == segments;
            let load = if last {
                match wal::read_segment(&bytes) {
                    Ok(load) => load,
                    // The tail's own header never became durable: the
                    // journal ends at the previous segment, and resume
                    // recreates this file in place.
                    Err(WalError::BadHeader) => {
                        torn_bytes += bytes.len() as u64;
                        tail = Some(Tail::Recreate(path, name_seq));
                        next_seq.get_or_insert(name_seq);
                        continue;
                    }
                    Err(e) => return Err(JournalError::Wal(e)),
                }
            } else {
                wal::read_sealed(&bytes)?
            };
            if load.first_seq != name_seq {
                return Err(JournalError::State(
                    "segment header disagrees with its name",
                ));
            }
            let seg_next = load.first_seq + load.batches.len() as u64;
            torn_bytes += load.torn_bytes;
            batches.extend(load.batches.iter().cloned());
            next_seq = Some(seg_next);
            if last && !load.sealed {
                tail = Some(Tail::Resume(path, load));
            }
        }
        Ok(WalLoad {
            batches,
            torn_bytes,
            segments,
            next_seq: next_seq.unwrap_or(0),
            tail,
        })
    }
}

/// Appends the journal: batching, group commit, and segment rotation
/// over [`SegmentWriter`]s.
pub struct WalWriter {
    dir: PathBuf,
    cfg: WalConfig,
    /// `None` only after a failed rotation left no live tail — the
    /// writer is poisoned and every later append fails typed rather
    /// than risking an out-of-order segment chain.
    seg: Option<SegmentWriter>,
    pending: Vec<PositionReport>,
    unsynced: u64,
}

impl WalWriter {
    /// Starts a fresh journal in `dir` (created if missing), refusing a
    /// directory that already holds segments — resuming an existing
    /// journal without replaying it would silently fork history; use
    /// [`crate::recover`] for that.
    pub fn create(dir: &Path, cfg: WalConfig) -> Result<WalWriter, JournalError> {
        std::fs::create_dir_all(dir).map_err(|e| JournalError::Wal(WalError::Io(e)))?;
        let existing = WalReader::load(dir)?;
        if existing.segments > 0 {
            return Err(JournalError::State(
                "journal directory already holds segments; recover instead of creating",
            ));
        }
        let seg = SegmentWriter::create(&dir.join(segment_name(0)), 0)?;
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            cfg,
            seg: Some(seg),
            pending: Vec::new(),
            unsynced: 0,
        })
    }

    /// Reopens the journal a [`WalReader::load`] described, repairing a
    /// torn tail (idempotently) or opening a fresh tail after a sealed
    /// or destroyed one.
    pub fn resume(dir: &Path, cfg: WalConfig, load: &WalLoad) -> Result<WalWriter, JournalError> {
        let seg = match &load.tail {
            Some(Tail::Resume(path, seg_load)) => SegmentWriter::resume(path, seg_load)?,
            Some(Tail::Recreate(path, first_seq)) => SegmentWriter::create(path, *first_seq)?,
            // No tail: the directory is empty, or every segment is
            // sealed — open the next segment either way.
            None => SegmentWriter::create(&dir.join(segment_name(load.next_seq)), load.next_seq)?,
        };
        if seg.next_seq() != load.next_seq {
            return Err(JournalError::State("resumed tail disagrees with the load"));
        }
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            cfg,
            seg: Some(seg),
            pending: Vec::new(),
            unsynced: 0,
        })
    }

    fn seg_mut(&mut self) -> Result<&mut SegmentWriter, JournalError> {
        self.seg.as_mut().ok_or(JournalError::State(
            "journal writer poisoned by a failed rotation",
        ))
    }

    /// Records buffered but not yet appended as a frame.
    pub fn pending_records(&self) -> usize {
        self.pending.len()
    }

    /// The sequence the next appended batch will carry — after a
    /// [`flush`](Self::flush), the number of durable batches.
    pub fn next_seq(&self) -> u64 {
        match &self.seg {
            Some(seg) => seg.next_seq(),
            None => 0,
        }
    }

    /// Journals one record. The record is durable only after the group
    /// commit (or an explicit [`flush`](Self::flush)) reaches it.
    pub fn push(&mut self, r: PositionReport) -> Result<(), JournalError> {
        self.pending.push(r);
        if self.pending.len() >= self.cfg.batch_records {
            self.commit_batch()?;
        }
        Ok(())
    }

    fn commit_batch(&mut self) -> Result<(), JournalError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let max = self.cfg.max_segment_bytes;
        let group = self.cfg.group_commit_batches;
        let full = matches!(&self.seg, Some(seg) if seg.len() >= max && !seg.is_empty());
        if full {
            self.rotate()?;
        }
        let pending = std::mem::take(&mut self.pending);
        if let Err(e) = self
            .seg_mut()
            .and_then(|seg| Ok(seg.append_batch(&pending)?))
        {
            // Put the frame back: these records may already be applied
            // to an engine ahead of us, and a later flush must still
            // cover them or a checkpoint would overstate the journal.
            self.pending = pending;
            return Err(e);
        }
        self.unsynced += 1;
        if self.unsynced >= group {
            self.seg_mut()?.sync()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Seals the full tail and opens the next segment. Seal-first
    /// ordering is load-bearing: a crash between the two leaves an
    /// all-sealed journal (an empty tail the reader treats as such),
    /// never an unsealed segment followed by another.
    fn rotate(&mut self) -> Result<(), JournalError> {
        let old = self.seg.take().ok_or(JournalError::State(
            "journal writer poisoned by a failed rotation",
        ))?;
        let next = old.next_seq();
        old.seal()?;
        let seg = SegmentWriter::create(&self.dir.join(segment_name(next)), next)?;
        self.seg = Some(seg);
        self.unsynced = 0;
        Ok(())
    }

    /// The durability barrier: appends the pending partial frame (if
    /// any) and fsyncs, so every record pushed so far is durable.
    pub fn flush(&mut self) -> Result<(), JournalError> {
        self.commit_batch()?;
        if self.unsynced > 0 {
            self.seg_mut()?.sync()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Flushes and seals the tail — the clean-shutdown end of the
    /// journal, after which every segment is sealed.
    pub fn seal(mut self) -> Result<(), JournalError> {
        self.commit_batch()?;
        let seg = self.seg.take().ok_or(JournalError::State(
            "journal writer poisoned by a failed rotation",
        ))?;
        seg.seal()?;
        Ok(())
    }

    /// Deletes sealed segments fully covered by a checkpoint at
    /// `covered_seq` (every batch below it is re-derivable from the
    /// checkpoint alone). A segment is removed only when its *successor*
    /// starts at or below `covered_seq`; the tail always survives.
    /// Opt-in: callers that want the full journal for audit keep it.
    pub fn purge_covered(&self, covered_seq: u64) -> Result<Vec<String>, JournalError> {
        let mut names: Vec<String> = Vec::new();
        for entry in std::fs::read_dir(&self.dir).map_err(|e| JournalError::Wal(WalError::Io(e)))? {
            let entry = entry.map_err(|e| JournalError::Wal(WalError::Io(e)))?;
            if let Ok(name) = entry.file_name().into_string() {
                if parse_segment_name(&name).is_some() {
                    names.push(name);
                }
            }
        }
        names.sort();
        let mut removed = Vec::new();
        for pair in names.windows(2) {
            let [covered, next] = pair else { continue };
            let next_first =
                parse_segment_name(next).ok_or(JournalError::State("unparsable segment name"))?;
            if next_first <= covered_seq {
                std::fs::remove_file(self.dir.join(covered))
                    .map_err(|e| JournalError::Wal(WalError::Io(e)))?;
                removed.push(covered.clone());
            }
        }
        Ok(removed)
    }
}

/// A [`StreamEngine`] fronted by the journal: push journals first and
/// applies second, checkpoints bound replay, and window cuts imply the
/// journal is durable to the cut.
pub struct JournaledEngine {
    engine: StreamEngine,
    wal: WalWriter,
    dir: PathBuf,
    window_cuts: u64,
    checkpoint_every_records: u64,
    records_since_checkpoint: u64,
    checkpoints_written: u64,
    checkpoint_wal_seq: u64,
}

impl JournaledEngine {
    /// A journaled engine over a fresh journal in `dir`.
    /// `checkpoint_every_records` sets the automatic checkpoint cadence
    /// (0 disables it; [`checkpoint`](Self::checkpoint) stays manual).
    pub fn create(
        dir: &Path,
        engine: StreamEngine,
        wal_cfg: WalConfig,
        checkpoint_every_records: u64,
    ) -> Result<JournaledEngine, JournalError> {
        let wal = WalWriter::create(dir, wal_cfg)?;
        Ok(JournaledEngine {
            engine,
            wal,
            dir: dir.to_path_buf(),
            window_cuts: 0,
            checkpoint_every_records,
            records_since_checkpoint: 0,
            checkpoints_written: 0,
            checkpoint_wal_seq: 0,
        })
    }

    /// Assembles a journaled engine from recovered parts (the
    /// [`crate::recover`] constructor).
    pub(crate) fn from_parts(
        engine: StreamEngine,
        wal: WalWriter,
        dir: &Path,
        window_cuts: u64,
        checkpoint_every_records: u64,
        checkpoint_wal_seq: u64,
    ) -> JournaledEngine {
        JournaledEngine {
            engine,
            wal,
            dir: dir.to_path_buf(),
            window_cuts,
            checkpoint_every_records,
            records_since_checkpoint: 0,
            checkpoints_written: 0,
            checkpoint_wal_seq,
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &StreamEngine {
        &self.engine
    }

    /// Ingestion accounting so far.
    pub fn counters(&self) -> IngestCounters {
        self.engine.counters()
    }

    /// The engine's current watermark.
    pub fn watermark(&self) -> i64 {
        self.engine.watermark()
    }

    /// Delta windows cut so far (the next cut derives this generation).
    pub fn window_cuts(&self) -> u64 {
        self.window_cuts
    }

    /// Records journaled since the last checkpoint — the replay debt a
    /// crash right now would incur (plus any records group-commit has
    /// not yet made durable).
    pub fn records_since_checkpoint(&self) -> u64 {
        self.records_since_checkpoint
    }

    /// Checkpoints written by this instance.
    pub fn checkpoints_written(&self) -> u64 {
        self.checkpoints_written
    }

    /// Journal-first ingestion: the record is appended to the WAL, then
    /// applied to the engine, then the automatic checkpoint cadence
    /// runs. An error means the record was **not** applied — the engine
    /// never holds state the journal cannot re-derive.
    pub fn push(&mut self, r: PositionReport) -> Result<(), JournalError> {
        self.wal.push(r)?;
        self.engine.push(r);
        self.records_since_checkpoint += 1;
        if self.checkpoint_every_records > 0
            && self.records_since_checkpoint >= self.checkpoint_every_records
        {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Writes a checkpoint: flushes the journal (so `wal_seq` covers
    /// everything the engine has applied), snapshots the engine state,
    /// and saves it atomically next to the segments. Replay after a
    /// crash resumes from here.
    pub fn checkpoint(&mut self) -> Result<(), JournalError> {
        self.wal.flush()?;
        let wal_seq = self.wal.next_seq();
        let state = self.engine.snapshot_state(wal_seq, self.window_cuts);
        checkpoint::save(&state, &self.dir.join(CHECKPOINT_NAME))
            .map_err(|e| JournalError::Codec(CodecError::Io(e)))?;
        self.records_since_checkpoint = 0;
        self.checkpoints_written += 1;
        self.checkpoint_wal_seq = wal_seq;
        Ok(())
    }

    /// Deletes journal segments fully covered by the newest checkpoint.
    pub fn purge_covered(&self) -> Result<Vec<String>, JournalError> {
        self.wal.purge_covered(self.checkpoint_wal_seq)
    }

    /// Cuts the next delta window, flushing the journal first so the
    /// published generation is always re-derivable from durable
    /// segments ("publish implies journal durable to the cut").
    pub fn take_window_delta(&mut self, engine: &Engine) -> Result<Inventory, JournalError> {
        self.wal.flush()?;
        let delta = self.engine.take_window_delta(engine)?;
        self.window_cuts += 1;
        Ok(delta)
    }

    /// Clean shutdown: flushes and seals the journal tail, then closes
    /// the engine into the final inventory.
    pub fn close(self, engine: &Engine) -> Result<StreamOutput, JournalError> {
        self.wal.seal()?;
        Ok(self.engine.close(engine)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pol_ais::types::{Mmsi, NavStatus};
    use pol_geo::LatLon;

    fn report(mmsi: u32, ts: i64) -> PositionReport {
        PositionReport {
            mmsi: Mmsi(mmsi),
            timestamp: ts,
            pos: LatLon::new(10.0 + (ts % 70) as f64, -20.0 + (ts % 150) as f64).unwrap(),
            sog_knots: Some((ts % 40) as f64),
            cog_deg: Some((ts % 360) as f64),
            heading_deg: None,
            nav_status: NavStatus::UnderWayUsingEngine,
        }
    }

    fn fresh_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn journal_round_trips_across_rotated_segments() {
        let dir = fresh_dir("pol-journal-rotate");
        let cfg = WalConfig {
            batch_records: 16,
            group_commit_batches: 2,
            max_segment_bytes: 2_048, // force frequent rotation
        };
        let mut w = WalWriter::create(&dir, cfg).unwrap();
        let records: Vec<PositionReport> = (0..1_000)
            .map(|i| report(200_000_001 + (i % 5) as u32, i as i64))
            .collect();
        for &r in &records {
            w.push(r).unwrap();
        }
        w.seal().unwrap();

        let load = WalReader::load(&dir).unwrap();
        assert!(load.segments > 1, "rotation must have produced segments");
        assert_eq!(load.torn_bytes, 0);
        assert_eq!(load.records(), 1_000);
        let replayed: Vec<PositionReport> = load
            .batches
            .iter()
            .flat_map(|b| b.records.iter().copied())
            .collect();
        assert_eq!(replayed, records, "journal must preserve raw wire order");
        for (i, b) in load.batches.iter().enumerate() {
            assert_eq!(b.seq, i as u64, "batch sequences are journal-global");
        }
    }

    #[test]
    fn resume_continues_the_sequence_after_flush() {
        let dir = fresh_dir("pol-journal-resume");
        let cfg = WalConfig {
            batch_records: 8,
            ..WalConfig::default()
        };
        let mut w = WalWriter::create(&dir, cfg).unwrap();
        for i in 0..20 {
            w.push(report(200_000_001, i)).unwrap();
        }
        w.flush().unwrap();
        drop(w); // simulated crash: tail is unsealed

        let load = WalReader::load(&dir).unwrap();
        assert_eq!(load.records(), 20, "flush made every record durable");
        let mut w = WalWriter::resume(&dir, cfg, &load).unwrap();
        assert_eq!(w.next_seq(), load.next_seq);
        for i in 20..40 {
            w.push(report(200_000_001, i)).unwrap();
        }
        w.seal().unwrap();
        let load = WalReader::load(&dir).unwrap();
        assert_eq!(load.records(), 40);
        assert_eq!(load.torn_bytes, 0);
    }

    #[test]
    fn create_refuses_an_existing_journal() {
        let dir = fresh_dir("pol-journal-no-clobber");
        let w = WalWriter::create(&dir, WalConfig::default()).unwrap();
        drop(w);
        assert!(matches!(
            WalWriter::create(&dir, WalConfig::default()),
            Err(JournalError::State(_)),
        ));
    }

    #[test]
    fn purge_removes_only_fully_covered_segments() {
        let dir = fresh_dir("pol-journal-purge");
        let cfg = WalConfig {
            batch_records: 8,
            group_commit_batches: 1,
            max_segment_bytes: 1_024,
        };
        let mut w = WalWriter::create(&dir, cfg).unwrap();
        for i in 0..400 {
            w.push(report(200_000_001, i)).unwrap();
        }
        w.flush().unwrap();
        let before = WalReader::load(&dir).unwrap();
        assert!(before.segments >= 3);

        // A checkpoint at the journal head covers every batch; the tail
        // still survives.
        let removed = w.purge_covered(w.next_seq()).unwrap();
        assert_eq!(removed.len(), before.segments - 1);
        let after = WalReader::load(&dir).unwrap();
        assert_eq!(after.segments, 1);
        assert_eq!(after.next_seq, before.next_seq, "sequence is preserved");

        // Nothing is covered at seq 0: purge is a no-op.
        assert!(w.purge_covered(0).unwrap().is_empty());
    }
}
