//! Crash recovery: checkpoint restore plus journal-suffix replay.
//!
//! [`recover`] rebuilds a [`JournaledEngine`] from a journal directory
//! after a crash, in four steps:
//!
//! 1. **restore** — load the newest POLCKP1 checkpoint (if any) and
//!    rebuild the engine from it ([`StreamEngine::from_state`]); with
//!    no checkpoint, start empty;
//! 2. **read** — load every journal segment ([`WalReader::load`]):
//!    sealed segments with zero tolerance, the tail tolerantly (a torn
//!    final batch is discarded, never served);
//! 3. **replay** — re-push exactly the batches with sequence `>=` the
//!    checkpoint's `wal_seq`. Because the journal holds the *raw wire
//!    order* and the checkpoint was flushed to a batch boundary, this
//!    is no-double-apply, no-gap: the rebuilt engine state equals an
//!    uninterrupted run over the same durable prefix, byte for byte
//!    (pinned by the crash-point sweep in `tests/recovery.rs`);
//! 4. **reconcile** — when a delta chain is in play, window cuts are
//!    re-derived at the same watermark thresholds the pre-crash run
//!    used. Generations the manifest already holds are skipped
//!    ([`PublishOutcome::AlreadyDurable`] — deterministic replay makes
//!    the durable bytes identical); the first missing generation
//!    onward is published. Orphaned snapshots from a publish that died
//!    before its manifest commit are swept by
//!    [`DeltaPublisher::open`].
//!
//! The returned engine has a repaired, appendable journal tail and a
//! fresh checkpoint (so repeated crashes pay a bounded replay, not a
//! compounding one), and continues exactly where the wire left off:
//! the caller resumes pushing at record `counters().ingested`.

use crate::checkpoint::{self, CHECKPOINT_NAME};
use crate::delta::{DeltaPublisher, PublishOutcome};
use crate::ingest::{StreamConfig, StreamEngine};
use crate::journal::{JournalError, JournaledEngine, WalConfig, WalReader, WalWriter};
use pol_ais::StaticReport;
use pol_core::codec::CodecError;
use pol_core::records::PortSite;
use pol_engine::Engine;
use std::path::Path;

/// The delta-window schedule, shared by the live driver and recovery
/// replay: window `k` (generation `k`) is cut when the watermark
/// reaches `start_ts + (k + 1) × window_secs`. Recovery must use the
/// exact schedule the pre-crash run did or the re-derived windows
/// would not line up with the published chain.
#[derive(Clone, Copy, Debug)]
pub struct WindowSpec {
    /// Epoch of window 0 — the wire's start timestamp.
    pub start_ts: i64,
    /// Window width, seconds.
    pub window_secs: i64,
}

impl WindowSpec {
    /// The watermark threshold that cuts window `k`.
    pub fn cut_at(&self, k: u64) -> i64 {
        self.start_ts.saturating_add(
            (k as i64)
                .saturating_add(1)
                .saturating_mul(self.window_secs),
        )
    }
}

/// What a recovery did — the accounting behind the recovery gate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a checkpoint was found and restored.
    pub checkpoint_found: bool,
    /// The restored checkpoint's journal position (0 without one).
    pub checkpoint_wal_seq: u64,
    /// Journal batches replayed past the checkpoint.
    pub batches_replayed: u64,
    /// Records replayed past the checkpoint.
    pub records_replayed: u64,
    /// Torn trailing bytes discarded from the journal tail.
    pub torn_bytes: u64,
    /// Journal segment files read.
    pub segments: usize,
    /// Delta generations published during replay (missing from the
    /// chain when the crash hit).
    pub deltas_published: u64,
    /// Delta generations re-derived but already durable in the chain.
    pub deltas_already_durable: u64,
    /// Total window cuts after replay.
    pub window_cuts: u64,
}

/// Re-derives every cut the current watermark allows, reconciling each
/// against the on-disk chain.
fn run_cuts(
    se: &mut StreamEngine,
    engine: &Engine,
    publisher: &mut DeltaPublisher,
    spec: &WindowSpec,
    cuts: &mut u64,
    report: &mut RecoveryReport,
) -> Result<(), JournalError> {
    while se.watermark() >= spec.cut_at(*cuts) {
        let delta = se.take_window_delta(engine)?;
        match publisher
            .publish_at(*cuts, &delta)
            .map_err(|e| JournalError::Codec(CodecError::Io(e)))?
        {
            PublishOutcome::Published => report.deltas_published += 1,
            PublishOutcome::AlreadyDurable => report.deltas_already_durable += 1,
        }
        *cuts += 1;
    }
    Ok(())
}

/// Recovers a journaled engine from `dir` (see the module docs for the
/// four steps). `windows` carries the delta chain to reconcile against
/// and the cut schedule; without it, replay rebuilds engine state only
/// and no windows are cut.
#[allow(clippy::too_many_arguments)]
pub fn recover(
    dir: &Path,
    engine: &Engine,
    statics: &[StaticReport],
    ports: &[PortSite],
    cfg: StreamConfig,
    wal_cfg: WalConfig,
    checkpoint_every_records: u64,
    mut windows: Option<(&mut DeltaPublisher, WindowSpec)>,
) -> Result<(JournaledEngine, RecoveryReport), JournalError> {
    let ckpt = checkpoint::load(&dir.join(CHECKPOINT_NAME))?;
    let load = WalReader::load(dir)?;

    let mut report = RecoveryReport {
        checkpoint_found: ckpt.is_some(),
        torn_bytes: load.torn_bytes,
        segments: load.segments,
        ..RecoveryReport::default()
    };

    let (mut se, applied_seq, mut cuts) = match ckpt {
        Some(state) => {
            let se = StreamEngine::from_state(statics, ports, cfg, &state)
                .map_err(JournalError::State)?;
            report.checkpoint_wal_seq = state.wal_seq;
            (se, state.wal_seq, state.window_cuts)
        }
        None => (StreamEngine::new(statics, ports, cfg), 0, 0),
    };

    // The checkpoint and journal must describe one history: the
    // checkpoint cannot claim batches the journal never made durable,
    // and a purged journal must still reach back to the checkpoint.
    if applied_seq > load.next_seq {
        return Err(JournalError::State("checkpoint is ahead of the journal"));
    }
    if let Some(first) = load.batches.first() {
        if applied_seq < first.seq {
            return Err(JournalError::State("journal purged past the checkpoint"));
        }
    }
    if let Some((publisher, _)) = windows.as_ref() {
        if cuts > publisher.chain_len() as u64 {
            return Err(JournalError::State(
                "checkpoint counts more window cuts than the chain holds",
            ));
        }
    }

    // Replay the journal suffix, re-deriving window cuts at the same
    // record boundaries the pre-crash run used. The initial cut pass
    // covers a checkpoint taken while a cut was already due.
    if let Some((publisher, spec)) = windows.as_mut() {
        run_cuts(&mut se, engine, publisher, spec, &mut cuts, &mut report)?;
    }
    for b in &load.batches {
        if b.seq < applied_seq {
            continue;
        }
        report.batches_replayed += 1;
        for &r in &b.records {
            se.push(r);
            report.records_replayed += 1;
            if let Some((publisher, spec)) = windows.as_mut() {
                run_cuts(&mut se, engine, publisher, spec, &mut cuts, &mut report)?;
            }
        }
    }
    report.window_cuts = cuts;

    // Reopen the tail for appending (repairing any torn bytes) and
    // immediately re-checkpoint: a second crash replays from here, not
    // from the pre-crash checkpoint — recovery cost stays bounded.
    let wal = WalWriter::resume(dir, wal_cfg, &load)?;
    let mut je = JournaledEngine::from_parts(
        se,
        wal,
        dir,
        cuts,
        checkpoint_every_records,
        report.checkpoint_wal_seq,
    );
    je.checkpoint()?;
    Ok((je, report))
}

impl StreamEngine {
    /// Recovers engine state from the journal in `dir` with default
    /// journal tunables and no delta chain — the minimal crash-restart
    /// path. See [`recover`] for the full-fidelity variant that also
    /// reconciles a published chain.
    pub fn recover(
        dir: &Path,
        engine: &Engine,
        statics: &[StaticReport],
        ports: &[PortSite],
        cfg: StreamConfig,
    ) -> Result<(JournaledEngine, RecoveryReport), JournalError> {
        recover(
            dir,
            engine,
            statics,
            ports,
            cfg,
            WalConfig::default(),
            0,
            None,
        )
    }
}
