//! Delta snapshot publication: POLINV3 windows chained by a POLMAN1
//! manifest.
//!
//! A [`DeltaPublisher`] owns one publication directory. The first
//! publication writes the chain base (`base.pol`, generation 0); each
//! later one appends `delta-NNNNN.pol` with the next generation. The
//! crash-safety order is the load-bearing part:
//!
//! 1. the snapshot file is written first, through
//!    [`pol_core::codec::save_bytes`]'s temp-sibling + fsync + atomic
//!    rename discipline (and its `codec.save.*` chaos failpoints);
//! 2. only then is the manifest rewritten, by the same discipline.
//!
//! The manifest is the commit record: it names each file with its exact
//! length and CRC-64, and [`pol_core::codec::manifest::load_chain`]
//! re-verifies both before decoding a byte. A crash or injected fault
//! between the two steps leaves at worst an orphaned snapshot file the
//! old manifest never references — readers keep loading the previous
//! chain, never a torn or half-published one (pinned by the chaos
//! tests).
//!
//! [`merge_chain`] is the in-memory equivalent of a chain load: it
//! canonicalizes by sorting on generation before folding, so the merged
//! bytes depend only on the *set* of `(generation, delta)` pairs —
//! never on arrival order. The permutation proptest in
//! `tests/delta_chain.rs` pins that.

use pol_core::codec::manifest::{self, Manifest, ManifestEntry};
use pol_core::codec::{columnar, save_bytes};
use pol_core::Inventory;
use pol_sketch::crc64::crc64;
use std::io;
use std::path::{Path, PathBuf};

/// File name of the chain manifest inside a publication directory.
pub const MANIFEST_NAME: &str = "inventory.polman";

/// Publishes a growing delta chain into one directory: snapshot files
/// first, manifest second, both atomically.
pub struct DeltaPublisher {
    dir: PathBuf,
    manifest_path: PathBuf,
    manifest: Manifest,
}

impl DeltaPublisher {
    /// A publisher over `dir` (which must exist) with an empty chain.
    /// Nothing is written until the first [`publish`](Self::publish).
    pub fn create(dir: &Path) -> DeltaPublisher {
        DeltaPublisher {
            dir: dir.to_path_buf(),
            manifest_path: dir.join(MANIFEST_NAME),
            manifest: Manifest {
                entries: Vec::new(),
            },
        }
    }

    /// Path of the chain manifest (what `pol-serve` opens and reloads).
    pub fn manifest_path(&self) -> &Path {
        &self.manifest_path
    }

    /// Files published so far (0 before the base exists).
    pub fn chain_len(&self) -> usize {
        self.manifest.entries.len()
    }

    /// Newest published generation, `None` before the base exists.
    pub fn generation(&self) -> Option<u64> {
        self.manifest.entries.last().map(|e| e.generation)
    }

    /// Publishes one snapshot as the next chain link and commits it to
    /// the manifest. On any error the directory still holds a fully
    /// valid chain: either the previous manifest (at worst plus one
    /// orphaned, unreferenced file) or the new one. Returns the
    /// published generation.
    pub fn publish(&mut self, inv: &Inventory) -> io::Result<u64> {
        let generation = self.manifest.entries.len() as u64;
        let name = if generation == 0 {
            "base.pol".to_string()
        } else {
            format!("delta-{generation:05}.pol")
        };
        let bytes = columnar::to_bytes(inv);
        // Snapshot first: until the manifest names it, it does not exist
        // as far as any reader is concerned.
        save_bytes(&bytes, &self.dir.join(&name))?;
        self.manifest.entries.push(ManifestEntry {
            generation,
            file_len: bytes.len() as u64,
            crc: crc64(&bytes),
            name,
        });
        match manifest::save(&self.manifest, &self.manifest_path) {
            Ok(()) => Ok(generation),
            Err(e) => {
                // Roll the in-memory chain back to what is on disk; the
                // snapshot file stays behind as an orphan the old
                // manifest never references.
                self.manifest.entries.pop();
                Err(e)
            }
        }
    }
}

/// Merges a set of `(generation, inventory)` deltas into one inventory,
/// canonicalizing by ascending generation first — the same order
/// [`pol_core::codec::manifest::load_chain`] applies on disk. Because
/// of that canonicalization the output bytes are independent of the
/// input order (generations must be distinct, as a manifest
/// guarantees). Returns `None` for an empty set. All parts must share
/// one grid resolution, as chain loading enforces.
pub fn merge_chain(mut parts: Vec<(u64, Inventory)>) -> Option<Inventory> {
    parts.sort_by_key(|(generation, _)| *generation);
    let mut iter = parts.into_iter();
    let (_, mut merged) = iter.next()?;
    for (_, delta) in iter {
        merged.merge(&delta);
    }
    Some(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pol_ais::types::{MarketSegment, Mmsi};
    use pol_core::features::{CellStats, GroupKey};
    use pol_core::records::{CellPoint, TripPoint};
    use pol_geo::LatLon;
    use pol_hexgrid::{cell_at, Resolution};
    use pol_sketch::hash::FxHashMap;

    fn window_inventory(n: usize, salt: u64) -> Inventory {
        let res = Resolution::new(6).unwrap();
        let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
        for i in 0..n {
            let k = i as u64 + salt * 1_000;
            let pos = LatLon::new(10.0 + (k % 50) as f64 * 0.9, (k % 90) as f64).unwrap();
            let cell = cell_at(pos, res);
            let cp = CellPoint {
                point: TripPoint {
                    mmsi: Mmsi(200_000_000 + (k % 9) as u32),
                    timestamp: k as i64,
                    pos,
                    sog_knots: Some(8.0 + (k % 11) as f64),
                    cog_deg: Some((k % 360) as f64),
                    heading_deg: None,
                    segment: MarketSegment::from_id((k % 6) as u8).unwrap(),
                    trip_id: k % 4,
                    origin: (k % 5) as u16,
                    dest: (k % 7) as u16,
                    eto_secs: k as i64,
                    ata_secs: 1_000 - k as i64,
                },
                cell,
                next_cell: None,
            };
            entries
                .entry(GroupKey::Cell(cell))
                .or_insert_with(|| CellStats::new(0.02, 8))
                .observe(&cp);
        }
        Inventory::from_entries(res, entries, n as u64)
    }

    #[test]
    fn publisher_grows_a_loadable_chain() {
        let dir = std::env::temp_dir().join("pol-stream-delta-grow");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mut publisher = DeltaPublisher::create(&dir);
        assert_eq!(publisher.generation(), None);

        assert_eq!(publisher.publish(&window_inventory(50, 0)).unwrap(), 0);
        assert_eq!(publisher.publish(&window_inventory(30, 1)).unwrap(), 1);
        assert_eq!(publisher.publish(&window_inventory(20, 2)).unwrap(), 2);
        assert_eq!(publisher.chain_len(), 3);
        assert_eq!(publisher.generation(), Some(2));

        let (merged, info) = manifest::load_chain(publisher.manifest_path()).unwrap();
        assert_eq!(info.generation, 2);
        assert_eq!(info.chain_len, 3);
        assert_eq!(merged.total_records(), 100);

        let report = manifest::verify_chain(publisher.manifest_path()).unwrap();
        assert_eq!(report.files.len(), 3);
        assert_eq!(report.merged_entries, merged.len());
    }

    #[test]
    fn chain_load_equals_merge_chain() {
        let dir = std::env::temp_dir().join("pol-stream-delta-eq");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mut publisher = DeltaPublisher::create(&dir);
        for salt in 0..4 {
            publisher.publish(&window_inventory(40, salt)).unwrap();
        }
        let (from_disk, _) = manifest::load_chain(publisher.manifest_path()).unwrap();
        let in_memory = merge_chain(
            (0..4)
                .map(|salt| (salt, window_inventory(40, salt)))
                .collect(),
        )
        .unwrap();
        assert_eq!(
            columnar::to_bytes(&from_disk),
            columnar::to_bytes(&in_memory),
            "disk chain load and in-memory merge must agree byte-for-byte"
        );
    }

    #[test]
    fn merge_chain_empty_is_none() {
        assert!(merge_chain(Vec::new()).is_none());
    }
}
