//! Delta snapshot publication: POLINV3 windows chained by a POLMAN1
//! manifest.
//!
//! A [`DeltaPublisher`] owns one publication directory. The first
//! publication writes the chain base (`base.pol`, generation 0); each
//! later one appends `delta-NNNNN.pol` with the next generation. The
//! crash-safety order is the load-bearing part:
//!
//! 1. the snapshot file is written first, through
//!    [`pol_core::codec::save_bytes`]'s temp-sibling + fsync + atomic
//!    rename discipline (and its `codec.save.*` chaos failpoints);
//! 2. only then is the manifest rewritten, by the same discipline.
//!
//! The manifest is the commit record: it names each file with its exact
//! length and CRC-64, and [`pol_core::codec::manifest::load_chain`]
//! re-verifies both before decoding a byte. A crash or injected fault
//! between the two steps leaves at worst an orphaned snapshot file the
//! old manifest never references — readers keep loading the previous
//! chain, never a torn or half-published one (pinned by the chaos
//! tests).
//!
//! [`merge_chain`] is the in-memory equivalent of a chain load: it
//! canonicalizes by sorting on generation before folding, so the merged
//! bytes depend only on the *set* of `(generation, delta)` pairs —
//! never on arrival order. The permutation proptest in
//! `tests/delta_chain.rs` pins that.

use pol_core::codec::manifest::{self, Manifest, ManifestEntry};
use pol_core::codec::{columnar, save_bytes, CodecError};
use pol_core::Inventory;
use pol_sketch::crc64::crc64;
use std::io;
use std::path::{Path, PathBuf};

/// File name of the chain manifest inside a publication directory.
pub const MANIFEST_NAME: &str = "inventory.polman";

/// What an orphan sweep removed: snapshot files present in the
/// publication directory but unreferenced by the manifest — the debris
/// a crash between snapshot write and manifest commit leaves behind.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// File names deleted by the sweep.
    pub removed: Vec<String>,
}

/// What [`DeltaPublisher::publish_at`] decided for a generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PublishOutcome {
    /// The generation was the next link and is now durably committed.
    Published,
    /// The generation is already in the on-disk manifest — a recovery
    /// replay re-derived a window the pre-crash run had committed.
    /// Nothing was written (the chain's bytes are deterministic in the
    /// record prefix, so the durable copy is identical).
    AlreadyDurable,
}

/// Publishes a growing delta chain into one directory: snapshot files
/// first, manifest second, both atomically.
pub struct DeltaPublisher {
    dir: PathBuf,
    manifest_path: PathBuf,
    manifest: Manifest,
}

impl DeltaPublisher {
    /// A publisher over `dir` (which must exist) with an empty chain.
    /// Nothing is written until the first [`publish`](Self::publish).
    pub fn create(dir: &Path) -> DeltaPublisher {
        DeltaPublisher {
            dir: dir.to_path_buf(),
            manifest_path: dir.join(MANIFEST_NAME),
            manifest: Manifest {
                entries: Vec::new(),
            },
        }
    }

    /// A publisher resuming the chain already committed in `dir`: the
    /// on-disk manifest (if any) is the truth, and any snapshot file it
    /// does not reference — the debris of a publish that crashed
    /// between snapshot write and manifest commit — is swept away so it
    /// can never shadow a future generation's file name. This is the
    /// recovery-path constructor.
    pub fn open(dir: &Path) -> Result<(DeltaPublisher, SweepReport), CodecError> {
        let manifest_path = dir.join(MANIFEST_NAME);
        let manifest = match manifest::load(&manifest_path) {
            Ok(m) => m,
            Err(CodecError::Io(e)) if e.kind() == io::ErrorKind::NotFound => Manifest {
                entries: Vec::new(),
            },
            Err(e) => return Err(e),
        };
        let publisher = DeltaPublisher {
            dir: dir.to_path_buf(),
            manifest_path,
            manifest,
        };
        let swept = publisher.sweep_orphans().map_err(CodecError::Io)?;
        Ok((publisher, swept))
    }

    /// Deletes every `*.pol` snapshot in the publication directory the
    /// manifest does not reference, reporting what was removed. Safe at
    /// any time: an unreferenced snapshot is invisible to readers by
    /// construction (the manifest is the commit record), so removing it
    /// cannot change what any chain load observes.
    pub fn sweep_orphans(&self) -> io::Result<SweepReport> {
        let mut removed = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            let name = match entry.file_name().into_string() {
                Ok(n) => n,
                Err(_) => continue,
            };
            if !name.ends_with(".pol") {
                continue;
            }
            if self.manifest.entries.iter().any(|e| e.name == name) {
                continue;
            }
            std::fs::remove_file(entry.path())?;
            removed.push(name);
        }
        removed.sort();
        Ok(SweepReport { removed })
    }

    /// Path of the chain manifest (what `pol-serve` opens and reloads).
    pub fn manifest_path(&self) -> &Path {
        &self.manifest_path
    }

    /// Files published so far (0 before the base exists).
    pub fn chain_len(&self) -> usize {
        self.manifest.entries.len()
    }

    /// Newest published generation, `None` before the base exists.
    pub fn generation(&self) -> Option<u64> {
        self.manifest.entries.last().map(|e| e.generation)
    }

    /// Publishes one snapshot as the next chain link and commits it to
    /// the manifest. On any error the directory still holds a fully
    /// valid chain: either the previous manifest (at worst plus one
    /// orphaned, unreferenced file) or the new one. Returns the
    /// published generation.
    pub fn publish(&mut self, inv: &Inventory) -> io::Result<u64> {
        let generation = self.manifest.entries.len() as u64;
        let name = if generation == 0 {
            "base.pol".to_string()
        } else {
            format!("delta-{generation:05}.pol")
        };
        let bytes = columnar::to_bytes(inv);
        // Snapshot first: until the manifest names it, it does not exist
        // as far as any reader is concerned.
        save_bytes(&bytes, &self.dir.join(&name))?;
        self.manifest.entries.push(ManifestEntry {
            generation,
            file_len: bytes.len() as u64,
            crc: crc64(&bytes),
            name,
        });
        match manifest::save(&self.manifest, &self.manifest_path) {
            Ok(()) => Ok(generation),
            Err(e) => {
                // Roll the in-memory chain back to what is on disk; the
                // snapshot file stays behind as an orphan the old
                // manifest never references.
                self.manifest.entries.pop();
                Err(e)
            }
        }
    }

    /// Exactly-once publication for recovery replay: publishes `gen`
    /// only if it is the next chain link. A generation the manifest
    /// already holds is reported [`PublishOutcome::AlreadyDurable`] and
    /// left untouched — the replay re-derived a window the pre-crash
    /// run committed, and deterministic replay makes the durable bytes
    /// identical. A generation *past* the next link means the journal
    /// and the chain disagree (a skipped window) and is refused — that
    /// chain would have a hole no merge could repair.
    pub fn publish_at(&mut self, gen: u64, inv: &Inventory) -> io::Result<PublishOutcome> {
        let next = self.manifest.entries.len() as u64;
        if gen < next {
            return Ok(PublishOutcome::AlreadyDurable);
        }
        if gen > next {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("delta generation gap: journal derived {gen} but chain holds {next}"),
            ));
        }
        self.publish(inv)?;
        Ok(PublishOutcome::Published)
    }
}

/// Merges a set of `(generation, inventory)` deltas into one inventory,
/// canonicalizing by ascending generation first — the same order
/// [`pol_core::codec::manifest::load_chain`] applies on disk. Because
/// of that canonicalization the output bytes are independent of the
/// input order (generations must be distinct, as a manifest
/// guarantees). Returns `None` for an empty set. All parts must share
/// one grid resolution, as chain loading enforces.
pub fn merge_chain(mut parts: Vec<(u64, Inventory)>) -> Option<Inventory> {
    parts.sort_by_key(|(generation, _)| *generation);
    let mut iter = parts.into_iter();
    let (_, mut merged) = iter.next()?;
    for (_, delta) in iter {
        merged.merge(&delta);
    }
    Some(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pol_ais::types::{MarketSegment, Mmsi};
    use pol_core::features::{CellStats, GroupKey};
    use pol_core::records::{CellPoint, TripPoint};
    use pol_geo::LatLon;
    use pol_hexgrid::{cell_at, Resolution};
    use pol_sketch::hash::FxHashMap;

    fn window_inventory(n: usize, salt: u64) -> Inventory {
        let res = Resolution::new(6).unwrap();
        let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
        for i in 0..n {
            let k = i as u64 + salt * 1_000;
            let pos = LatLon::new(10.0 + (k % 50) as f64 * 0.9, (k % 90) as f64).unwrap();
            let cell = cell_at(pos, res);
            let cp = CellPoint {
                point: TripPoint {
                    mmsi: Mmsi(200_000_000 + (k % 9) as u32),
                    timestamp: k as i64,
                    pos,
                    sog_knots: Some(8.0 + (k % 11) as f64),
                    cog_deg: Some((k % 360) as f64),
                    heading_deg: None,
                    segment: MarketSegment::from_id((k % 6) as u8).unwrap(),
                    trip_id: k % 4,
                    origin: (k % 5) as u16,
                    dest: (k % 7) as u16,
                    eto_secs: k as i64,
                    ata_secs: 1_000 - k as i64,
                },
                cell,
                next_cell: None,
            };
            entries
                .entry(GroupKey::Cell(cell))
                .or_insert_with(|| CellStats::new(0.02, 8))
                .observe(&cp);
        }
        Inventory::from_entries(res, entries, n as u64)
    }

    #[test]
    fn publisher_grows_a_loadable_chain() {
        let dir = std::env::temp_dir().join("pol-stream-delta-grow");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mut publisher = DeltaPublisher::create(&dir);
        assert_eq!(publisher.generation(), None);

        assert_eq!(publisher.publish(&window_inventory(50, 0)).unwrap(), 0);
        assert_eq!(publisher.publish(&window_inventory(30, 1)).unwrap(), 1);
        assert_eq!(publisher.publish(&window_inventory(20, 2)).unwrap(), 2);
        assert_eq!(publisher.chain_len(), 3);
        assert_eq!(publisher.generation(), Some(2));

        let (merged, info) = manifest::load_chain(publisher.manifest_path()).unwrap();
        assert_eq!(info.generation, 2);
        assert_eq!(info.chain_len, 3);
        assert_eq!(merged.total_records(), 100);

        let report = manifest::verify_chain(publisher.manifest_path()).unwrap();
        assert_eq!(report.files.len(), 3);
        assert_eq!(report.merged_entries, merged.len());
    }

    #[test]
    fn chain_load_equals_merge_chain() {
        let dir = std::env::temp_dir().join("pol-stream-delta-eq");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mut publisher = DeltaPublisher::create(&dir);
        for salt in 0..4 {
            publisher.publish(&window_inventory(40, salt)).unwrap();
        }
        let (from_disk, _) = manifest::load_chain(publisher.manifest_path()).unwrap();
        let in_memory = merge_chain(
            (0..4)
                .map(|salt| (salt, window_inventory(40, salt)))
                .collect(),
        )
        .unwrap();
        assert_eq!(
            columnar::to_bytes(&from_disk),
            columnar::to_bytes(&in_memory),
            "disk chain load and in-memory merge must agree byte-for-byte"
        );
    }

    #[test]
    fn merge_chain_empty_is_none() {
        assert!(merge_chain(Vec::new()).is_none());
    }

    #[test]
    fn open_sweeps_orphans_and_resumes_the_chain() {
        let dir = std::env::temp_dir().join("pol-stream-delta-orphans");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mut publisher = DeltaPublisher::create(&dir);
        publisher.publish(&window_inventory(40, 0)).unwrap();
        publisher.publish(&window_inventory(25, 1)).unwrap();
        // Plant the debris of a publish that crashed before its
        // manifest commit, plus a non-snapshot bystander.
        std::fs::write(dir.join("delta-00002.pol"), b"torn half-published bytes").unwrap();
        std::fs::write(dir.join("notes.txt"), b"not a snapshot").unwrap();

        let (mut reopened, swept) = DeltaPublisher::open(&dir).unwrap();
        assert_eq!(swept.removed, vec!["delta-00002.pol".to_string()]);
        assert!(
            !dir.join("delta-00002.pol").exists(),
            "orphan must be deleted"
        );
        assert!(dir.join("notes.txt").exists(), "bystanders are untouched");
        assert_eq!(reopened.chain_len(), 2);
        assert_eq!(reopened.generation(), Some(1));

        // The resumed publisher continues the chain exactly where the
        // manifest left it — the orphan's name is reusable again.
        assert_eq!(
            reopened.publish_at(1, &window_inventory(9, 9)).unwrap(),
            PublishOutcome::AlreadyDurable,
        );
        assert_eq!(
            reopened.publish_at(2, &window_inventory(20, 2)).unwrap(),
            PublishOutcome::Published,
        );
        let gap = reopened.publish_at(4, &window_inventory(5, 4));
        assert!(gap.is_err(), "a generation gap must be refused");
        let report = manifest::verify_chain(reopened.manifest_path()).unwrap();
        assert_eq!(report.files.len(), 3);
    }

    #[test]
    fn open_on_empty_dir_is_an_empty_chain() {
        let dir = std::env::temp_dir().join("pol-stream-delta-open-empty");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let (publisher, swept) = DeltaPublisher::open(&dir).unwrap();
        assert_eq!(publisher.chain_len(), 0);
        assert!(swept.removed.is_empty());
    }
}
