//! Evaluates **§4.1.3b** — route forecasting: for the inventory's
//! best-covered `(origin, destination, vessel-type)` keys ("known sea
//! routes", as the paper frames the use case), replay a *fresh* vessel on
//! the same route (new noise, new speed), build the transition graph, A*
//! from the 30%-progress position, and score the forecast against the
//! cells the new vessel actually crossed.

use pol_apps::RouteForecaster;
use pol_bench::{
    banner, build_inventory, experiment_scenario, simulate_voyage, top_route_keys,
    typical_speed_kn, TRAIN_SEED,
};
use pol_core::PipelineConfig;
use pol_fleetsim::{EPOCH_2022, WORLD_PORTS};
use pol_hexgrid::{cell_at, grid_distance};
use std::collections::HashSet;

fn main() {
    banner(
        "§4.1.3 — route forecasting over the transition graph (A*)",
        "paper §4.1.3",
    );
    let cfg = PipelineConfig::default();
    let (_, out) = build_inventory(&experiment_scenario(TRAIN_SEED), &cfg);

    let keys = top_route_keys(&out.inventory, 40, 12);
    println!();
    println!("best-covered route keys in the inventory: {}", keys.len());

    let mut forecast_ok = 0u64;
    let mut attempted = 0u64;
    let mut on_lane = Vec::new();
    let mut len_ratio = Vec::new();
    for (i, (o, d, seg, cells)) in keys.iter().enumerate() {
        let dest_pos = WORLD_PORTS[*d as usize].pos();
        let Some((_arrival, reports)) = simulate_voyage(
            *o,
            *d,
            typical_speed_kn(*seg) + (i as f64 % 3.0) - 1.0,
            EPOCH_2022 + 86_400,
            9_000 + i as u64,
        ) else {
            continue;
        };
        if reports.len() < 30 {
            continue;
        }
        attempted += 1;
        let forecaster = RouteForecaster::build(&out.inventory, *o, *d, *seg, dest_pos);
        let pivot = reports.len() * 3 / 10;
        let Some(fc) = forecaster.forecast(reports[pivot].pos, cfg.resolution) else {
            println!(
                "  {} -> {} [{seg}] ({cells} cells): off-lane at pivot, no forecast",
                WORLD_PORTS[*o as usize].name, WORLD_PORTS[*d as usize].name
            );
            continue;
        };
        forecast_ok += 1;
        let actual: Vec<_> = reports[pivot..]
            .iter()
            .map(|r| cell_at(r.pos, cfg.resolution))
            .collect();
        let actual_set: HashSet<_> = actual.iter().copied().collect();
        let close = fc
            .cells
            .iter()
            .filter(|c| {
                actual_set.contains(c)
                    || actual
                        .iter()
                        .any(|a| grid_distance(*a, **c).is_some_and(|x| x <= 1))
            })
            .count();
        let frac = close as f64 / fc.cells.len().max(1) as f64;
        on_lane.push(frac);
        len_ratio.push(fc.cells.len() as f64 / actual_set.len().max(1) as f64);
        println!(
            "  {} -> {} [{seg}] ({cells} key cells): forecast {} cells, {:.0}% on/adjacent to the actual track",
            WORLD_PORTS[*o as usize].name,
            WORLD_PORTS[*d as usize].name,
            fc.cells.len(),
            frac * 100.0
        );
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!();
    println!("replayed voyages on known routes: {attempted}");
    println!(
        "forecasts produced:               {forecast_ok} ({:.0}%)",
        100.0 * forecast_ok as f64 / attempted.max(1) as f64
    );
    println!(
        "forecast cells on/adjacent to the actual track: {:.0}% (mean)",
        100.0 * avg(&on_lane)
    );
    println!(
        "forecast/actual distinct-cell length ratio:     {:.2}",
        avg(&len_ratio)
    );
    println!();
    let ok = forecast_ok * 2 >= attempted.max(1) && avg(&on_lane) > 0.5;
    println!(
        "[{}] A* over the inventory's observed transitions reconstructs the \
         historical lane for known routes (the paper's Figure 2f graph made \
         operational)",
        if ok { "ok" } else { "MISS" }
    );
}
