//! Regenerates **Figure 6** — cells whose most frequent destination in the
//! year was Singapore, Shanghai or Rotterdam. Emits the coloured-cell CSV
//! and checks the headline property: each hub's cells trace the lanes that
//! feed it.

use pol_bench::{banner, build_inventory, experiment_scenario, port_id, write_csv, TRAIN_SEED};
use pol_core::PipelineConfig;
use pol_fleetsim::WORLD_PORTS;
use pol_geo::haversine_km;
use pol_hexgrid::cell_center;

fn main() {
    banner(
        "Figure 6 — cells whose top destination is Singapore / Shanghai / Rotterdam",
        "paper Figure 6",
    );
    let (_, out) = build_inventory(&experiment_scenario(TRAIN_SEED), &PipelineConfig::default());
    let inv = &out.inventory;

    let hubs = [
        ("SGSIN", "singapore"),
        ("CNSHA", "shanghai"),
        ("NLRTM", "rotterdam"),
    ];
    let mut rows = Vec::new();
    println!();
    for (locode, label) in hubs {
        let pid = port_id(locode);
        let cells = inv.cells_with_top_destination(pid, None);
        let port_pos = WORLD_PORTS[pid as usize].pos();
        // Sanity: cells pointing at the hub should, on average, be nearer
        // to it than an arbitrary inventory cell is.
        let mean_d: f64 = cells
            .iter()
            .map(|c| haversine_km(cell_center(*c), port_pos))
            .sum::<f64>()
            / cells.len().max(1) as f64;
        println!(
            "{:<10} {:>7} cells with it as top destination; mean distance to port {:>7.0} km",
            label,
            cells.len(),
            mean_d
        );
        for c in &cells {
            let p = cell_center(*c);
            rows.push(format!("{},{:.5},{:.5},{}", c, p.lat(), p.lon(), label));
        }
    }
    rows.sort();
    let path = write_csv(
        "figure6_top_destinations.csv",
        "cell,lat,lon,destination",
        &rows,
    );
    println!();
    println!("total coloured cells: {}", rows.len());
    println!("wrote {}", path.display());
    println!();
    println!(
        "Paper: the three hubs' cells are sparse but clearly trace the global \
         routes toward each port (dark orange / purple / green). The CSV here \
         renders the same picture at this run's scale."
    );
}
