//! Regenerates **Table 1** — "Data Used for Methodology": the three input
//! datasets (commercial positional reports, vessel static information,
//! port information) with row counts and serialized sizes, next to the
//! paper's full-scale figures.

use pol_bench::{banner, experiment_scenario, TRAIN_SEED};
use pol_fleetsim::scenario::generate;
use pol_fleetsim::WORLD_PORTS;

fn human(bytes: usize) -> String {
    if bytes >= 1 << 30 {
        format!("{:.1} GB", bytes as f64 / (1u64 << 30) as f64)
    } else if bytes >= 1 << 20 {
        format!("{:.1} MB", bytes as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1} kB", bytes as f64 / (1 << 10) as f64)
    }
}

fn main() {
    banner("Table 1 — Data Used for Methodology", "paper §3.1, Table 1");
    let cfg = experiment_scenario(TRAIN_SEED);
    let ds = generate(&cfg);

    // Serialized size of the positional archive (the CSV bulk format).
    let mut pos_bytes = 0usize;
    let mut rows = 0usize;
    for part in &ds.positions {
        for r in part {
            pos_bytes += pol_ais::csvio::position_to_row(r).len() + 1;
            rows += 1;
        }
    }
    let static_bytes: usize = ds
        .statics
        .iter()
        .map(|s| 40 + s.name.len()) // mmsi,imo,name,type,grt row estimate
        .sum();
    let port_bytes: usize = WORLD_PORTS.iter().map(|p| 40 + p.name.len()).sum();

    println!();
    println!("{:<42} {:>14} {:>10}", "Description", "Rows", "Size");
    println!(
        "{:<42} {:>14} {:>10}",
        "Commercial fleet positional reports",
        rows,
        human(pos_bytes)
    );
    println!(
        "{:<42} {:>14} {:>10}",
        "Vessel Static information",
        ds.statics.len(),
        human(static_bytes)
    );
    println!(
        "{:<42} {:>14} {:>10}",
        "Port Information",
        WORLD_PORTS.len(),
        human(port_bytes)
    );
    println!();
    println!("Paper (full scale): positional 2.7 B rows / 60 GB; statics 60 k; ports 20 k.");
    let scale = 2.7e9 / rows as f64;
    println!(
        "Scale factor of this run: 1:{scale:.0} positional rows \
         ({} vessels over {} days, interval scale {}).",
        cfg.n_vessels, cfg.duration_days, cfg.emission.interval_scale
    );
    println!(
        "Bytes/row here: {:.0} (paper: {:.0}) — same order; the archive is the same shape.",
        pos_bytes as f64 / rows as f64,
        60e9 / 2.7e9
    );
}
