//! Regenerates **Figure 5** — global average actual-time-to-destination
//! (ATA) per cell at resolution 6: the layer behind the paper's ETA
//! use case (§4.1.2). Cells near destination ports must show small ATA,
//! mid-ocean cells large ATA.

use pol_bench::{banner, build_inventory, experiment_scenario, hours, write_csv, TRAIN_SEED};
use pol_core::features::GroupKey;
use pol_core::PipelineConfig;
use pol_fleetsim::WORLD_PORTS;
use pol_geo::haversine_km;
use pol_hexgrid::cell_center;

fn main() {
    banner(
        "Figure 5 — global mean time-to-destination per cell",
        "paper Figure 5",
    );
    let (_, out) = build_inventory(&experiment_scenario(TRAIN_SEED), &PipelineConfig::default());
    let inv = &out.inventory;

    let mut rows = Vec::new();
    let mut near_port = Vec::new(); // mean ATA hours for cells < 50 km from any port
    let mut open_sea = Vec::new(); // > 500 km from every port
    for (key, stats) in inv.iter() {
        let GroupKey::Cell(cell) = key else { continue };
        let Some(mean_ata) = stats.ata.mean() else {
            continue;
        };
        let c = cell_center(*cell);
        rows.push(format!(
            "{},{:.5},{:.5},{:.2},{}",
            cell,
            c.lat(),
            c.lon(),
            hours(mean_ata),
            stats.ata.count()
        ));
        let d_port = WORLD_PORTS
            .iter()
            .map(|p| haversine_km(c, p.pos()))
            .fold(f64::INFINITY, f64::min);
        if d_port < 50.0 {
            near_port.push(hours(mean_ata));
        } else if d_port > 500.0 {
            open_sea.push(hours(mean_ata));
        }
    }
    rows.sort();
    let p = write_csv(
        "figure5_ata.csv",
        "cell,lat,lon,mean_ata_hours,samples",
        &rows,
    );

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!();
    println!("cells with ATA statistics: {}", rows.len());
    println!(
        "mean ATA within 50 km of a port:  {:>7.1} h over {} cells",
        avg(&near_port),
        near_port.len()
    );
    println!(
        "mean ATA > 500 km from any port:  {:>7.1} h over {} cells",
        avg(&open_sea),
        open_sea.len()
    );
    println!();
    let ok = !near_port.is_empty() && !open_sea.is_empty() && avg(&near_port) < avg(&open_sea);
    println!(
        "[{}] the Figure-5 gradient: time-to-destination shrinks toward ports",
        if ok { "ok" } else { "MISS" }
    );
    println!("wrote {}", p.display());
}
