//! Quantifies the motivation from the authors' prior work [20] (cited in
//! §2): on density-skewed global AIS data, density-based clustering is
//! acutely sensitive to its ε parameter — no single value serves both a
//! dense port approach and a sparse ocean lane — while the grid inventory
//! has no such parameter: its "resolution" trades only granularity, never
//! correctness.

use pol_baselines::{dbscan, extract_clusters, optics, DbscanParams, Label, OpticsParams};
use pol_bench::{banner, quick_scenario, TRAIN_SEED};
use pol_fleetsim::scenario::generate;
use pol_geo::LatLon;
use pol_hexgrid::{cell_at, Resolution};

fn main() {
    banner(
        "ε-sensitivity of density clustering vs the grid (the [20] argument)",
        "paper §2 / Spiliopoulos et al. 2017 [20]",
    );
    let ds = generate(&quick_scenario(TRAIN_SEED));
    let points: Vec<LatLon> = ds
        .positions
        .iter()
        .flatten()
        .take(30_000)
        .map(|r| r.pos)
        .collect();

    // Split the world into "dense" (near any port, < 50 km) and "sparse"
    // (open sea) points to measure who survives clustering at each ε.
    let near_port: Vec<bool> = points
        .iter()
        .map(|p| {
            pol_fleetsim::WORLD_PORTS
                .iter()
                .any(|port| pol_geo::haversine_km(*p, port.pos()) < 50.0)
        })
        .collect();
    let dense_n = near_port.iter().filter(|x| **x).count();
    let sparse_n = points.len() - dense_n;
    println!();
    println!(
        "{} points: {} near ports (dense), {} open sea (sparse)",
        points.len(),
        dense_n,
        sparse_n
    );

    println!();
    println!(
        "{:>10} {:>10} {:>16} {:>16}",
        "eps (km)", "clusters", "dense clustered", "sparse clustered"
    );
    let mut rows = Vec::new();
    for eps in [1.0, 3.0, 10.0, 30.0, 100.0] {
        let (labels, k) = dbscan(
            &points,
            DbscanParams {
                eps_km: eps,
                min_pts: 5,
            },
        );
        let clustered = |want_dense: bool| -> f64 {
            let total = if want_dense { dense_n } else { sparse_n };
            let got = labels
                .iter()
                .zip(&near_port)
                .filter(|(l, d)| **d == want_dense && !matches!(l, Label::Noise))
                .count();
            100.0 * got as f64 / total.max(1) as f64
        };
        let (dc, sc) = (clustered(true), clustered(false));
        println!("{eps:>10} {k:>10} {dc:>15.1}% {sc:>15.1}%");
        rows.push((eps, dc, sc, k));
    }

    // The skew claim, quantified: the output has no stable plateau — the
    // cluster count collapses by orders of magnitude across reasonable ε,
    // so tight ε fragments the lanes into noise while loose ε fuses all
    // structure into a handful of mega-clusters.
    println!();
    let counts: Vec<u32> = rows.iter().map(|r| r.3).collect();
    let max_k = *counts.iter().max().expect("rows");
    let min_k = *counts.iter().filter(|k| **k > 0).min().expect("rows");
    let sensitive = max_k as f64 / min_k.max(1) as f64 > 20.0;
    println!(
        "[{}] acute eps-sensitivity: cluster count swings {}x across the sweep \
         ({max_k} clusters at tight eps -> {min_k} mega-clusters at loose eps); \
         every choice either fragments the sparse lanes or fuses the route \
         structure away — the [20] finding",
        if sensitive { "ok" } else { "MISS" },
        max_k / min_k.max(1)
    );

    // OPTICS mitigates by deferring the choice, but the extraction step
    // still needs the same decision:
    let order = optics(
        &points,
        OpticsParams {
            max_eps_km: 100.0,
            min_pts: 5,
        },
    );
    let (tight, kt) = extract_clusters(&order, points.len(), 3.0);
    let (loose, kl) = extract_clusters(&order, points.len(), 60.0);
    let noise = |ls: &[Label]| ls.iter().filter(|l| matches!(l, Label::Noise)).count();
    println!();
    println!(
        "OPTICS (one run, two extractions): eps'=3 km -> {kt} clusters, {} noise; \
         eps'=60 km -> {kl} clusters, {} noise",
        noise(&tight),
        noise(&loose)
    );

    // The grid, by contrast: every point lands in exactly one cell at any
    // resolution; "sensitivity" is only granularity.
    println!();
    println!("grid inventory at the same points (no density parameter):");
    for r in [5u8, 6, 7] {
        let res = Resolution::new(r).unwrap();
        let cells: std::collections::HashSet<_> = points.iter().map(|p| cell_at(*p, res)).collect();
        println!(
            "  res {r}: {:>6} cells, 100% of points summarised (by construction)",
            cells.len()
        );
    }
}
