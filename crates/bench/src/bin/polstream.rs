//! `polstream` — the streaming-ingestion gate: replays a fleetsim
//! scenario as one globally timestamp-ordered wire (vessel-interleaved,
//! dropouts and out-of-order corrupt duplicates included), feeds it
//! through `pol-stream`'s online state machines with periodic delta
//! publication, and refuses to report a single number unless the closed
//! streamed inventory is **byte-identical** to the batch build over the
//! same records.
//!
//! ```text
//! polstream [--vessels 150] [--days 14] [--seed 42] [--threads N]
//!           [--window-days 2] [--min-rps X]
//!           [--out figures/BENCH_stream.json]
//! ```
//!
//! The headline metric is sustained ingest throughput (records pushed
//! per wall second, delta cuts and close included). `--min-rps X` exits
//! non-zero below the floor — that is the CI gate. Results land in
//! `BENCH_stream.json` next to the identity verdict and the published
//! delta chain's lineage, which is verified end to end (`POLMAN1`
//! manifest, per-file length + CRC, full decode + merge) before being
//! reported.

use pol_bench::port_sites;
use pol_core::codec::{self, columnar, manifest};
use pol_core::{run_fused, PipelineConfig};
use pol_engine::Engine;
use pol_fleetsim::emit::EmissionConfig;
use pol_fleetsim::scenario::{generate, ScenarioConfig};
use pol_fleetsim::stream::interleave;
use pol_stream::{DeltaPublisher, StreamConfig, StreamEngine};
use std::io::Write;
use std::process::ExitCode;
use std::time::Instant;

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_or<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    parse_flag(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: polstream [--vessels N] [--days D] [--seed S] [--threads N] \
             [--window-days W] [--min-rps X] [--delta-dir DIR] [--out FILE]"
        );
        return ExitCode::from(2);
    }
    let vessels: usize = parse_or(&args, "--vessels", 150);
    let days: u32 = parse_or(&args, "--days", 14);
    let seed: u64 = parse_or(&args, "--seed", 42);
    let threads: usize = parse_or(&args, "--threads", 0);
    let window_days: i64 = parse_or(&args, "--window-days", 2).max(1);
    let min_rps: Option<f64> = parse_flag(&args, "--min-rps").and_then(|v| v.parse().ok());
    let out_path = parse_flag(&args, "--out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| pol_bench::figures_dir().join("BENCH_stream.json"));

    let scenario = ScenarioConfig {
        seed,
        n_vessels: vessels,
        duration_days: days,
        emission: EmissionConfig {
            interval_scale: 10.0,
            ..EmissionConfig::default()
        },
        ..ScenarioConfig::default()
    };
    eprintln!("simulating {vessels} vessels over {days} days (seed {seed})...");
    let ds = generate(&scenario);
    let total_reports = ds.total_reports();
    let cfg = PipelineConfig::default();
    let ports = port_sites(cfg.port_radius_km);
    let engine = if threads == 0 {
        Engine::with_available_parallelism()
    } else {
        Engine::new(threads)
    };

    // The oracle: the fused batch build over the identical record set.
    eprintln!("batch oracle: run_fused over {total_reports} reports...");
    let t = Instant::now();
    let batch = match run_fused(&engine, ds.positions.clone(), &ds.statics, &ports, &cfg) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("error: batch oracle failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let batch_secs = t.elapsed().as_secs_f64();
    let batch_bytes = codec::to_bytes(&batch.inventory);

    // The streamed run: one interleaved wire, watermark-driven release,
    // a delta snapshot published per event-time window. With
    // `--delta-dir` the published chain is kept for downstream use
    // (serving it, `polinv verify`); otherwise it lands in a temp
    // directory that is cleaned up on success.
    let keep_deltas = parse_flag(&args, "--delta-dir").map(std::path::PathBuf::from);
    let delta_dir = keep_deltas.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("polstream-deltas-{}", std::process::id()))
    });
    std::fs::remove_dir_all(&delta_dir).ok();
    if let Err(e) = std::fs::create_dir_all(&delta_dir) {
        eprintln!("error: cannot create {}: {e}", delta_dir.display());
        return ExitCode::FAILURE;
    }
    let mut publisher = DeltaPublisher::create(&delta_dir);
    let window_secs = window_days * 86_400;
    let mut next_cut = ds.config.start + window_secs;
    let mut published_records = 0u64;

    eprintln!("streaming {total_reports} interleaved reports (delta window {window_days} d)...");
    let t = Instant::now();
    let mut se = StreamEngine::new(&ds.statics, &ports, StreamConfig::default());
    for r in interleave(ds.positions) {
        se.push(r);
        if se.watermark() >= next_cut {
            let delta = match se.take_window_delta(&engine) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("error: delta window fold failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            published_records += delta.total_records();
            if let Err(e) = publisher.publish(&delta) {
                eprintln!("error: delta publication failed: {e}");
                return ExitCode::FAILURE;
            }
            next_cut += window_secs;
        }
    }
    let out = match se.close(&engine) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("error: stream close failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stream_secs = t.elapsed().as_secs_f64();
    let rps = out.counters.ingested as f64 / stream_secs.max(1e-9);

    // The headline invariant, gated before any number is reported: the
    // streamed inventory must be byte-identical to the batch build, in
    // both snapshot formats, with nothing late-dropped on the way.
    let streamed_bytes = codec::to_bytes(&out.inventory);
    let identical = batch_bytes == streamed_bytes
        && columnar::to_bytes(&batch.inventory) == columnar::to_bytes(&out.inventory);
    if out.counters.late_dropped != 0 {
        eprintln!(
            "FAILED: {} records fell behind the reorder bound — the stream saw less data than the batch",
            out.counters.late_dropped
        );
        return ExitCode::FAILURE;
    }
    if !identical {
        eprintln!(
            "FAILED: streamed inventory diverged from the batch build \
             ({} vs {} bytes) — refusing to report throughput for a wrong answer",
            streamed_bytes.len(),
            batch_bytes.len()
        );
        return ExitCode::FAILURE;
    }

    // The published chain must verify end to end and account exactly for
    // every trip record that was final at the last cut.
    let chain = match manifest::verify_chain(publisher.manifest_path()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: published delta chain failed verification: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (merged, info) = match manifest::load_chain(publisher.manifest_path()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: published delta chain failed to load: {e}");
            return ExitCode::FAILURE;
        }
    };
    if merged.total_records() != published_records {
        eprintln!(
            "FAILED: chain replays {} records but {published_records} were published",
            merged.total_records()
        );
        return ExitCode::FAILURE;
    }

    let c = out.counters;
    println!(
        "stream ingest: byte-identical to batch build ({} bytes)",
        streamed_bytes.len()
    );
    println!(
        "  ingested          {:>10}  ({:.0} records/s sustained, {:.2} s wall)",
        c.ingested, rps, stream_secs
    );
    println!(
        "  batch oracle      {:>10}  ({:.0} records/s, {:.2} s wall)",
        c.ingested,
        c.ingested as f64 / batch_secs.max(1e-9),
        batch_secs
    );
    println!("  out of range      {:>10}", c.out_of_range);
    println!("  non-commercial    {:>10}", c.non_commercial);
    println!("  released          {:>10}", c.released);
    println!("  late dropped      {:>10}", c.late_dropped);
    println!("  trips finalized   {:>10}", c.trips_finalized);
    println!("  trip records      {:>10}", c.trip_points);
    println!(
        "  delta chain       generation {} over {} files, {} records published",
        chain.generation, info.chain_len, published_records
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"pol-stream live ingest vs batch build\",\n");
    json.push_str(&format!("  \"vessels\": {vessels},\n"));
    json.push_str(&format!("  \"days\": {days},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"threads\": {},\n", engine.threads()));
    json.push_str(&format!("  \"byte_identical\": {identical},\n"));
    json.push_str(&format!("  \"records\": {},\n", c.ingested));
    json.push_str(&format!("  \"stream_wall_secs\": {stream_secs:.4},\n"));
    json.push_str(&format!("  \"stream_records_per_sec\": {rps:.1},\n"));
    json.push_str(&format!("  \"batch_wall_secs\": {batch_secs:.4},\n"));
    json.push_str(&format!(
        "  \"batch_records_per_sec\": {:.1},\n",
        c.ingested as f64 / batch_secs.max(1e-9)
    ));
    json.push_str(&format!("  \"late_dropped\": {},\n", c.late_dropped));
    json.push_str(&format!("  \"trips_finalized\": {},\n", c.trips_finalized));
    json.push_str(&format!("  \"trip_records\": {},\n", c.trip_points));
    json.push_str(&format!("  \"delta_window_days\": {window_days},\n"));
    json.push_str(&format!("  \"delta_generation\": {},\n", chain.generation));
    json.push_str(&format!("  \"delta_chain_len\": {},\n", info.chain_len));
    json.push_str(&format!(
        "  \"delta_published_records\": {published_records}\n"
    ));
    json.push_str("}\n");
    let write = std::fs::File::create(&out_path)
        .and_then(|mut f| f.write_all(json.as_bytes()).and_then(|()| f.flush()));
    if let Err(e) = write {
        eprintln!("error: cannot write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out_path.display());
    if keep_deltas.is_some() {
        println!("kept delta chain: {}", publisher.manifest_path().display());
    } else {
        std::fs::remove_dir_all(&delta_dir).ok();
    }

    if let Some(min) = min_rps {
        if rps < min {
            eprintln!("FAILED --min-rps gate: sustained ingest {rps:.0} < {min:.0} records/s");
            return ExitCode::FAILURE;
        }
        println!("--min-rps gate passed: sustained ingest {rps:.0} >= {min:.0} records/s");
    }
    ExitCode::SUCCESS
}
