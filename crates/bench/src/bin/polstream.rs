//! `polstream` — the streaming-ingestion gate: replays a fleetsim
//! scenario as one globally timestamp-ordered wire (vessel-interleaved,
//! dropouts and out-of-order corrupt duplicates included), feeds it
//! through `pol-stream`'s online state machines with periodic delta
//! publication, and refuses to report a single number unless the closed
//! streamed inventory is **byte-identical** to the batch build over the
//! same records.
//!
//! ```text
//! polstream [--vessels 150] [--days 14] [--seed 42] [--threads N]
//!           [--window-days 2] [--min-rps X]
//!           [--wal-dir DIR] [--checkpoint-every N] [--kill-after N]
//!           [--recover] [--max-recovery-secs X]
//!           [--out figures/BENCH_stream.json]
//! ```
//!
//! The headline metric is sustained ingest throughput (records pushed
//! per wall second, delta cuts and close included). `--min-rps X` exits
//! non-zero below the floor — that is the CI gate. Results land in
//! `BENCH_stream.json` next to the identity verdict and the published
//! delta chain's lineage, which is verified end to end (`POLMAN1`
//! manifest, per-file length + CRC, full decode + merge) before being
//! reported.
//!
//! **Crash safety.** With `--wal-dir DIR` every wire record is
//! journaled (POLWAL1) before the engine applies it, with a POLCKP1
//! checkpoint every `--checkpoint-every` records; deltas are published
//! into the same directory unless `--delta-dir` overrides.
//! `--kill-after N` aborts the process (`SIGABRT`, no cleanup) after
//! pushing N records — the chaos half of the recovery gate. A later
//! run with `--recover` restores the checkpoint, replays the journal
//! suffix, reconciles the published chain exactly-once, resumes the
//! wire where the durable journal ends, and then holds the recovered
//! run to a *stricter* gate: the closed inventory must match the batch
//! build byte for byte **and** every chain file must match an
//! uninterrupted in-process streamed oracle byte for byte.
//! `--max-recovery-secs X` additionally bounds the restore+replay
//! latency, which is reported as `recovery_secs` in the JSON.

use pol_bench::port_sites;
use pol_core::codec::{self, columnar, manifest};
use pol_core::{run_fused, PipelineConfig};
use pol_engine::Engine;
use pol_fleetsim::emit::EmissionConfig;
use pol_fleetsim::scenario::{generate, ScenarioConfig};
use pol_fleetsim::stream::interleave;
use pol_stream::{
    recover, DeltaPublisher, JournaledEngine, StreamConfig, StreamEngine, StreamOutput, WalConfig,
    WindowSpec,
};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_or<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    parse_flag(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One `progress:` line — machine-greppable ingestion vitals. The CI
/// stream stage asserts `late_dropped=0` on the final one.
fn progress(ingested: u64, buffered: usize, late_dropped: u64, ckpt_age: Option<u64>) {
    let age = match ckpt_age {
        Some(a) => a.to_string(),
        None => "n/a".to_string(),
    };
    println!(
        "progress: ingested={ingested} buffered={buffered} late_dropped={late_dropped} \
         ckpt_age_records={age}"
    );
}

/// Reads every chain file named by the manifest in `dir`, in
/// generation order.
fn chain_file_bytes(dir: &Path) -> std::io::Result<Vec<(String, Vec<u8>)>> {
    let man = manifest::load(&dir.join(pol_stream::MANIFEST_NAME))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    man.entries
        .iter()
        .map(|e| Ok((e.name.clone(), std::fs::read(dir.join(&e.name))?)))
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: polstream [--vessels N] [--days D] [--seed S] [--threads N] \
             [--window-days W] [--min-rps X] [--delta-dir DIR] [--wal-dir DIR] \
             [--checkpoint-every N] [--kill-after N] [--recover] \
             [--max-recovery-secs X] [--out FILE]"
        );
        return ExitCode::from(2);
    }
    let vessels: usize = parse_or(&args, "--vessels", 150);
    let days: u32 = parse_or(&args, "--days", 14);
    let seed: u64 = parse_or(&args, "--seed", 42);
    let threads: usize = parse_or(&args, "--threads", 0);
    let window_days: i64 = parse_or(&args, "--window-days", 2).max(1);
    let min_rps: Option<f64> = parse_flag(&args, "--min-rps").and_then(|v| v.parse().ok());
    let wal_dir = parse_flag(&args, "--wal-dir").map(PathBuf::from);
    let checkpoint_every: u64 = parse_or(&args, "--checkpoint-every", 20_000);
    let kill_after: Option<u64> = parse_flag(&args, "--kill-after").and_then(|v| v.parse().ok());
    let recover_mode = args.iter().any(|a| a == "--recover");
    let max_recovery_secs: Option<f64> =
        parse_flag(&args, "--max-recovery-secs").and_then(|v| v.parse().ok());
    let progress_every: u64 = parse_or(&args, "--progress-every", 100_000);
    let out_path = parse_flag(&args, "--out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| pol_bench::figures_dir().join("BENCH_stream.json"));
    if (recover_mode || kill_after.is_some()) && wal_dir.is_none() {
        eprintln!("error: --recover and --kill-after require --wal-dir");
        return ExitCode::from(2);
    }

    let scenario = ScenarioConfig {
        seed,
        n_vessels: vessels,
        duration_days: days,
        emission: EmissionConfig {
            interval_scale: 10.0,
            ..EmissionConfig::default()
        },
        ..ScenarioConfig::default()
    };
    eprintln!("simulating {vessels} vessels over {days} days (seed {seed})...");
    let ds = generate(&scenario);
    let total_reports = ds.total_reports();
    let cfg = PipelineConfig::default();
    let ports = port_sites(cfg.port_radius_km);
    let engine = if threads == 0 {
        Engine::with_available_parallelism()
    } else {
        Engine::new(threads)
    };
    let window_secs = window_days * 86_400;
    let spec = WindowSpec {
        start_ts: ds.config.start,
        window_secs,
    };

    // The oracle: the fused batch build over the identical record set.
    // A --kill-after run aborts before any gate, so it skips the oracle.
    let (batch_bytes, batch_columnar, batch_secs) = if kill_after.is_none() {
        eprintln!("batch oracle: run_fused over {total_reports} reports...");
        let t = Instant::now();
        let batch = match run_fused(&engine, ds.positions.clone(), &ds.statics, &ports, &cfg) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("error: batch oracle failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        (
            codec::to_bytes(&batch.inventory),
            columnar::to_bytes(&batch.inventory),
            t.elapsed().as_secs_f64(),
        )
    } else {
        (Vec::new(), Vec::new(), 0.0)
    };

    // Deltas land next to the journal when one exists (so a kill/
    // recover cycle is self-contained in one directory), else in
    // --delta-dir, else in a temp directory cleaned up on success.
    let keep_deltas = parse_flag(&args, "--delta-dir").map(std::path::PathBuf::from);
    let delta_dir = keep_deltas
        .clone()
        .or_else(|| wal_dir.clone())
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("polstream-deltas-{}", std::process::id()))
        });
    if !recover_mode {
        if wal_dir.is_none() {
            std::fs::remove_dir_all(&delta_dir).ok();
        }
        if let Err(e) = std::fs::create_dir_all(&delta_dir) {
            eprintln!("error: cannot create {}: {e}", delta_dir.display());
            return ExitCode::FAILURE;
        }
    }
    let mut published_records = 0u64;
    // The recovery gate replays the whole wire once more, so only that
    // mode pays for a second copy of the positions.
    let oracle_positions = if recover_mode {
        Some(ds.positions.clone())
    } else {
        None
    };

    eprintln!("streaming {total_reports} interleaved reports (delta window {window_days} d)...");
    let t = Instant::now();
    let mut recovery_secs = 0.0f64;
    let mut recovery_report = None;

    // Drive the wire through whichever engine the flags select. Every
    // mode shares one cut schedule (`spec`), so their chains line up
    // byte for byte.
    let out: StreamOutput;
    let final_ckpt_age: Option<u64>;
    match &wal_dir {
        None => {
            let mut se = StreamEngine::new(&ds.statics, &ports, StreamConfig::default());
            let mut publisher = DeltaPublisher::create(&delta_dir);
            let mut cuts = 0u64;
            for r in interleave(ds.positions) {
                se.push(r);
                let c = se.counters();
                if progress_every > 0 && c.ingested % progress_every == 0 {
                    progress(c.ingested, se.buffered(), c.late_dropped, None);
                }
                while se.watermark() >= spec.cut_at(cuts) {
                    let delta = match se.take_window_delta(&engine) {
                        Ok(d) => d,
                        Err(e) => {
                            eprintln!("error: delta window fold failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    published_records += delta.total_records();
                    if let Err(e) = publisher.publish_at(cuts, &delta) {
                        eprintln!("error: delta publication failed: {e}");
                        return ExitCode::FAILURE;
                    }
                    cuts += 1;
                }
            }
            let c = se.counters();
            progress(c.ingested, se.buffered(), c.late_dropped, None);
            out = match se.close(&engine) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("error: stream close failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            final_ckpt_age = None;
        }
        Some(wal) => {
            let (mut je, mut publisher) = if recover_mode {
                let tr = Instant::now();
                let (publisher, swept) = match DeltaPublisher::open(&delta_dir) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("error: cannot reopen delta chain: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let mut publisher = publisher;
                for orphan in &swept.removed {
                    eprintln!("recovery: swept orphaned snapshot {orphan}");
                }
                let recovered = recover(
                    wal,
                    &engine,
                    &ds.statics,
                    &ports,
                    StreamConfig::default(),
                    WalConfig::default(),
                    checkpoint_every,
                    Some((&mut publisher, spec)),
                );
                let (je, report) = match recovered {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("error: recovery failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                recovery_secs = tr.elapsed().as_secs_f64();
                eprintln!(
                    "recovered in {recovery_secs:.3} s: checkpoint_found={} \
                     wal_seq={} batches_replayed={} records_replayed={} torn_bytes={} \
                     deltas_already_durable={} deltas_published={}",
                    report.checkpoint_found,
                    report.checkpoint_wal_seq,
                    report.batches_replayed,
                    report.records_replayed,
                    report.torn_bytes,
                    report.deltas_already_durable,
                    report.deltas_published,
                );
                recovery_report = Some(report);
                (je, publisher)
            } else {
                let se = StreamEngine::new(&ds.statics, &ports, StreamConfig::default());
                let je = match JournaledEngine::create(
                    wal,
                    se,
                    WalConfig::default(),
                    checkpoint_every,
                ) {
                    Ok(je) => je,
                    Err(e) => {
                        eprintln!("error: cannot create journal in {}: {e}", wal.display());
                        return ExitCode::FAILURE;
                    }
                };
                (je, DeltaPublisher::create(&delta_dir))
            };

            // Resume the wire where the durable journal ends (index 0 on
            // a fresh run): no duplicate, no gap.
            let skip = usize::try_from(je.counters().ingested).unwrap_or(usize::MAX);
            let mut pushed_here = 0u64;
            for r in interleave(ds.positions).skip(skip) {
                if let Err(e) = je.push(r) {
                    eprintln!("error: journaled push failed: {e}");
                    return ExitCode::FAILURE;
                }
                pushed_here += 1;
                let c = je.counters();
                if progress_every > 0 && c.ingested % progress_every == 0 {
                    progress(
                        c.ingested,
                        je.engine().buffered(),
                        c.late_dropped,
                        Some(je.records_since_checkpoint()),
                    );
                }
                if kill_after == Some(pushed_here) {
                    let c = je.counters();
                    eprintln!(
                        "--kill-after {pushed_here}: aborting with {} records journaled, \
                         {} window cuts published",
                        c.ingested,
                        je.window_cuts()
                    );
                    std::io::stderr().flush().ok();
                    std::io::stdout().flush().ok();
                    // A real kill: no seal, no close, no Drop handlers.
                    std::process::abort();
                }
                while je.watermark() >= spec.cut_at(je.window_cuts()) {
                    let gen = je.window_cuts();
                    let delta = match je.take_window_delta(&engine) {
                        Ok(d) => d,
                        Err(e) => {
                            eprintln!("error: delta window fold failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    published_records += delta.total_records();
                    if let Err(e) = publisher.publish_at(gen, &delta) {
                        eprintln!("error: delta publication failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let c = je.counters();
            progress(
                c.ingested,
                je.engine().buffered(),
                c.late_dropped,
                Some(je.records_since_checkpoint()),
            );
            final_ckpt_age = Some(je.records_since_checkpoint());
            out = match je.close(&engine) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("error: journaled stream close failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
        }
    }
    let stream_secs = t.elapsed().as_secs_f64();
    let rps = out.counters.ingested as f64 / stream_secs.max(1e-9);
    let _ = final_ckpt_age;

    // The headline invariant, gated before any number is reported: the
    // streamed inventory must be byte-identical to the batch build, in
    // both snapshot formats, with nothing late-dropped on the way.
    let streamed_bytes = codec::to_bytes(&out.inventory);
    let identical =
        batch_bytes == streamed_bytes && batch_columnar == columnar::to_bytes(&out.inventory);
    if out.counters.late_dropped != 0 {
        eprintln!(
            "FAILED: {} records fell behind the reorder bound — the stream saw less data than the batch",
            out.counters.late_dropped
        );
        return ExitCode::FAILURE;
    }
    if !identical {
        eprintln!(
            "FAILED: streamed inventory diverged from the batch build \
             ({} vs {} bytes) — refusing to report throughput for a wrong answer",
            streamed_bytes.len(),
            batch_bytes.len()
        );
        return ExitCode::FAILURE;
    }

    // The published chain must verify end to end and account exactly for
    // every trip record that was final at the last cut.
    let manifest_path = delta_dir.join(pol_stream::MANIFEST_NAME);
    let chain = match manifest::verify_chain(&manifest_path) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: published delta chain failed verification: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (gen, file) in chain.files.iter().enumerate() {
        if file.generation != gen as u64 {
            eprintln!(
                "FAILED: chain generations not contiguous: file {} holds generation {}",
                gen, file.generation
            );
            return ExitCode::FAILURE;
        }
    }
    let (merged, info) = match manifest::load_chain(&manifest_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: published delta chain failed to load: {e}");
            return ExitCode::FAILURE;
        }
    };
    if recover_mode {
        // The recovered run cannot count records the pre-crash process
        // published, so the exactly-once gate is stricter instead: the
        // chain on disk must be byte-identical — file for file — to an
        // uninterrupted in-process streamed run over the same wire.
        eprintln!("recovery gate: replaying an uninterrupted in-process oracle chain...");
        let oracle_dir =
            std::env::temp_dir().join(format!("polstream-oracle-{}", std::process::id()));
        std::fs::remove_dir_all(&oracle_dir).ok();
        if let Err(e) = std::fs::create_dir_all(&oracle_dir) {
            eprintln!("error: cannot create {}: {e}", oracle_dir.display());
            return ExitCode::FAILURE;
        }
        let oracle_wire = match oracle_positions {
            Some(p) => p,
            None => {
                eprintln!("error: oracle wire missing in recover mode");
                return ExitCode::FAILURE;
            }
        };
        let mut se = StreamEngine::new(&ds.statics, &ports, StreamConfig::default());
        let mut oracle_publisher = DeltaPublisher::create(&oracle_dir);
        let mut cuts = 0u64;
        for r in interleave(oracle_wire) {
            se.push(r);
            while se.watermark() >= spec.cut_at(cuts) {
                let delta = match se.take_window_delta(&engine) {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("error: oracle window fold failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if let Err(e) = oracle_publisher.publish_at(cuts, &delta) {
                    eprintln!("error: oracle publication failed: {e}");
                    return ExitCode::FAILURE;
                }
                cuts += 1;
            }
        }
        let (got, want) = match (chain_file_bytes(&delta_dir), chain_file_bytes(&oracle_dir)) {
            (Ok(g), Ok(w)) => (g, w),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("error: cannot compare chains: {e}");
                return ExitCode::FAILURE;
            }
        };
        std::fs::remove_dir_all(&oracle_dir).ok();
        if got != want {
            eprintln!(
                "FAILED: recovered chain diverged from the uninterrupted oracle \
                 ({} vs {} files) — a generation was duplicated, skipped, or rewritten",
                got.len(),
                want.len()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "recovery gate passed: {} chain files byte-identical to the uninterrupted oracle",
            got.len()
        );
        published_records = merged.total_records();
    } else if merged.total_records() != published_records {
        eprintln!(
            "FAILED: chain replays {} records but {published_records} were published",
            merged.total_records()
        );
        return ExitCode::FAILURE;
    }
    if let Some(max) = max_recovery_secs {
        if recovery_secs > max {
            eprintln!(
                "FAILED --max-recovery-secs gate: recovery took {recovery_secs:.3} s > {max:.3} s"
            );
            return ExitCode::FAILURE;
        }
        println!("--max-recovery-secs gate passed: {recovery_secs:.3} s <= {max:.3} s");
    }

    let c = out.counters;
    println!(
        "stream ingest: byte-identical to batch build ({} bytes)",
        streamed_bytes.len()
    );
    println!(
        "  ingested          {:>10}  ({:.0} records/s sustained, {:.2} s wall)",
        c.ingested, rps, stream_secs
    );
    println!(
        "  batch oracle      {:>10}  ({:.0} records/s, {:.2} s wall)",
        c.ingested,
        c.ingested as f64 / batch_secs.max(1e-9),
        batch_secs
    );
    println!("  out of range      {:>10}", c.out_of_range);
    println!("  non-commercial    {:>10}", c.non_commercial);
    println!("  released          {:>10}", c.released);
    println!("  late dropped      {:>10}", c.late_dropped);
    println!("  trips finalized   {:>10}", c.trips_finalized);
    println!("  trip records      {:>10}", c.trip_points);
    println!(
        "  delta chain       generation {} over {} files, {} records published",
        chain.generation, info.chain_len, published_records
    );
    if let Some(report) = &recovery_report {
        println!(
            "  recovery          {:.3} s ({} batches / {} records replayed, {} deltas already durable)",
            recovery_secs, report.batches_replayed, report.records_replayed,
            report.deltas_already_durable
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"pol-stream live ingest vs batch build\",\n");
    json.push_str(&format!("  \"vessels\": {vessels},\n"));
    json.push_str(&format!("  \"days\": {days},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"threads\": {},\n", engine.threads()));
    json.push_str(&format!("  \"byte_identical\": {identical},\n"));
    json.push_str(&format!("  \"records\": {},\n", c.ingested));
    json.push_str(&format!("  \"stream_wall_secs\": {stream_secs:.4},\n"));
    json.push_str(&format!("  \"stream_records_per_sec\": {rps:.1},\n"));
    json.push_str(&format!("  \"batch_wall_secs\": {batch_secs:.4},\n"));
    json.push_str(&format!(
        "  \"batch_records_per_sec\": {:.1},\n",
        c.ingested as f64 / batch_secs.max(1e-9)
    ));
    json.push_str(&format!("  \"late_dropped\": {},\n", c.late_dropped));
    json.push_str(&format!("  \"trips_finalized\": {},\n", c.trips_finalized));
    json.push_str(&format!("  \"trip_records\": {},\n", c.trip_points));
    json.push_str(&format!("  \"delta_window_days\": {window_days},\n"));
    json.push_str(&format!("  \"delta_generation\": {},\n", chain.generation));
    json.push_str(&format!("  \"delta_chain_len\": {},\n", info.chain_len));
    json.push_str(&format!(
        "  \"delta_published_records\": {published_records},\n"
    ));
    json.push_str(&format!("  \"wal_enabled\": {},\n", wal_dir.is_some()));
    json.push_str(&format!("  \"recovered\": {recover_mode},\n"));
    json.push_str(&format!("  \"recovery_secs\": {recovery_secs:.4},\n"));
    let (replayed_b, replayed_r) = recovery_report
        .as_ref()
        .map(|r| (r.batches_replayed, r.records_replayed))
        .unwrap_or((0, 0));
    json.push_str(&format!("  \"recovery_batches_replayed\": {replayed_b},\n"));
    json.push_str(&format!("  \"recovery_records_replayed\": {replayed_r}\n"));
    json.push_str("}\n");
    let write = std::fs::File::create(&out_path)
        .and_then(|mut f| f.write_all(json.as_bytes()).and_then(|()| f.flush()));
    if let Err(e) = write {
        eprintln!("error: cannot write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out_path.display());
    if keep_deltas.is_some() || wal_dir.is_some() {
        println!("kept delta chain: {}", manifest_path.display());
    } else {
        std::fs::remove_dir_all(&delta_dir).ok();
    }

    if let Some(min) = min_rps {
        if rps < min {
            eprintln!("FAILED --min-rps gate: sustained ingest {rps:.0} < {min:.0} records/s");
            return ExitCode::FAILURE;
        }
        println!("--min-rps gate passed: sustained ingest {rps:.0} >= {min:.0} records/s");
    }
    ExitCode::SUCCESS
}
