//! Regenerates **Table 4** — "Coverage and Compression results":
//! per-resolution occupied cells, compression (1 − cells/records) and
//! grid utilization, plus the §4 claim that querying the inventory needs
//! > 98 % fewer "hits" than a full scan.
//!
//! Shape expectations vs the paper (absolute numbers scale with the
//! synthetic dataset): compression high at both resolutions and higher at
//! res 6 than res 7; utilization *decreasing* from res 6 to res 7.

use pol_bench::{banner, build_inventory, experiment_scenario, TRAIN_SEED};
use pol_core::PipelineConfig;
use pol_hexgrid::Resolution;

fn main() {
    banner("Table 4 — Coverage and Compression", "paper §4, Table 4");
    let scenario = experiment_scenario(TRAIN_SEED);

    println!();
    println!(
        "{:<14} {:>12} {:>13} {:>15} {:>12}",
        "H3-equiv res", "#Cells", "Compression", "H3 Utilization", "records"
    );
    let mut rows = Vec::new();
    for res in [6u8, 7] {
        let cfg = PipelineConfig::default().with_resolution(Resolution::new(res).unwrap());
        let (_, out) = build_inventory(&scenario, &cfg);
        let cov = out.inventory.coverage();
        println!(
            "{:<14} {:>12} {:>12.2}% {:>14.4}% {:>12}",
            res,
            cov.occupied_cells,
            cov.compression * 100.0,
            cov.utilization * 100.0,
            cov.total_records
        );
        rows.push(cov);
    }
    println!();
    println!("Paper (2.7 B records, full 2022 fleet):");
    println!("  res 6: 7.30 M cells, compression 99.73%, utilization 51.69%");
    println!("  res 7: 42.47 M cells, compression 98.44%, utilization 42.96%");
    println!();
    println!("Shape checks on this run:");
    let (c6, c7) = (rows[0], rows[1]);
    let check = |name: &str, ok: bool| println!("  [{}] {}", if ok { "ok" } else { "MISS" }, name);
    check(
        "compression > 90% at both resolutions (paper: > 98%)",
        c6.compression > 0.90 && c7.compression > 0.90,
    );
    check(
        "res 6 compresses harder than res 7",
        c6.compression > c7.compression,
    );
    check(
        "utilization drops as cells shrink (res7 < res6)",
        c7.utilization < c6.utilization,
    );
    check(
        "finer grid occupies more cells",
        c7.occupied_cells > c6.occupied_cells,
    );
    println!();
    println!(
        "Utilization is far below the paper's 51.69%/42.96% because this run \
         tracks {} vessels for {} days instead of 60 000 vessels for a year — \
         coverage of the global grid grows with fleet-time. Compression, the \
         per-record claim, is scale-robust and reproduces directly.",
        scenario.n_vessels, scenario.duration_days
    );
}
