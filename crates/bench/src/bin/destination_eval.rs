//! Evaluates **§4.1.3a** — streaming destination prediction: feed a
//! held-out voyage's reports to the predictor in order and measure top-1 /
//! top-3 accuracy as the voyage progresses (the paper describes the
//! mechanism; this binary quantifies it).

use pol_apps::DestinationPredictor;
use pol_bench::{
    banner, build_inventory, experiment_scenario, reports_for_voyage, TEST_SEED, TRAIN_SEED,
};
use pol_core::PipelineConfig;
use pol_fleetsim::scenario::generate;

fn main() {
    banner(
        "§4.1.3 — streaming destination prediction",
        "paper §4.1.3, Figure 6",
    );
    let (_, out) = build_inventory(&experiment_scenario(TRAIN_SEED), &PipelineConfig::default());

    let mut test_cfg = experiment_scenario(TEST_SEED);
    test_cfg.n_vessels = 60;
    let test = generate(&test_cfg);

    let checkpoints = [0.25, 0.5, 0.75, 0.9];
    let mut top1 = vec![0u64; checkpoints.len()];
    let mut top3 = vec![0u64; checkpoints.len()];
    let mut total = vec![0u64; checkpoints.len()];

    let mut voyages = 0;
    for v in &test.truth {
        let reports = reports_for_voyage(&test, v);
        if reports.len() < 20 {
            continue;
        }
        voyages += 1;
        let seg = test
            .fleet
            .iter()
            .find(|f| f.mmsi == v.mmsi)
            .map(|f| f.segment);
        let mut predictor = DestinationPredictor::new(&out.inventory, seg);
        let duration = (v.arrival - v.departure) as f64;
        let mut ci = 0;
        for r in &reports {
            predictor.observe(r.pos);
            let progress = (r.timestamp - v.departure) as f64 / duration;
            while ci < checkpoints.len() && progress >= checkpoints[ci] {
                total[ci] += 1;
                let ranked = predictor.top(3);
                if ranked.first().map(|(d, _)| *d) == Some(v.dest.0) {
                    top1[ci] += 1;
                }
                if ranked.iter().any(|(d, _)| *d == v.dest.0) {
                    top3[ci] += 1;
                }
                ci += 1;
            }
        }
    }

    println!();
    println!("evaluated voyages: {voyages}");
    println!(
        "{:<18} {:>10} {:>12} {:>12}",
        "voyage progress", "samples", "top-1 acc", "top-3 acc"
    );
    for (i, c) in checkpoints.iter().enumerate() {
        println!(
            "{:<18} {:>10} {:>11.1}% {:>11.1}%",
            format!("{:.0}%", c * 100.0),
            total[i],
            100.0 * top1[i] as f64 / total[i].max(1) as f64,
            100.0 * top3[i] as f64 / total[i].max(1) as f64
        );
    }
    let improves = top1.last().copied().unwrap_or(0) as f64
        / total.last().copied().unwrap_or(1).max(1) as f64
        > top1[0] as f64 / total[0].max(1) as f64;
    println!();
    println!(
        "random-guess baselines over {} ports: top-1 {:.1}%, top-3 {:.1}%",
        pol_fleetsim::WORLD_PORTS.len(),
        100.0 / pol_fleetsim::WORLD_PORTS.len() as f64,
        300.0 / pol_fleetsim::WORLD_PORTS.len() as f64
    );
    println!(
        "[{}] accuracy grows as the voyage proceeds (the paper's 'keep track of \
         this list as the stream of AIS messages proceeds') and ends well above \
         the random baseline",
        if improves { "ok" } else { "MISS" }
    );
    println!(
        "(the training fleet covers a fraction of the 126×125 port pairs; the \
         paper's year of 60 000 vessels saturates them — accuracy here is \
         bounded by that scale gap, the *shape* is the reproduced claim)"
    );
}
