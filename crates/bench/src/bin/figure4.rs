//! Regenerates **Figure 4** — the Baltic-sea regional views: per-cell trip
//! frequency (top panel), average speed (middle) and average course
//! (bottom) at the finer resolution 7, where the paper's traffic
//! separation schemes become visible as opposed course lanes.

use pol_bench::{banner, build_inventory, experiment_scenario, write_csv, TRAIN_SEED};
use pol_core::features::GroupKey;
use pol_core::PipelineConfig;
use pol_geo::BBox;
use pol_hexgrid::cell_center;

fn main() {
    banner(
        "Figure 4 — Baltic regional patterns (trips / speed / course)",
        "paper Figure 4",
    );
    let (_, out) = build_inventory(&experiment_scenario(TRAIN_SEED), &PipelineConfig::fine());
    let inv = &out.inventory;
    let bbox = BBox::baltic();

    let mut trips = Vec::new();
    let mut speed = Vec::new();
    let mut course = Vec::new();
    for (key, stats) in inv.iter() {
        let GroupKey::Cell(cell) = key else { continue };
        let c = cell_center(*cell);
        if !bbox.contains(c) {
            continue;
        }
        trips.push(format!(
            "{},{:.5},{:.5},{}",
            cell,
            c.lat(),
            c.lon(),
            stats.trips.estimate()
        ));
        if let Some(m) = stats.speed.mean() {
            speed.push(format!("{},{:.5},{:.5},{:.2}", cell, c.lat(), c.lon(), m));
        }
        if let (Some(m), Some(r)) = (stats.course.mean_deg(), stats.course.resultant_length()) {
            course.push(format!(
                "{},{:.5},{:.5},{:.1},{:.3}",
                cell,
                c.lat(),
                c.lon(),
                m,
                r
            ));
        }
    }
    trips.sort();
    speed.sort();
    course.sort();
    let p1 = write_csv("figure4_baltic_trips.csv", "cell,lat,lon,trips", &trips);
    let p2 = write_csv(
        "figure4_baltic_speed.csv",
        "cell,lat,lon,mean_speed_kn",
        &speed,
    );
    let p3 = write_csv(
        "figure4_baltic_course.csv",
        "cell,lat,lon,mean_course_deg,alignment",
        &course,
    );

    println!();
    println!("Baltic cells at res 7: {}", trips.len());
    println!("wrote {}", p1.display());
    println!("wrote {}", p2.display());
    println!("wrote {}", p3.display());

    // The Figure-4 narrative checks: lanes (high trip counts on few cells),
    // loitering near ports (low speeds), opposite-course lanes.
    let mut trip_counts: Vec<u64> = trips
        .iter()
        .map(|r| r.rsplit(',').next().unwrap().parse().unwrap())
        .collect();
    trip_counts.sort_unstable_by(|a, b| b.cmp(a));
    if !trip_counts.is_empty() {
        let total: u64 = trip_counts.iter().sum();
        let top10: u64 = trip_counts.iter().take(trip_counts.len() / 10 + 1).sum();
        println!();
        println!(
            "lane concentration: top 10% of cells carry {:.0}% of trips \
             (the bright routes of the top panel)",
            100.0 * top10 as f64 / total.max(1) as f64
        );
    }
}
