//! `polload` — load generator for the `pol-serve` query server.
//!
//! ```text
//! polload [--addr HOST:PORT] [--threads 8] [--requests 20000]
//!         [--vessels 150] [--days 14] [--seed 42] [--workers 8]
//!         [--store heap|mmap] [--batch N] [--min-rps X]
//!         [--server-core reactor|threaded]
//!         [--out figures/BENCH_serve.json]
//! polload --connections 10000 [--idle-frac 0.95] [--addr HOST:PORT] ...
//! polload --conn-sweep [--threads 8] [--requests 20000] ...
//! polload --chaos [--threads 4] [--requests 2000] [--vessels N] ...
//! ```
//!
//! Without `--addr`, polload builds a res-6 fleetsim inventory in
//! process, saves it as both a POLINV2 and a (migrated) POLINV3
//! snapshot, measures the cold start (load-to-READY) of each format,
//! starts a server over the `--store` backend (`heap` deserializes the
//! POLINV2 file, `mmap` zero-copy-maps the POLINV3 file) on an ephemeral
//! loopback port, drives it, and shuts it down — the self-contained form
//! the CI smoke test runs. With `--addr` it drives an already-running
//! server (`polinv serve`).
//!
//! `--batch N` adds protocol-v3 batch phases (`N` sub-requests per
//! frame); their `rps` counts sub-requests, their latency quantiles are
//! per *frame*. `--min-rps X` exits non-zero unless the gate phase
//! (`route_summary_batch` when batching, else `point_summary`) reached
//! `X` requests per second. Results print alongside a comparison with
//! whatever `--out` file the previous run committed.
//!
//! `--connections N` switches to the open-connection scalability bench:
//! N sockets are held open against the server (`--idle-frac` of them
//! silent, the rest driven in rotation by `--threads` driver threads)
//! and point-summary throughput is measured *while* the readiness table
//! carries all N. Without `--addr` the server runs in a spawned child
//! process (`--serve-only`, an internal mode) so the 10k+ descriptor
//! budget is split across two processes. `--conn-sweep` runs the matrix
//! both server cores x {100, 1k, 10k} connections after the normal
//! endpoint phases and records it under `"open_connections"` in the
//! JSON. With `--connections`, `--min-rps` gates on the connection
//! phase's throughput instead.
//!
//! `--chaos` (needs a build with `--features pol-bench/chaos`) runs the
//! fault-injection self-test instead: failpoints kill connection workers
//! and delay reads while a retrying client fleet checks every answer
//! against a reference inventory. The run fails if chaos ever produced a
//! wrong answer, if the surfaced-error rate exceeded 10%, or if the
//! server did not recover fully once the faults were disarmed.
//!
//! Each endpoint gets its own burst phase over N concurrent connections
//! (one per thread); client-side latency is measured per request and
//! quantiles are exact (sorted), not sketched. Results go to stdout and
//! to `BENCH_serve.json`.

use pol_ais::types::MarketSegment;
use pol_bench::build_inventory;
use pol_core::PipelineConfig;
use pol_fleetsim::emit::EmissionConfig;
use pol_fleetsim::scenario::ScenarioConfig;
use pol_hexgrid::{cell_center, CellIndex, Resolution};
use pol_serve::{Client, ClientError, Server, ServerConfig, ServerCore};
use std::io::Write;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::thread;
use std::time::{Duration, Instant};

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_or<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    parse_flag(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One endpoint phase's aggregate result. `requests` counts
/// sub-requests (`frames * batch`); the latency quantiles are per wire
/// frame, so a batch phase's p50 is the whole-frame round trip.
struct PhaseResult {
    name: &'static str,
    requests: u64,
    batch: usize,
    wall_secs: f64,
    rps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    max_us: f64,
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drives one endpoint with `threads` concurrent connections issuing
/// `per_thread` frames each; returns exact aggregate latency stats.
/// `batch` is the number of sub-requests each frame carries (1 for the
/// plain phases) — it scales the reported request count and rps, while
/// latency stays per frame.
fn run_phase<F>(
    addr: SocketAddr,
    name: &'static str,
    threads: usize,
    per_thread: usize,
    batch: usize,
    f: F,
) -> Result<PhaseResult, ClientError>
where
    F: Fn(&mut Client, usize, usize) -> Result<(), ClientError> + Sync,
{
    let started = Instant::now();
    let f = &f;
    let lats: Vec<Vec<f64>> = thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                s.spawn(move || -> Result<Vec<f64>, ClientError> {
                    let mut client = Client::connect(addr)?;
                    let mut lats = Vec::with_capacity(per_thread);
                    for i in 0..per_thread {
                        let t = Instant::now();
                        f(&mut client, tid, i)?;
                        lats.push(t.elapsed().as_secs_f64() * 1e6);
                    }
                    Ok(lats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load thread panicked"))
            .collect::<Result<Vec<_>, _>>()
    })?;
    let wall_secs = started.elapsed().as_secs_f64();
    let mut all: Vec<f64> = lats.into_iter().flatten().collect();
    all.sort_by(|a, b| a.partial_cmp(b).expect("latency is finite"));
    let requests = (all.len() * batch.max(1)) as u64;
    Ok(PhaseResult {
        name,
        requests,
        batch: batch.max(1),
        wall_secs,
        rps: requests as f64 / wall_secs.max(1e-9),
        p50_us: quantile(&all, 0.50),
        p95_us: quantile(&all, 0.95),
        p99_us: quantile(&all, 0.99),
        max_us: all.last().copied().unwrap_or(0.0),
    })
}

/// Fetches the occupied-cell centres to use as the query-position pool
/// (works against any server, external or in-process).
fn position_pool(addr: SocketAddr) -> Result<Vec<(f64, f64)>, ClientError> {
    let mut client = Client::connect(addr)?;
    let cells = client.bbox_scan(-89.9, -179.9, 89.9, 179.9)?;
    let mut pool: Vec<(f64, f64)> = cells
        .iter()
        .filter_map(|raw| CellIndex::from_raw(*raw).ok())
        .map(|c| {
            let p = cell_center(c);
            (p.lat(), p.lon())
        })
        .collect();
    if pool.is_empty() {
        // Empty inventory: fall back to port positions so every phase
        // still exercises the wire (responses are just all-None).
        pool = pol_fleetsim::WORLD_PORTS
            .iter()
            .map(|p| (p.pos().lat(), p.pos().lon()))
            .collect();
    }
    Ok(pool)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Cold-start (load-to-READY) measurement for both snapshot formats.
struct ColdStart {
    v2_heap_ms: f64,
    v3_mmap_ms: f64,
}

/// One open-connection scalability measurement: point-summary load
/// driven while `connections` sockets (mostly idle) are held open.
struct ConnRow {
    core: &'static str,
    connections: usize,
    idle: usize,
    requests: u64,
    busy: u64,
    wall_secs: f64,
    rps: f64,
    p50_us: f64,
    p99_us: f64,
    peak_open: u64,
    shed_at_loop: u64,
}

fn write_bench_json(
    path: &std::path::Path,
    threads: usize,
    store: &str,
    phases: &[PhaseResult],
    conn_rows: &[ConnRow],
    cold: Option<&ColdStart>,
    top_dest_before_rps: Option<f64>,
) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"pol-serve loopback load\",")?;
    writeln!(f, "  \"threads\": {threads},")?;
    writeln!(f, "  \"store\": \"{}\",", json_escape(store))?;
    // The before/after record for the precomputed top-K destination
    // section: "before" is what the previously committed file measured
    // (the linear-scan cliff when it predates the section).
    if let Some(before) = top_dest_before_rps {
        writeln!(f, "  \"top_destination_cells_before_rps\": {before:.1},")?;
    }
    if let Some(c) = cold {
        writeln!(
            f,
            "  \"cold_start\": {{\"v2_heap_ms\": {:.2}, \"v3_mmap_ms\": {:.2}}},",
            c.v2_heap_ms, c.v3_mmap_ms
        )?;
    }
    if !conn_rows.is_empty() {
        // The scalability matrix: throughput with N sockets held open,
        // per server core. `shed_at_loop` / `peak_open` come from the
        // server's own STATS counters, not client bookkeeping.
        writeln!(f, "  \"open_connections\": [")?;
        for (i, r) in conn_rows.iter().enumerate() {
            let comma = if i + 1 < conn_rows.len() { "," } else { "" };
            writeln!(
                f,
                "    {{\"core\": \"{}\", \"connections\": {}, \"idle\": {}, \
                 \"requests\": {}, \"busy\": {}, \"wall_secs\": {:.4}, \
                 \"rps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
                 \"peak_open\": {}, \"shed_at_loop\": {}}}{comma}",
                r.core,
                r.connections,
                r.idle,
                r.requests,
                r.busy,
                r.wall_secs,
                r.rps,
                r.p50_us,
                r.p99_us,
                r.peak_open,
                r.shed_at_loop
            )?;
        }
        writeln!(f, "  ],")?;
    }
    writeln!(f, "  \"endpoints\": [")?;
    for (i, p) in phases.iter().enumerate() {
        let comma = if i + 1 < phases.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"endpoint\": \"{}\", \"requests\": {}, \"batch\": {}, \
             \"wall_secs\": {:.4}, \"rps\": {:.1}, \"p50_us\": {:.1}, \
             \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {:.1}}}{comma}",
            json_escape(p.name),
            p.requests,
            p.batch,
            p.wall_secs,
            p.rps,
            p.p50_us,
            p.p95_us,
            p.p99_us,
            p.max_us
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    f.flush()
}

/// Parses `--server-core`, defaulting to the reactor.
fn parse_core(args: &[String]) -> Result<(ServerCore, &'static str), String> {
    match parse_flag(args, "--server-core").as_deref() {
        None | Some("reactor") => Ok((ServerCore::Reactor, "reactor")),
        Some("threaded") => Ok((ServerCore::Threaded, "threaded")),
        Some(other) => Err(format!(
            "--server-core must be 'reactor' or 'threaded', got {other}"
        )),
    }
}

/// Internal child mode for the two-process connection bench: serve one
/// snapshot on an ephemeral port, announce it on stdout, hold until
/// stdin closes. The parent (this same binary) spawns it so the
/// 10k-socket runs split their descriptor budget across two processes
/// (the container's fd ceiling could not hold both ends in one).
fn run_serve_only(args: &[String]) -> ExitCode {
    let Some(snap) = parse_flag(args, "--serve-only") else {
        eprintln!("error: --serve-only needs a snapshot path");
        return ExitCode::FAILURE;
    };
    let (core, _) = match parse_core(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = ServerConfig {
        core,
        worker_threads: parse_or(args, "--workers", 8),
        max_pending: parse_or(args, "--max-pending", ServerConfig::default().max_pending),
        ..ServerConfig::default()
    };
    let mut server =
        match Server::start_snapshot(std::path::Path::new(&snap), "127.0.0.1:0", config) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot serve {snap}: {e}");
                return ExitCode::FAILURE;
            }
        };
    println!("listening on {}", server.local_addr());
    std::io::stdout().flush().ok();
    // Parent closing our stdin is the shutdown signal, mirroring
    // `polinv serve`.
    let mut sink = String::new();
    let _ = std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut sink);
    let stats = server.metrics().snapshot();
    server.shutdown();
    eprintln!("{}", stats.render());
    ExitCode::SUCCESS
}

/// A serve-only child process and the address it bound.
struct ServeChild {
    child: std::process::Child,
    addr: SocketAddr,
}

impl ServeChild {
    fn spawn(
        snapshot: &std::path::Path,
        core_label: &str,
        workers: usize,
        max_pending: usize,
    ) -> Result<ServeChild, String> {
        use std::io::BufRead;
        let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        let mut child = std::process::Command::new(exe)
            .arg("--serve-only")
            .arg(snapshot)
            .arg("--server-core")
            .arg(core_label)
            .arg("--workers")
            .arg(workers.to_string())
            .arg("--max-pending")
            .arg(max_pending.to_string())
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn serve child: {e}"))?;
        let Some(stdout) = child.stdout.take() else {
            let _ = child.kill();
            return Err("serve child stdout not captured".into());
        };
        let mut line = String::new();
        if std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .is_err()
            || line.is_empty()
        {
            let _ = child.kill();
            let _ = child.wait();
            return Err("serve child exited before announcing its address".into());
        }
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .and_then(|a| a.parse().ok());
        let Some(addr) = addr else {
            let _ = child.kill();
            let _ = child.wait();
            return Err(format!("serve child announced garbage: {line:?}"));
        };
        Ok(ServeChild { child, addr })
    }

    /// Closes the child's stdin (its drain signal) and reaps it.
    fn stop(mut self) {
        drop(self.child.stdin.take());
        let _ = self.child.wait();
    }
}

/// Holds `connections` sockets open against `addr` — `idle_frac` of
/// them silent, the rest rotated through by `threads` driver threads
/// issuing point-summary queries — and measures throughput while the
/// server's readiness table carries the full set.
fn run_connection_phase(
    addr: SocketAddr,
    core: &'static str,
    connections: usize,
    idle_frac: f64,
    threads: usize,
    requests: usize,
) -> Result<ConnRow, String> {
    use std::sync::atomic::{AtomicU64, Ordering};
    let connections = connections.max(2);
    let idle = ((connections as f64 * idle_frac).round() as usize).min(connections - 1);
    let active = connections - idle;
    let threads = threads.clamp(1, active);
    eprintln!("[{core}] opening {idle} idle + {active} active connections against {addr}...");
    let mut idle_socks = Vec::with_capacity(idle);
    for i in 0..idle {
        match std::net::TcpStream::connect_timeout(&addr, Duration::from_secs(5)) {
            Ok(s) => idle_socks.push(s),
            Err(e) => return Err(format!("[{core}] idle connect {}/{idle}: {e}", i + 1)),
        }
        if (i + 1) % 2500 == 0 {
            eprintln!("[{core}]   {} idle sockets open", i + 1);
        }
    }
    let pool = position_pool(addr).map_err(|e| format!("[{core}] position pool: {e}"))?;
    let pool = &pool;
    let per_thread = (requests / threads).max(1);
    let busy = AtomicU64::new(0);
    let started = Instant::now();
    let lats: Vec<Vec<f64>> = thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let busy = &busy;
                s.spawn(move || -> Result<Vec<f64>, String> {
                    // This driver owns every `threads`-th active socket
                    // and rotates its requests across them so all
                    // `active` sockets stay in play, not just one per
                    // driver.
                    let owned = (active - tid).div_ceil(threads);
                    let mut clients = Vec::with_capacity(owned);
                    for _ in 0..owned {
                        clients.push(
                            Client::connect(addr)
                                .map_err(|e| format!("[{core}] active connect: {e}"))?,
                        );
                    }
                    let mut lats = Vec::with_capacity(per_thread);
                    for i in 0..per_thread {
                        let (lat, lon) = pool[(tid + i * 31) % pool.len()];
                        let slot = i % clients.len();
                        let t = Instant::now();
                        match clients[slot].point_summary(lat, lon) {
                            Ok(_) => lats.push(t.elapsed().as_secs_f64() * 1e6),
                            // Load shedding is an expected answer under
                            // overload: count it, keep the socket.
                            Err(ClientError::ServerBusy) => {
                                busy.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => return Err(format!("[{core}] query failed: {e}")),
                        }
                    }
                    Ok(lats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("connection driver panicked"))
            .collect::<Result<Vec<_>, _>>()
    })?;
    let wall_secs = started.elapsed().as_secs_f64();
    let mut all: Vec<f64> = lats.into_iter().flatten().collect();
    all.sort_by(|a, b| a.partial_cmp(b).expect("latency is finite"));
    // The server's own view: peak table size and loop-level sheds. Read
    // while the idle fleet is still connected so peak_open reflects it.
    let report = Client::connect(addr)
        .and_then(|mut c| c.stats())
        .map_err(|e| format!("[{core}] stats fetch: {e}"))?;
    drop(idle_socks);
    let requests = all.len() as u64;
    Ok(ConnRow {
        core,
        connections,
        idle,
        requests,
        busy: busy.load(Ordering::Relaxed),
        wall_secs,
        rps: requests as f64 / wall_secs.max(1e-9),
        p50_us: quantile(&all, 0.50),
        p99_us: quantile(&all, 0.99),
        peak_open: report.peak_connections,
        shed_at_loop: report.shed_at_loop,
    })
}

fn print_conn_rows(rows: &[ConnRow]) {
    println!(
        "\n{:<9} {:>11} {:>6} {:>9} {:>6} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "core",
        "connections",
        "idle",
        "requests",
        "busy",
        "rps",
        "p50_us",
        "p99_us",
        "peak_open",
        "shed"
    );
    for r in rows {
        println!(
            "{:<9} {:>11} {:>6} {:>9} {:>6} {:>10.0} {:>10.1} {:>10.1} {:>10} {:>8}",
            r.core,
            r.connections,
            r.idle,
            r.requests,
            r.busy,
            r.rps,
            r.p50_us,
            r.p99_us,
            r.peak_open,
            r.shed_at_loop
        );
    }
}

/// Workers a serve child needs: the threaded core parks one worker per
/// connection for the connection's lifetime, so it must be sized for
/// the whole fleet (that cost *is* the thread-per-connection model the
/// sweep measures). The reactor keeps its small fixed pool.
fn child_workers(core: ServerCore, connections: usize, threads: usize, workers: usize) -> usize {
    match core {
        ServerCore::Threaded => connections + threads + 16,
        ServerCore::Reactor => workers,
    }
}

/// Pulls `(endpoint, rps)` pairs out of a previously written
/// `BENCH_serve.json` — a narrow hand-rolled scan (no JSON dependency)
/// that tolerates both the old and new field layouts.
fn parse_baseline_rps(text: &str) -> Vec<(String, f64)> {
    let mut pairs = Vec::new();
    for seg in text.split("\"endpoint\": \"").skip(1) {
        let Some(name_end) = seg.find('"') else {
            continue;
        };
        let name = seg[..name_end].to_string();
        let Some(rps_at) = seg.find("\"rps\": ") else {
            continue;
        };
        let digits: String = seg[rps_at + 7..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        if let Ok(rps) = digits.parse::<f64>() {
            pairs.push((name, rps));
        }
    }
    pairs
}

/// Prints this run's throughput next to the committed baseline file's
/// (the `--out` target as it stood before we overwrote it).
fn print_baseline_comparison(baseline: &[(String, f64)], phases: &[PhaseResult]) {
    if baseline.is_empty() {
        return;
    }
    println!(
        "\nvs committed baseline:\n{:<22} {:>12} {:>12} {:>8}",
        "endpoint", "baseline_rps", "now_rps", "delta"
    );
    for p in phases {
        let Some((_, base)) = baseline.iter().find(|(n, _)| n == p.name) else {
            println!("{:<22} {:>12} {:>12.0} {:>8}", p.name, "-", p.rps, "new");
            continue;
        };
        let delta = if *base > 0.0 {
            format!("{:+.1}%", (p.rps / base - 1.0) * 100.0)
        } else {
            "n/a".to_string()
        };
        println!("{:<22} {:>12.0} {:>12.0} {:>8}", p.name, base, p.rps, delta);
    }
}

/// Builds the scenario the self-contained modes simulate.
fn scenario_from(args: &[String]) -> ScenarioConfig {
    ScenarioConfig {
        seed: parse_or(args, "--seed", 42),
        n_vessels: parse_or(args, "--vessels", 150),
        duration_days: parse_or(args, "--days", 14),
        emission: EmissionConfig {
            interval_scale: 10.0,
            ..EmissionConfig::default()
        },
        ..ScenarioConfig::default()
    }
}

/// The chaos self-test: a fault-injected server must never return a
/// wrong answer, must keep the surfaced-error rate bounded, and must
/// recover fully once the failpoints are disarmed.
fn run_chaos(args: &[String]) -> ExitCode {
    use pol_chaos::{configure, reset, stats, FaultAction, Trigger};
    use pol_core::codec;
    use pol_geo::LatLon;
    use pol_hexgrid::cell_at;
    use pol_serve::{ClientConfig, ProtoError, RetryPolicy};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    if !pol_chaos::compiled_in() {
        eprintln!(
            "error: fault injection is not compiled into this binary;\n\
             rebuild with: cargo run -p pol-bench --features chaos --bin polload -- --chaos"
        );
        return ExitCode::FAILURE;
    }
    if parse_flag(args, "--addr").is_some() {
        eprintln!(
            "error: --chaos drives an in-process server (failpoints are per-process); drop --addr"
        );
        return ExitCode::FAILURE;
    }
    let threads: usize = parse_or(args, "--threads", 4).max(1);
    let requests: usize = parse_or(args, "--requests", 2_000).max(threads);
    let workers: usize = parse_or(args, "--workers", 4);

    let scenario = scenario_from(args);
    let resolution = Resolution::new(6).expect("res 6 valid");
    let cfg = PipelineConfig::default().with_resolution(resolution);
    eprintln!(
        "chaos: building res-6 inventory ({} vessels, {} days, seed {})...",
        scenario.n_vessels, scenario.duration_days, scenario.seed
    );
    let (_, out) = build_inventory(&scenario, &cfg);
    // Reference copy for answer checking (the original moves into the
    // server); a codec round trip is the cheapest faithful clone.
    let reference = codec::from_bytes(&codec::to_bytes(&out.inventory)).expect("codec round trip");

    let server = Server::start(
        out.inventory,
        "127.0.0.1:0",
        ServerConfig {
            worker_threads: workers,
            read_timeout: Duration::from_millis(25),
            drain_timeout: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    let addr = server.local_addr();
    let mut server = server;

    let pool = position_pool(addr).expect("position pool");
    let pool = &pool;
    let expected = |lat: f64, lon: f64| -> Option<Vec<u8>> {
        let pos = LatLon::new(lat, lon).expect("pool positions valid");
        reference
            .summary(cell_at(pos, reference.resolution()))
            .map(|s| {
                let mut buf = Vec::new();
                codec::encode_cell_stats(s, &mut buf);
                buf
            })
    };
    let client_config = |seed: u64| ClientConfig {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Some(Duration::from_secs(2)),
        retry: RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(100),
            deadline: Duration::from_secs(20),
            jitter_seed: seed,
        },
        ..ClientConfig::default()
    };

    // Injected kills are deliberate panics (contained by the worker
    // pool); keep their backtraces out of the run log so real panics
    // stay visible.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("chaos: failpoint"));
        if !injected {
            default_hook(info);
        }
    }));

    // Deterministic fault schedule: every 50th served frame dies mid
    // flight, ~2% of reads stall briefly.
    reset();
    configure(
        "serve.worker.kill",
        Trigger::EveryNth {
            n: 50,
            action: FaultAction::Kill,
        },
    );
    configure(
        "serve.conn.read_delay",
        Trigger::Prob {
            p: 0.02,
            seed: 0xC0FFEE,
            action: FaultAction::Delay(Duration::from_millis(2)),
        },
    );

    eprintln!(
        "chaos: driving {addr} with {threads} threads x {} requests",
        requests / threads
    );
    let wrong = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let per_thread = requests / threads;
    thread::scope(|s| {
        for tid in 0..threads {
            let (wrong, errors, expected) = (&wrong, &errors, &expected);
            s.spawn(move || {
                let mut client =
                    Client::connect_with(addr, client_config(1000 + tid as u64)).expect("connect");
                for i in 0..per_thread {
                    let (lat, lon) = pool[(tid + i * 31) % pool.len()];
                    match client.point_summary(lat, lon) {
                        Ok(got) => {
                            let got = got.map(|s| {
                                let mut buf = Vec::new();
                                codec::encode_cell_stats(&s, &mut buf);
                                buf
                            });
                            if got != expected(lat, lon) {
                                wrong.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(
                            pol_serve::ClientError::ServerBusy
                            | pol_serve::ClientError::Proto(ProtoError::Io(_))
                            | pol_serve::ClientError::Proto(ProtoError::ConnectionClosed),
                        ) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("chaos surfaced a non-retryable error: {e}"),
                    }
                }
            });
        }
    });

    let kills = stats("serve.worker.kill");
    let delays = stats("serve.conn.read_delay");
    let wrong = wrong.load(Ordering::Relaxed);
    let errors = errors.load(Ordering::Relaxed);
    let total = (per_thread * threads) as u64;

    // Recovery: with the faults disarmed, the next client must see a
    // healthy, ready server that still answers from the right snapshot.
    reset();
    let mut probe = Client::connect_with(addr, client_config(7)).expect("recovery connect");
    let mut recovered = probe.ping().is_ok();
    recovered &= probe
        .health()
        .map(|h| h.healthy && !h.draining)
        .unwrap_or(false);
    recovered &= probe.ready().unwrap_or(false);
    for i in 0..50usize {
        let (lat, lon) = pool[i % pool.len()];
        let got = probe.point_summary(lat, lon).expect("post-recovery query");
        let got = got.map(|s| {
            let mut buf = Vec::new();
            codec::encode_cell_stats(&s, &mut buf);
            buf
        });
        recovered &= got == expected(lat, lon);
    }
    server.shutdown();

    println!("chaos self-test: {total} requests over {threads} threads");
    println!(
        "  worker kills     {} fired / {} hits",
        kills.fired, kills.hits
    );
    println!(
        "  read delays      {} fired / {} hits",
        delays.fired, delays.hits
    );
    println!("  wrong answers    {wrong}");
    println!(
        "  surfaced errors  {errors} ({:.2}%)",
        errors as f64 * 100.0 / total as f64
    );
    println!("  recovered        {recovered}");

    let error_budget = total / 10;
    if wrong == 0 && errors <= error_budget && kills.fired >= 1 && recovered {
        println!("chaos self-test PASSED");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "chaos self-test FAILED (wrong={wrong}, errors={errors}/{error_budget} budget, \
             kills fired={}, recovered={recovered})",
            kills.fired
        );
        ExitCode::FAILURE
    }
}

/// `--connections N` entry point: one open-connection scalability row,
/// either against an external `--addr` server or (self-contained) a
/// spawned serve-only child over a freshly built snapshot. `--min-rps`
/// gates on this row's throughput.
fn run_connection_bench(args: &[String]) -> ExitCode {
    let connections: usize = parse_or(args, "--connections", 0);
    let idle_frac: f64 = parse_or(args, "--idle-frac", 0.95_f64).clamp(0.0, 0.999);
    let threads: usize = parse_or(args, "--threads", 8).max(1);
    let requests: usize = parse_or(args, "--requests", 20_000).max(1);
    let workers: usize = parse_or(args, "--workers", 8);
    let min_rps: Option<f64> = parse_flag(args, "--min-rps").and_then(|v| v.parse().ok());
    let (core, core_label) = match parse_core(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out_path = parse_flag(args, "--out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| pol_bench::figures_dir().join("BENCH_serve.json"));

    let mut snap_dir: Option<std::path::PathBuf> = None;
    let result = match parse_flag(args, "--addr") {
        Some(a) => match a.parse() {
            Ok(addr) => {
                run_connection_phase(addr, core_label, connections, idle_frac, threads, requests)
            }
            Err(_) => {
                eprintln!("error: cannot parse --addr {a}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            use pol_core::codec;
            let scenario = scenario_from(args);
            let resolution = Resolution::new(6).expect("res 6 valid");
            let cfg = PipelineConfig::default().with_resolution(resolution);
            eprintln!(
                "building res-6 inventory ({} vessels, {} days, seed {})...",
                scenario.n_vessels, scenario.duration_days, scenario.seed
            );
            let (_, out) = build_inventory(&scenario, &cfg);
            let dir = std::env::temp_dir().join(format!("polload-conn-{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("create snapshot dir");
            let v3_path = dir.join("inv.pol3");
            codec::columnar::save(&out.inventory, &v3_path).expect("save POLINV3 snapshot");
            snap_dir = Some(dir);
            drop(out);
            match ServeChild::spawn(
                &v3_path,
                core_label,
                child_workers(core, connections, threads, workers),
                ServerConfig::default().max_pending,
            ) {
                Ok(child) => {
                    let row = run_connection_phase(
                        child.addr,
                        core_label,
                        connections,
                        idle_frac,
                        threads,
                        requests,
                    );
                    child.stop();
                    row
                }
                Err(e) => Err(e),
            }
        }
    };
    if let Some(dir) = snap_dir.take() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    let row = match result {
        Ok(row) => row,
        Err(e) => {
            eprintln!("error: connection phase failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rows = [row];
    print_conn_rows(&rows);
    if let Err(e) = write_bench_json(&out_path, threads, "conn-bench", &[], &rows, None, None) {
        eprintln!("error: cannot write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out_path.display());
    if let Some(min) = min_rps {
        let r = &rows[0];
        if r.rps < min {
            eprintln!(
                "FAILED --min-rps gate: {} connections sustained {:.0} < {min:.0} rps",
                r.connections, r.rps
            );
            return ExitCode::FAILURE;
        }
        println!(
            "--min-rps gate passed: {} connections sustained {:.0} >= {min:.0} rps",
            r.connections, r.rps
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: polload [--addr HOST:PORT] [--threads N] [--requests N] \
             [--vessels N] [--days D] [--seed S] [--workers N] \
             [--store heap|mmap] [--batch N] [--min-rps X] \
             [--server-core reactor|threaded] [--out FILE]\n       \
             polload --connections N [--idle-frac F] [--addr HOST:PORT] [--min-rps X] ...\n       \
             polload --conn-sweep [--threads N] [--requests N] ...\n       \
             polload --chaos [--threads N] [--requests N] [--vessels N] [--days D] [--seed S]"
        );
        return ExitCode::from(2);
    }
    if parse_flag(&args, "--serve-only").is_some() {
        return run_serve_only(&args);
    }
    if args.iter().any(|a| a == "--chaos") {
        return run_chaos(&args);
    }
    let conn_sweep = args.iter().any(|a| a == "--conn-sweep");
    if parse_or::<usize>(&args, "--connections", 0) > 0 && !conn_sweep {
        return run_connection_bench(&args);
    }
    if conn_sweep && parse_flag(&args, "--addr").is_some() {
        eprintln!("error: --conn-sweep spawns its own servers (one per core); drop --addr");
        return ExitCode::FAILURE;
    }
    let threads: usize = parse_or(&args, "--threads", 8).max(1);
    let requests: usize = parse_or(&args, "--requests", 20_000).max(1);
    let (core, core_label) = match parse_core(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let batch: usize = parse_or(&args, "--batch", 0).min(pol_serve::MAX_BATCH);
    let min_rps: Option<f64> = parse_flag(&args, "--min-rps").and_then(|v| v.parse().ok());
    let store_choice = parse_flag(&args, "--store").unwrap_or_else(|| "heap".to_string());
    if store_choice != "heap" && store_choice != "mmap" {
        eprintln!("error: --store must be 'heap' or 'mmap', got {store_choice}");
        return ExitCode::FAILURE;
    }
    let out_path = parse_flag(&args, "--out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| pol_bench::figures_dir().join("BENCH_serve.json"));
    // Snapshot the committed results before we overwrite them so the
    // end-of-run comparison has something to compare against.
    let baseline = std::fs::read_to_string(&out_path)
        .map(|t| parse_baseline_rps(&t))
        .unwrap_or_default();

    // Either an external server or a self-contained build-and-serve.
    let mut own_server: Option<Server> = None;
    let mut cold_start: Option<ColdStart> = None;
    let mut snap_dir: Option<std::path::PathBuf> = None;
    let mut store_label = "external".to_string();
    let addr: SocketAddr = match parse_flag(&args, "--addr") {
        Some(a) => match a.parse() {
            Ok(addr) => addr,
            Err(_) => {
                eprintln!("error: cannot parse --addr {a}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            use pol_core::codec;
            let workers: usize = parse_or(&args, "--workers", 8);
            let scenario = scenario_from(&args);
            let resolution = Resolution::new(6).expect("res 6 valid");
            let cfg = PipelineConfig::default().with_resolution(resolution);
            eprintln!(
                "building res-6 inventory ({} vessels, {} days, seed {})...",
                scenario.n_vessels, scenario.duration_days, scenario.seed
            );
            let (_, out) = build_inventory(&scenario, &cfg);
            eprintln!(
                "inventory: {} entries over {} records",
                out.inventory.len(),
                out.inventory.total_records()
            );
            // Write both snapshot formats so cold start can be compared
            // and the chosen backend served from a real file, exactly
            // like production `polinv migrate` + `polinv serve`.
            let dir = std::env::temp_dir().join(format!("polload-snap-{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("create snapshot dir");
            let v2_path = dir.join("inv.pol");
            let v3_path = dir.join("inv.pol3");
            codec::save(&out.inventory, &v2_path).expect("save POLINV2 snapshot");
            codec::columnar::save(&out.inventory, &v3_path).expect("save POLINV3 snapshot");
            snap_dir = Some(dir);
            drop(out);

            let server_config = || ServerConfig {
                core,
                worker_threads: workers,
                ..ServerConfig::default()
            };
            // Cold start = open snapshot to accepting-connections READY.
            let t = Instant::now();
            let heap_server = Server::start_snapshot(&v2_path, "127.0.0.1:0", server_config())
                .expect("heap server start");
            let v2_heap_ms = t.elapsed().as_secs_f64() * 1e3;
            let t = Instant::now();
            let mmap_server = Server::start_snapshot(&v3_path, "127.0.0.1:0", server_config())
                .expect("mmap server start");
            let v3_mmap_ms = t.elapsed().as_secs_f64() * 1e3;
            eprintln!(
                "cold start (load-to-READY): POLINV2 heap {v2_heap_ms:.1} ms, \
                 POLINV3 mmap {v3_mmap_ms:.1} ms ({:.1}x)",
                v2_heap_ms / v3_mmap_ms.max(1e-9)
            );
            cold_start = Some(ColdStart {
                v2_heap_ms,
                v3_mmap_ms,
            });

            let (keep, mut retire) = if store_choice == "mmap" {
                (mmap_server, heap_server)
            } else {
                (heap_server, mmap_server)
            };
            retire.shutdown();
            store_label = store_choice.clone();
            let addr = keep.local_addr();
            own_server = Some(keep);
            addr
        }
    };
    eprintln!(
        "driving {addr} ({store_label} store, {core_label} core) with {threads} threads x \
         {requests} point-summary requests"
    );

    let pool = position_pool(addr).expect("position pool");
    let pool = &pool;
    let pick = |tid: usize, i: usize| pool[(tid + i * 31) % pool.len()];

    let mixed = (requests / 10).max(50);
    let mut phases: Vec<PhaseResult> = [
        run_phase(addr, "ping", threads, mixed, 1, |c, _, _| c.ping()),
        // The headline phase: the ≥50k req/s aggregate target.
        run_phase(addr, "point_summary", threads, requests, 1, |c, tid, i| {
            let (lat, lon) = pick(tid, i);
            c.point_summary(lat, lon).map(|_| ())
        }),
        run_phase(addr, "segment_summary", threads, mixed, 1, |c, tid, i| {
            let (lat, lon) = pick(tid, i);
            let seg = MarketSegment::ALL[i % MarketSegment::ALL.len()];
            c.segment_summary(lat, lon, seg).map(|_| ())
        }),
        run_phase(addr, "route_summary", threads, mixed, 1, |c, tid, i| {
            let (lat, lon) = pick(tid, i);
            let seg = MarketSegment::ALL[i % MarketSegment::ALL.len()];
            c.route_summary(lat, lon, (i % 23) as u16, (i % 31) as u16, seg)
                .map(|_| ())
        }),
        run_phase(addr, "bbox_scan", threads, mixed, 1, |c, tid, i| {
            let (lat, lon) = pick(tid, i);
            c.bbox_scan(
                (lat - 1.5).max(-89.9),
                (lon - 1.5).max(-179.9),
                (lat + 1.5).min(89.9),
                (lon + 1.5).min(179.9),
            )
            .map(|_| ())
        }),
        run_phase(
            addr,
            "top_destination_cells",
            threads,
            mixed,
            1,
            |c, _, i| c.top_destination_cells((i % 40) as u16, None).map(|_| ()),
        ),
        run_phase(addr, "eta", threads, mixed, 1, |c, tid, i| {
            let (lat, lon) = pick(tid, i);
            c.eta(lat, lon, None, None).map(|_| ())
        }),
        run_phase(
            addr,
            "predict_destination",
            threads,
            mixed,
            1,
            |c, tid, i| {
                let track: Vec<(f64, f64)> = (0..4).map(|k| pick(tid, i + k)).collect();
                c.predict_destination(None, 3, track).map(|_| ())
            },
        ),
        run_phase(addr, "stats", threads, mixed, 1, |c, _, _| {
            c.stats().map(|_| ())
        }),
    ]
    .into_iter()
    .collect::<Result<_, _>>()
    .expect("load phase failed");

    if batch >= 2 {
        // Protocol-v3 batch phases: one frame carries `batch`
        // sub-requests, amortising the per-frame syscall + framing cost.
        // rps counts sub-requests so it is comparable with the
        // single-frame phases above.
        let batched = [
            run_phase(
                addr,
                "point_summary_batch",
                threads,
                (requests / batch).max(50),
                batch,
                |c, tid, i| {
                    let positions: Vec<(f64, f64)> =
                        (0..batch).map(|k| pick(tid, i * batch + k)).collect();
                    c.point_summaries(&positions).map(|_| ())
                },
            ),
            run_phase(
                addr,
                "route_summary_batch",
                threads,
                (requests / batch).max(50),
                batch,
                |c, tid, i| {
                    let positions: Vec<(f64, f64)> =
                        (0..batch).map(|k| pick(tid, i * batch + k)).collect();
                    let seg = MarketSegment::ALL[i % MarketSegment::ALL.len()];
                    c.route_summaries((i % 23) as u16, (i % 31) as u16, seg, &positions)
                        .map(|_| ())
                },
            ),
        ]
        .into_iter()
        .collect::<Result<Vec<_>, _>>()
        .expect("batch phase failed");
        phases.extend(batched);
    }

    println!(
        "{:<22} {:>9} {:>6} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "endpoint", "requests", "batch", "rps", "p50_us", "p95_us", "p99_us", "max_us"
    );
    for p in &phases {
        println!(
            "{:<22} {:>9} {:>6} {:>12.0} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            p.name, p.requests, p.batch, p.rps, p.p50_us, p.p95_us, p.p99_us, p.max_us
        );
    }
    let point = phases
        .iter()
        .find(|p| p.name == "point_summary")
        .expect("point phase ran");
    println!(
        "aggregate point_summary RPS: {:.0} ({} threads; target >= 50000)",
        point.rps, threads
    );
    print_baseline_comparison(&baseline, &phases);

    // Ask over the wire so the report carries the store name,
    // mapped-store counters, and the streaming-freshness fields
    // (delta_generation / chain_len / since_reload_secs) the service
    // fills in — external servers included, so a post-reload run shows
    // the chain lineage it was answered from.
    let report = Client::connect(addr).and_then(|mut c| c.stats()).ok();
    if let Some(mut server) = own_server.take() {
        let report = report
            .clone()
            .unwrap_or_else(|| server.metrics().snapshot());
        server.shutdown();
        eprintln!("{}", report.render());
    } else if let Some(report) = report {
        eprintln!("{}", report.render());
    }

    // --conn-sweep: with the endpoint server gone (freeing its
    // descriptors), run the open-connection matrix — each cell a fresh
    // serve-only child over the snapshot written above, so the 10k rows
    // split their fd budget across two processes.
    let mut conn_rows: Vec<ConnRow> = Vec::new();
    if conn_sweep {
        let Some(dir) = snap_dir.as_ref() else {
            eprintln!("error: --conn-sweep needs the self-contained mode's snapshot");
            return ExitCode::FAILURE;
        };
        let v3_path = dir.join("inv.pol3");
        let workers: usize = parse_or(&args, "--workers", 8);
        let idle_frac: f64 = parse_or(&args, "--idle-frac", 0.95_f64).clamp(0.0, 0.999);
        for (sweep_core, label) in [
            (ServerCore::Reactor, "reactor"),
            (ServerCore::Threaded, "threaded"),
        ] {
            for n in [100usize, 1_000, 10_000] {
                let spawned = ServeChild::spawn(
                    &v3_path,
                    label,
                    child_workers(sweep_core, n, threads, workers),
                    ServerConfig::default().max_pending,
                );
                let row = match spawned {
                    Ok(child) => {
                        let row = run_connection_phase(
                            child.addr, label, n, idle_frac, threads, requests,
                        );
                        child.stop();
                        row
                    }
                    Err(e) => Err(e),
                };
                match row {
                    Ok(r) => conn_rows.push(r),
                    Err(e) => {
                        eprintln!("error: sweep cell {label}/{n} failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        print_conn_rows(&conn_rows);
    }
    if let Some(dir) = snap_dir.take() {
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Carry the committed top_destination_cells throughput forward as
    // the "before" so the lookup-table speedup stays on record; once a
    // run with the precomputed section is committed, later runs inherit
    // its own "before" field if present.
    let top_dest_before = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|t| {
            let field = "\"top_destination_cells_before_rps\": ";
            t.find(field).map(|at| {
                t[at + field.len()..]
                    .chars()
                    .take_while(|c| c.is_ascii_digit() || *c == '.')
                    .collect::<String>()
            })
        })
        .and_then(|digits| digits.parse::<f64>().ok())
        .or_else(|| {
            baseline
                .iter()
                .find(|(n, _)| n == "top_destination_cells")
                .map(|(_, rps)| *rps)
        });
    if let Err(e) = write_bench_json(
        &out_path,
        threads,
        &store_label,
        &phases,
        &conn_rows,
        cold_start.as_ref(),
        top_dest_before,
    ) {
        eprintln!("error: cannot write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out_path.display());

    if let Some(min) = min_rps {
        let gate_name = if batch >= 2 {
            "route_summary_batch"
        } else {
            "point_summary"
        };
        let gate = phases
            .iter()
            .find(|p| p.name == gate_name)
            .expect("gate phase ran");
        if gate.rps < min {
            eprintln!(
                "FAILED --min-rps gate: {gate_name} {:.0} < {min:.0} rps",
                gate.rps
            );
            return ExitCode::FAILURE;
        }
        println!(
            "--min-rps gate passed: {gate_name} {:.0} >= {min:.0} rps",
            gate.rps
        );
    }
    ExitCode::SUCCESS
}
