//! `polload` — load generator for the `pol-serve` query server.
//!
//! ```text
//! polload [--addr HOST:PORT] [--threads 8] [--requests 20000]
//!         [--vessels 150] [--days 14] [--seed 42] [--workers 8]
//!         [--out figures/BENCH_serve.json]
//! ```
//!
//! Without `--addr`, polload builds a res-6 fleetsim inventory in
//! process, starts a server on an ephemeral loopback port, drives it, and
//! shuts it down — the self-contained form the CI smoke test runs. With
//! `--addr` it drives an already-running server (`polinv serve`).
//!
//! Each endpoint gets its own burst phase over N concurrent connections
//! (one per thread); client-side latency is measured per request and
//! quantiles are exact (sorted), not sketched. Results go to stdout and
//! to `BENCH_serve.json`.

use pol_ais::types::MarketSegment;
use pol_bench::build_inventory;
use pol_core::PipelineConfig;
use pol_fleetsim::emit::EmissionConfig;
use pol_fleetsim::scenario::ScenarioConfig;
use pol_hexgrid::{cell_center, CellIndex, Resolution};
use pol_serve::{Client, ClientError, Server, ServerConfig};
use std::io::Write;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::thread;
use std::time::Instant;

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_or<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    parse_flag(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One endpoint phase's aggregate result.
struct PhaseResult {
    name: &'static str,
    requests: u64,
    wall_secs: f64,
    rps: f64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drives one endpoint with `threads` concurrent connections issuing
/// `per_thread` requests each; returns exact aggregate latency stats.
fn run_phase<F>(
    addr: SocketAddr,
    name: &'static str,
    threads: usize,
    per_thread: usize,
    f: F,
) -> Result<PhaseResult, ClientError>
where
    F: Fn(&mut Client, usize, usize) -> Result<(), ClientError> + Sync,
{
    let started = Instant::now();
    let f = &f;
    let lats: Vec<Vec<f64>> = thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                s.spawn(move || -> Result<Vec<f64>, ClientError> {
                    let mut client = Client::connect(addr)?;
                    let mut lats = Vec::with_capacity(per_thread);
                    for i in 0..per_thread {
                        let t = Instant::now();
                        f(&mut client, tid, i)?;
                        lats.push(t.elapsed().as_secs_f64() * 1e6);
                    }
                    Ok(lats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load thread panicked"))
            .collect::<Result<Vec<_>, _>>()
    })?;
    let wall_secs = started.elapsed().as_secs_f64();
    let mut all: Vec<f64> = lats.into_iter().flatten().collect();
    all.sort_by(|a, b| a.partial_cmp(b).expect("latency is finite"));
    let requests = all.len() as u64;
    Ok(PhaseResult {
        name,
        requests,
        wall_secs,
        rps: requests as f64 / wall_secs.max(1e-9),
        p50_us: quantile(&all, 0.50),
        p99_us: quantile(&all, 0.99),
        max_us: all.last().copied().unwrap_or(0.0),
    })
}

/// Fetches the occupied-cell centres to use as the query-position pool
/// (works against any server, external or in-process).
fn position_pool(addr: SocketAddr) -> Result<Vec<(f64, f64)>, ClientError> {
    let mut client = Client::connect(addr)?;
    let cells = client.bbox_scan(-89.9, -179.9, 89.9, 179.9)?;
    let mut pool: Vec<(f64, f64)> = cells
        .iter()
        .filter_map(|raw| CellIndex::from_raw(*raw).ok())
        .map(|c| {
            let p = cell_center(c);
            (p.lat(), p.lon())
        })
        .collect();
    if pool.is_empty() {
        // Empty inventory: fall back to port positions so every phase
        // still exercises the wire (responses are just all-None).
        pool = pol_fleetsim::WORLD_PORTS
            .iter()
            .map(|p| (p.pos().lat(), p.pos().lon()))
            .collect();
    }
    Ok(pool)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_bench_json(
    path: &std::path::Path,
    threads: usize,
    phases: &[PhaseResult],
) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"pol-serve loopback load\",")?;
    writeln!(f, "  \"threads\": {threads},")?;
    writeln!(f, "  \"endpoints\": [")?;
    for (i, p) in phases.iter().enumerate() {
        let comma = if i + 1 < phases.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"endpoint\": \"{}\", \"requests\": {}, \"wall_secs\": {:.4}, \
             \"rps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {:.1}}}{comma}",
            json_escape(p.name),
            p.requests,
            p.wall_secs,
            p.rps,
            p.p50_us,
            p.p99_us,
            p.max_us
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    f.flush()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: polload [--addr HOST:PORT] [--threads N] [--requests N] \
             [--vessels N] [--days D] [--seed S] [--workers N] [--out FILE]"
        );
        return ExitCode::from(2);
    }
    let threads: usize = parse_or(&args, "--threads", 8).max(1);
    let requests: usize = parse_or(&args, "--requests", 20_000).max(1);
    let out_path = parse_flag(&args, "--out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| pol_bench::figures_dir().join("BENCH_serve.json"));

    // Either an external server or a self-contained build-and-serve.
    let mut own_server: Option<Server> = None;
    let addr: SocketAddr = match parse_flag(&args, "--addr") {
        Some(a) => match a.parse() {
            Ok(addr) => addr,
            Err(_) => {
                eprintln!("error: cannot parse --addr {a}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let vessels = parse_or(&args, "--vessels", 150);
            let days = parse_or(&args, "--days", 14);
            let seed = parse_or(&args, "--seed", 42);
            let workers: usize = parse_or(&args, "--workers", 8);
            let scenario = ScenarioConfig {
                seed,
                n_vessels: vessels,
                duration_days: days,
                emission: EmissionConfig {
                    interval_scale: 10.0,
                    ..EmissionConfig::default()
                },
                ..ScenarioConfig::default()
            };
            let resolution = Resolution::new(6).expect("res 6 valid");
            let cfg = PipelineConfig::default().with_resolution(resolution);
            eprintln!("building res-6 inventory ({vessels} vessels, {days} days, seed {seed})...");
            let (_, out) = build_inventory(&scenario, &cfg);
            eprintln!(
                "inventory: {} entries over {} records",
                out.inventory.len(),
                out.inventory.total_records()
            );
            let server = Server::start(
                out.inventory,
                "127.0.0.1:0",
                ServerConfig {
                    worker_threads: workers,
                    ..ServerConfig::default()
                },
            )
            .expect("server start");
            let addr = server.local_addr();
            own_server = Some(server);
            addr
        }
    };
    eprintln!("driving {addr} with {threads} threads x {requests} point-summary requests");

    let pool = position_pool(addr).expect("position pool");
    let pool = &pool;
    let pick = |tid: usize, i: usize| pool[(tid + i * 31) % pool.len()];

    let mixed = (requests / 10).max(50);
    let phases: Vec<PhaseResult> = [
        run_phase(addr, "ping", threads, mixed, |c, _, _| c.ping()),
        // The headline phase: the ≥50k req/s aggregate target.
        run_phase(addr, "point_summary", threads, requests, |c, tid, i| {
            let (lat, lon) = pick(tid, i);
            c.point_summary(lat, lon).map(|_| ())
        }),
        run_phase(addr, "segment_summary", threads, mixed, |c, tid, i| {
            let (lat, lon) = pick(tid, i);
            let seg = MarketSegment::ALL[i % MarketSegment::ALL.len()];
            c.segment_summary(lat, lon, seg).map(|_| ())
        }),
        run_phase(addr, "route_summary", threads, mixed, |c, tid, i| {
            let (lat, lon) = pick(tid, i);
            let seg = MarketSegment::ALL[i % MarketSegment::ALL.len()];
            c.route_summary(lat, lon, (i % 23) as u16, (i % 31) as u16, seg)
                .map(|_| ())
        }),
        run_phase(addr, "bbox_scan", threads, mixed, |c, tid, i| {
            let (lat, lon) = pick(tid, i);
            c.bbox_scan(
                (lat - 1.5).max(-89.9),
                (lon - 1.5).max(-179.9),
                (lat + 1.5).min(89.9),
                (lon + 1.5).min(179.9),
            )
            .map(|_| ())
        }),
        run_phase(addr, "top_destination_cells", threads, mixed, |c, _, i| {
            c.top_destination_cells((i % 40) as u16, None).map(|_| ())
        }),
        run_phase(addr, "eta", threads, mixed, |c, tid, i| {
            let (lat, lon) = pick(tid, i);
            c.eta(lat, lon, None, None).map(|_| ())
        }),
        run_phase(addr, "predict_destination", threads, mixed, |c, tid, i| {
            let track: Vec<(f64, f64)> = (0..4).map(|k| pick(tid, i + k)).collect();
            c.predict_destination(None, 3, track).map(|_| ())
        }),
        run_phase(addr, "stats", threads, mixed, |c, _, _| {
            c.stats().map(|_| ())
        }),
    ]
    .into_iter()
    .collect::<Result<_, _>>()
    .expect("load phase failed");

    println!(
        "{:<22} {:>9} {:>12} {:>10} {:>10} {:>10}",
        "endpoint", "requests", "rps", "p50_us", "p99_us", "max_us"
    );
    for p in &phases {
        println!(
            "{:<22} {:>9} {:>12.0} {:>10.1} {:>10.1} {:>10.1}",
            p.name, p.requests, p.rps, p.p50_us, p.p99_us, p.max_us
        );
    }
    let point = phases
        .iter()
        .find(|p| p.name == "point_summary")
        .expect("point phase ran");
    println!(
        "aggregate point_summary RPS: {:.0} ({} threads; target >= 50000)",
        point.rps, threads
    );

    if let Some(mut server) = own_server.take() {
        let stats = server.metrics().snapshot();
        server.shutdown();
        eprintln!(
            "server: {} requests, {} connections, {} busy, {} malformed, cache {}/{} hit/miss",
            stats.total_requests,
            stats.connections,
            stats.busy_rejections,
            stats.malformed_frames,
            stats.cache_hits,
            stats.cache_misses
        );
    }

    if let Err(e) = write_bench_json(&out_path, threads, &phases) {
        eprintln!("error: cannot write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out_path.display());
    ExitCode::SUCCESS
}
