//! Regenerates **Figures 2 & 3** — the methodology walkthrough. The paper
//! shows a pictorial English-Channel example of each step (raw → cleaned →
//! trip-annotated → grid-projected → summarised → transition graph); this
//! binary replays the same steps over the English-Channel slice of the
//! synthetic dataset and prints the machine-checked record accounting of
//! every stage, plus a sample of the resulting transition graph.

use pol_bench::{banner, experiment_scenario, port_sites, TRAIN_SEED};
use pol_core::features::GroupKey;
use pol_core::PipelineConfig;
use pol_engine::Engine;
use pol_fleetsim::scenario::generate;
use pol_geo::BBox;

fn main() {
    banner(
        "Figures 2 & 3 — methodology walkthrough (English Channel)",
        "paper Figures 2 and 3",
    );
    let ds = generate(&experiment_scenario(TRAIN_SEED));
    let bbox = BBox::english_channel();

    // Keep only Channel-area reports, preserving per-vessel partitioning —
    // the paper's Figure 2 shows exactly such a regional slice.
    let positions: Vec<Vec<pol_ais::PositionReport>> = ds
        .positions
        .iter()
        .map(|part| {
            part.iter()
                .filter(|r| bbox.contains(r.pos))
                .copied()
                .collect()
        })
        .collect();
    let channel_reports: usize = positions.iter().map(Vec::len).sum();

    let engine = Engine::with_available_parallelism();
    let cfg = PipelineConfig::default();
    let out = pol_core::run(
        &engine,
        positions,
        &ds.statics,
        &port_sites(cfg.port_radius_km),
        &cfg,
    )
    .expect("pipeline run failed");

    println!();
    println!("(a) raw AIS records in the Channel box ........ {channel_reports}");
    println!(
        "    cleaning removed: {} out-of-range, {} infeasible/duplicate, {} non-commercial",
        out.clean_report.out_of_range, out.clean_report.infeasible, out.clean_report.non_commercial
    );
    println!(
        "    cleaned records ........................... {}",
        out.counts.cleaned
    );
    println!(
        "(b) records with trip semantics ............... {}",
        out.counts.with_trips
    );
    println!("    (records outside any port-to-port trip are excluded, as in the paper)");
    println!("(c) trip-enriched records carry ETO / ATA ..... yes (validated in unit tests)");
    println!(
        "(d) records projected to grid cells ........... {}",
        out.counts.projected
    );
    println!(
        "(e) grouping-set entries materialised ......... {}",
        out.counts.group_entries
    );
    let cov = out.inventory.coverage();
    println!(
        "    distinct cells in the box ................. {}",
        cov.occupied_cells
    );

    // (f) the transition graph: pick the busiest cell and show its edges.
    let busiest = out
        .inventory
        .iter()
        .filter_map(|(k, s)| match k {
            GroupKey::Cell(c) => Some((*c, s)),
            _ => None,
        })
        .max_by_key(|(_, s)| s.records);
    println!("(f) transition graph sample:");
    if let Some((cell, stats)) = busiest {
        let center = pol_hexgrid::cell_center(cell);
        println!(
            "    busiest cell {} at ({:.3}, {:.3}): {} records, {} ships",
            cell,
            center.lat(),
            center.lon(),
            stats.records,
            stats.ships.estimate()
        );
        for (next, count) in stats.top_transitions(5) {
            let nc = pol_hexgrid::cell_center(next);
            println!(
                "      -> {} at ({:.3}, {:.3})  observed {} times",
                next,
                nc.lat(),
                nc.lon(),
                count
            );
        }
    } else {
        println!("    (no cells — enlarge the scenario)");
    }

    println!();
    println!("Engine stage metrics (the Figure-3 execution flow):");
    print!("{}", engine.metrics().render());
}
