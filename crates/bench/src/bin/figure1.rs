//! Regenerates **Figure 1** — global patterns of life: per-cell average
//! speed (left panel) and average course (right panel) for the commercial
//! fleet, at resolution 6. Emits the two plottable CSV layers plus the
//! summary statistics a reviewer can sanity-check.

use pol_bench::{banner, build_inventory, experiment_scenario, write_csv, TRAIN_SEED};
use pol_core::features::GroupKey;
use pol_core::PipelineConfig;
use pol_hexgrid::cell_center;

fn main() {
    banner(
        "Figure 1 — global average speed & course per cell",
        "paper Figure 1",
    );
    let (_, out) = build_inventory(&experiment_scenario(TRAIN_SEED), &PipelineConfig::default());
    let inv = &out.inventory;

    let mut speed_rows = Vec::new();
    let mut course_rows = Vec::new();
    let mut speed_sum = 0.0;
    let mut speed_n = 0u64;
    let mut aligned_cells = 0u64;
    let mut cells = 0u64;
    for (key, stats) in inv.iter() {
        let GroupKey::Cell(cell) = key else { continue };
        cells += 1;
        let c = cell_center(*cell);
        if let Some(mean) = stats.speed.mean() {
            speed_rows.push(format!(
                "{},{:.5},{:.5},{:.2},{}",
                cell,
                c.lat(),
                c.lon(),
                mean,
                stats.records
            ));
            speed_sum += mean;
            speed_n += 1;
        }
        if let (Some(course), Some(r)) = (stats.course.mean_deg(), stats.course.resultant_length())
        {
            course_rows.push(format!(
                "{},{:.5},{:.5},{:.1},{:.3},{}",
                cell,
                c.lat(),
                c.lon(),
                course,
                r,
                stats.records
            ));
            if r > 0.8 {
                aligned_cells += 1;
            }
        }
    }
    speed_rows.sort();
    course_rows.sort();
    let p1 = write_csv(
        "figure1_speed.csv",
        "cell,lat,lon,mean_speed_kn,records",
        &speed_rows,
    );
    let p2 = write_csv(
        "figure1_course.csv",
        "cell,lat,lon,mean_course_deg,alignment,records",
        &course_rows,
    );

    println!();
    println!("cells in inventory (res 6):        {cells}");
    println!("cells with speed statistics:       {speed_n}");
    println!(
        "global mean of cell-mean speeds:   {:.1} kn",
        speed_sum / speed_n.max(1) as f64
    );
    println!(
        "strongly lane-aligned cells (R>0.8): {} ({:.1}%)",
        aligned_cells,
        100.0 * aligned_cells as f64 / cells.max(1) as f64
    );
    println!();
    println!("wrote {}", p1.display());
    println!("wrote {}", p2.display());
    println!();
    println!(
        "Paper: 7.3 M cells rendered as the two global maps (blue=slow/red=fast; \
         colour-by-course). These CSVs are the same layers at this run's scale; \
         open-sea lane cells show cruise speeds (≥ 10 kn) and high alignment, \
         port-approach cells show low speeds — the visual pattern of Figure 1."
    );
}
