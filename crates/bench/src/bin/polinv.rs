//! `polinv` — command-line front end for the Patterns-of-Life inventory.
//!
//! ```text
//! polinv build --out inv.pol [--vessels 150] [--days 14] [--res 6] [--seed 42]
//!              [--executor fused|staged] [--timings]
//! polinv info <inv.pol>
//! polinv verify <inv.pol>
//! polinv query <inv.pol> <lat> <lon> [--segment container|tanker|...]
//! polinv top-dest <inv.pol> <LOCODE>
//! polinv migrate <inv.pol> <inv.pol3>
//! polinv serve <inv.pol> [--addr 127.0.0.1:0] [--core reactor|threaded] [--workers 8]
//! ```
//!
//! Every reading subcommand sniffs the snapshot format: POLINV2
//! (row-oriented), POLINV3 (columnar, `migrate`'s output), and POLMAN1
//! delta-chain manifests (`pol-stream`'s output — loaded base plus
//! deltas, merged) are accepted everywhere a `<inv.pol>` appears.
//! `verify` on a manifest audits the whole chain file by file. `serve`
//! memory-maps a POLINV3 file zero-copy instead of deserializing it.
//!
//! While `serve` is running, its stdin is a tiny control channel: a
//! `reload <file>` line hot-swaps the snapshot (validated first — a
//! corrupt file is rejected and the old snapshot keeps serving), and
//! EOF shuts the server down.

use pol_ais::types::MarketSegment;
use pol_bench::alloc::{self, CountingAlloc};
use pol_bench::{build_inventory_on, BuildExecutor};
use pol_core::{codec, Inventory, PipelineConfig};
use pol_engine::Engine;
use pol_fleetsim::emit::EmissionConfig;
use pol_fleetsim::scenario::{generate, ScenarioConfig};
use pol_fleetsim::WORLD_PORTS;
use pol_geo::LatLon;
use pol_hexgrid::{cell_at, Resolution};
use std::path::Path;
use std::process::ExitCode;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  polinv build --out <file> [--vessels N] [--days D] [--res R] [--seed S] \
         [--executor fused|staged] [--timings]\n  \
         polinv info <file>\n  \
         polinv verify <file>\n  \
         polinv query <file> <lat> <lon> [--segment <name>]\n  \
         polinv top-dest <file> <LOCODE>\n  \
         polinv migrate <in.pol> <out.pol3>\n  \
         polinv serve <file> [--addr HOST:PORT] [--core reactor|threaded] [--workers N] \
         [--shards N] [--cache N]"
    );
    ExitCode::from(2)
}

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn segment_by_name(name: &str) -> Option<MarketSegment> {
    MarketSegment::ALL.into_iter().find(|s| s.name() == name)
}

fn load(path: &str) -> Result<Inventory, ExitCode> {
    codec::load_any(Path::new(path)).map_err(|e| {
        eprintln!("error: cannot load {path}: {e}");
        ExitCode::FAILURE
    })
}

fn cmd_build(args: &[String]) -> ExitCode {
    let Some(out_path) = parse_flag(args, "--out") else {
        return usage();
    };
    let vessels = parse_flag(args, "--vessels")
        .and_then(|v| v.parse().ok())
        .unwrap_or(150);
    let days = parse_flag(args, "--days")
        .and_then(|v| v.parse().ok())
        .unwrap_or(14);
    let res = parse_flag(args, "--res")
        .and_then(|v| v.parse().ok())
        .unwrap_or(6u8);
    let seed = parse_flag(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let Some(resolution) = Resolution::new(res) else {
        eprintln!("error: resolution {res} out of 0..=15");
        return ExitCode::FAILURE;
    };
    let scenario = ScenarioConfig {
        seed,
        n_vessels: vessels,
        duration_days: days,
        emission: EmissionConfig {
            interval_scale: 10.0,
            ..EmissionConfig::default()
        },
        ..ScenarioConfig::default()
    };
    let executor = match parse_flag(args, "--executor") {
        None => BuildExecutor::Fused,
        Some(name) => match BuildExecutor::from_name(&name) {
            Some(e) => e,
            None => {
                eprintln!("error: unknown executor {name} (expected fused|staged)");
                return ExitCode::FAILURE;
            }
        },
    };
    let timings = args.iter().any(|a| a == "--timings");
    let cfg = PipelineConfig::default().with_resolution(resolution);
    eprintln!("simulating {vessels} vessels over {days} days (seed {seed})...");
    let ds = generate(&scenario);
    let engine = Engine::with_available_parallelism();
    let before = alloc::snapshot();
    let out = build_inventory_on(&engine, &ds, &cfg, executor);
    let delta = alloc::snapshot().since(before);
    engine.metrics().add_counter("alloc.calls", delta.allocs);
    engine.metrics().add_counter("alloc.bytes", delta.bytes);
    eprintln!(
        "pipeline: {} raw -> {} trip records -> {} entries",
        ds.total_reports(),
        out.counts.with_trips,
        out.counts.group_entries
    );
    if timings {
        eprint!("{}", engine.metrics().render());
    }
    if let Err(e) = codec::save(&out.inventory, Path::new(&out_path)) {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    let cov = out.inventory.coverage();
    println!(
        "wrote {out_path}: res {}, {} cells, compression {:.2}%",
        cov.resolution,
        cov.occupied_cells,
        cov.compression * 100.0
    );
    ExitCode::SUCCESS
}

fn cmd_info(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let inv = match load(path) {
        Ok(i) => i,
        Err(e) => return e,
    };
    let cov = inv.coverage();
    println!("inventory {path}");
    println!("  resolution        {}", cov.resolution);
    println!("  records           {}", cov.total_records);
    println!("  occupied cells    {}", cov.occupied_cells);
    println!("  compression       {:.2}%", cov.compression * 100.0);
    println!("  grid utilization  {:.4}%", cov.utilization * 100.0);
    use pol_core::features::GroupingSet::*;
    for (gs, name) in [
        (Cell, "(cell)"),
        (CellType, "(cell, type)"),
        (CellRoute, "(cell, o, d, type)"),
    ] {
        println!("  entries {:<20} {}", name, inv.len_of(gs));
    }
    ExitCode::SUCCESS
}

fn cmd_verify(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let format = match codec::sniff_file(Path::new(path)) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{path}: CORRUPT: inventory io error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if matches!(format, Some(codec::SnapshotFormat::Manifest)) {
        // A POLMAN1 delta chain: walk base + every delta, re-verifying
        // each file's recorded length + CRC and the merge itself.
        return match codec::manifest::verify_chain(Path::new(path)) {
            Ok(report) => {
                println!("{path}: OK (POLMAN1 delta chain)");
                println!("  newest generation {}", report.generation);
                println!("  chain length      {} files", report.files.len());
                println!("  merged entries    {}", report.merged_entries);
                for f in &report.files {
                    println!(
                        "  gen {:>5}  {:<24} {:>10} bytes  crc64 {:016x}  {:>8} entries",
                        f.generation, f.name, f.file_len, f.crc, f.entries
                    );
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: CORRUPT: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if matches!(format, Some(codec::SnapshotFormat::V3)) {
        return match codec::columnar::verify(Path::new(path)) {
            Ok(report) => {
                println!("{path}: OK (POLINV3 columnar)");
                println!("  file length       {} bytes", report.file_len);
                println!("  resolution        {}", report.resolution);
                println!("  records           {}", report.total_records);
                println!("  entries           {}", report.entries);
                for s in &report.sections {
                    println!(
                        "  section {:<10} {:>8} entries  crc64 {:016x}",
                        s.name, s.entries, s.crc
                    );
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: CORRUPT: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match codec::verify(Path::new(path)) {
        Ok(report) => {
            println!("{path}: OK");
            println!("  file length       {} bytes", report.file_len);
            println!("  header crc64      {:016x}", report.header_crc);
            println!("  entries crc64     {:016x}", report.entries_crc);
            println!("  resolution        {}", report.resolution);
            println!("  records           {}", report.total_records);
            println!("  entries           {}", report.entries);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: CORRUPT: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_migrate(args: &[String]) -> ExitCode {
    let (Some(input), Some(output)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let bytes = match std::fs::read(input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The byte-level migration keeps every stats blob verbatim (both
    // formats share the canonical encoding), so queries against the
    // migrated file are bit-identical to the original.
    let v3 = match codec::columnar::migrate_v2_bytes(&bytes) {
        Ok(v3) => v3,
        Err(e) => {
            eprintln!("error: cannot migrate {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = codec::save_bytes(&v3, Path::new(output)) {
        eprintln!("error: cannot write {output}: {e}");
        return ExitCode::FAILURE;
    }
    match codec::columnar::verify(Path::new(output)) {
        Ok(report) => {
            println!(
                "migrated {input} -> {output}: {} entries, {} -> {} bytes",
                report.entries,
                bytes.len(),
                v3.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: migrated file failed verification: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_query(args: &[String]) -> ExitCode {
    let (Some(path), Some(lat), Some(lon)) = (args.first(), args.get(1), args.get(2)) else {
        return usage();
    };
    let (Ok(lat), Ok(lon)) = (lat.parse::<f64>(), lon.parse::<f64>()) else {
        eprintln!("error: lat/lon must be numbers");
        return ExitCode::FAILURE;
    };
    let Some(pos) = LatLon::new(lat, lon) else {
        eprintln!("error: coordinates out of range");
        return ExitCode::FAILURE;
    };
    let inv = match load(path) {
        Ok(i) => i,
        Err(e) => return e,
    };
    let segment = parse_flag(args, "--segment").and_then(|s| segment_by_name(&s));
    let cell = cell_at(pos, inv.resolution());
    let stats = match segment {
        Some(seg) => inv.summary_for(cell, seg),
        None => inv.summary(cell),
    };
    println!(
        "cell {cell} at ({lat}, {lon}){}",
        match segment {
            Some(s) => format!(" [{s}]"),
            None => String::new(),
        }
    );
    let Some(stats) = stats else {
        println!("  no traffic recorded");
        return ExitCode::SUCCESS;
    };
    println!("  records          {}", stats.records);
    println!("  distinct ships   {}", stats.ships.estimate());
    println!("  distinct trips   {}", stats.trips.estimate());
    if let (Some(m), Some(s)) = (stats.speed.mean(), stats.speed.std_dev()) {
        let mut q = stats.speed_q.clone();
        println!(
            "  speed            {m:.1} ± {s:.1} kn (p10 {:.1} / p50 {:.1} / p90 {:.1})",
            q.quantile(0.1).unwrap_or(0.0),
            q.quantile(0.5).unwrap_or(0.0),
            q.quantile(0.9).unwrap_or(0.0)
        );
    }
    if let (Some(c), Some(r)) = (stats.course.mean_deg(), stats.course.resultant_length()) {
        println!("  course           {c:.0}° (alignment {r:.2})");
    }
    if let Some(ata) = stats.ata.mean() {
        println!("  mean time-to-dest {:.1} h", ata / 3600.0);
    }
    for (port, n) in stats.top_destinations(3) {
        let name = WORLD_PORTS
            .get(port as usize)
            .map(|p| p.name)
            .unwrap_or("?");
        println!("  top destination  {name} ({n} records)");
    }
    for (next, n) in stats.top_transitions(3) {
        println!("  transition       -> {next} ({n}x)");
    }
    ExitCode::SUCCESS
}

fn cmd_top_dest(args: &[String]) -> ExitCode {
    let (Some(path), Some(locode)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let Some((pid, port)) = pol_fleetsim::ports::port_by_locode(locode) else {
        eprintln!("error: unknown LOCODE {locode}");
        return ExitCode::FAILURE;
    };
    let inv = match load(path) {
        Ok(i) => i,
        Err(e) => return e,
    };
    let cells = inv.cells_with_top_destination(pid.0, None);
    println!(
        "{} cells have {} ({locode}) as their most frequent destination",
        cells.len(),
        port.name
    );
    for c in cells.iter().take(10) {
        let p = pol_hexgrid::cell_center(*c);
        println!("  {c}  ({:.3}, {:.3})", p.lat(), p.lon());
    }
    if cells.len() > 10 {
        println!("  ... and {} more", cells.len() - 10);
    }
    ExitCode::SUCCESS
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let addr = parse_flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:0".into());
    let core = match parse_flag(args, "--core").as_deref() {
        None | Some("reactor") => pol_serve::ServerCore::Reactor,
        Some("threaded") => pol_serve::ServerCore::Threaded,
        Some(other) => {
            eprintln!("error: --core must be 'reactor' or 'threaded', got {other}");
            return ExitCode::FAILURE;
        }
    };
    let config = pol_serve::ServerConfig {
        core,
        worker_threads: parse_flag(args, "--workers")
            .and_then(|v| v.parse().ok())
            .unwrap_or(8),
        shards: parse_flag(args, "--shards")
            .and_then(|v| v.parse().ok())
            .unwrap_or(8),
        cache_capacity: parse_flag(args, "--cache")
            .and_then(|v| v.parse().ok())
            .unwrap_or(256),
        ..pol_serve::ServerConfig::default()
    };
    // start_snapshot sniffs the format: a POLINV3 file is memory-mapped
    // zero-copy (validated, not deserialized), POLINV2 takes the full
    // decode + shard path.
    let started = std::time::Instant::now();
    let mut server = match pol_serve::Server::start_snapshot(Path::new(path), addr.as_str(), config)
    {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot serve {path} on {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "cold start (load-to-ready): {:.1} ms",
        started.elapsed().as_secs_f64() * 1e3
    );
    // The bound address goes to stdout so scripts (ci.sh) can pick up an
    // ephemeral port; everything else is stderr chatter.
    println!("listening on {}", server.local_addr());
    use std::io::{BufRead, Write};
    std::io::stdout().flush().ok();
    eprintln!("serving {path}; `reload <file>` to hot-swap, close stdin (Ctrl-D) to stop");
    // std has no portable signal handling: stdin EOF is the shutdown
    // control signal (ci.sh holds a fifo open and closes it to stop us).
    // A `reload <file>` line hot-swaps the snapshot without dropping
    // connections; a corrupt file is rejected and the old one serves on.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if let Some(new_path) = line.trim().strip_prefix("reload ") {
            let new_path = new_path.trim();
            match server.reload_from(Path::new(new_path)) {
                Ok(()) => eprintln!(
                    "reloaded {new_path} (generation {})",
                    server.metrics().generation()
                ),
                Err(e) => eprintln!("reload rejected, keeping old snapshot: {e}"),
            }
        } else if !line.trim().is_empty() {
            eprintln!("unknown control command (only `reload <file>` is understood)");
        }
    }
    let stats = server.metrics().snapshot();
    server.shutdown();
    eprintln!(
        "shut down after {} requests over {} connections ({} busy, {} malformed)",
        stats.total_requests, stats.connections, stats.busy_rejections, stats.malformed_frames
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("top-dest") => cmd_top_dest(&args[1..]),
        Some("migrate") => cmd_migrate(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        _ => usage(),
    }
}
