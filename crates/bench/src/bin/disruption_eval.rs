//! Evaluates the **normalcy model** motivation of §1/§2: an inventory
//! built on a normal year detects the COVID-style port closure and the
//! Suez-style canal blockage as anomaly-rate shifts.
//!
//! * Suez blockage: rerouted Asia–Europe voyages cross Cape-route cells
//!   their `(origin, dest)` flows never used → off-lane/odd-course rates
//!   rise relative to the held-out normal fleet.
//! * Port closure: calls at the closed port vanish → its approach cells go
//!   quiet (traffic-volume shift).

use pol_apps::AnomalyDetector;
use pol_bench::{banner, build_inventory, experiment_scenario, port_id, TEST_SEED, TRAIN_SEED};
use pol_core::PipelineConfig;
use pol_fleetsim::scenario::{generate, Disruption};
use pol_fleetsim::WORLD_PORTS;
use pol_geo::haversine_km;

fn anomaly_rate(det: &AnomalyDetector, ds: &pol_fleetsim::scenario::Dataset) -> f64 {
    let stream = ds.positions.iter().enumerate().flat_map(|(vi, part)| {
        let seg = ds.fleet[vi].segment;
        part.iter()
            .map(move |r| (r.pos, r.sog_knots, r.cog_deg, Some(seg)))
    });
    det.anomaly_rate(stream)
}

fn main() {
    banner(
        "Disruption detection — the model of normalcy (COVID / Suez)",
        "paper §1, §2, §5",
    );
    let (_, out) = build_inventory(&experiment_scenario(TRAIN_SEED), &PipelineConfig::default());
    let det = AnomalyDetector::new(&out.inventory);

    // Held-out normal traffic.
    let mut normal_cfg = experiment_scenario(TEST_SEED);
    normal_cfg.n_vessels = 60;
    let normal = generate(&normal_cfg);

    // Suez blockage for the whole test window.
    let mut suez_cfg = normal_cfg.clone();
    suez_cfg.disruption = Some(Disruption::SuezBlockage {
        from: suez_cfg.start,
        to: suez_cfg.end(),
    });
    let suez = generate(&suez_cfg);

    // COVID-style closure of Shanghai. Port-call counts need a bigger
    // fleet than the anomaly-rate comparison (a 60-vessel window yields
    // only a handful of calls at any one port).
    let sha = port_id("CNSHA");
    let mut calls_cfg = normal_cfg.clone();
    calls_cfg.n_vessels = 250;
    let normal_big = generate(&calls_cfg);
    let mut covid_cfg = calls_cfg.clone();
    covid_cfg.disruption = Some(Disruption::PortClosure {
        port: pol_fleetsim::PortId(sha),
        from: covid_cfg.start,
        to: covid_cfg.end(),
    });
    let covid = generate(&covid_cfg);

    let r_normal = anomaly_rate(&det, &normal);
    let r_suez = anomaly_rate(&det, &suez);

    println!();
    println!("anomaly rate vs the normal-year inventory:");
    println!("  held-out normal fleet:     {:>6.2}%", r_normal * 100.0);
    println!("  Suez-blockage fleet:       {:>6.2}%", r_suez * 100.0);
    println!(
        "  [{}] blockage raises the anomaly rate ({}x)",
        if r_suez > r_normal { "ok" } else { "MISS" },
        if r_normal > 0.0 {
            format!("{:.1}", r_suez / r_normal)
        } else {
            "∞".into()
        }
    );

    // Port-closure signal: arrivals at the port collapse (reports *near*
    // the port are dominated by the coastal through-lane and barely move;
    // the operational signal is port calls, which the trip semantics give
    // us directly).
    let sha_pos = WORLD_PORTS[sha as usize].pos();
    let calls_in_window = |ds: &pol_fleetsim::scenario::Dataset| -> u64 {
        ds.truth
            .iter()
            .filter(|v| v.dest.0 == sha && v.departure >= normal_cfg.start)
            .count() as u64
    };
    let moored_reports = |ds: &pol_fleetsim::scenario::Dataset| -> u64 {
        ds.positions
            .iter()
            .flatten()
            .filter(|r| r.nav_status.is_stationary() && haversine_km(r.pos, sha_pos) < 25.0)
            .count() as u64
    };
    let (c_normal, c_covid) = (calls_in_window(&normal_big), calls_in_window(&covid));
    let (m_normal, m_covid) = (moored_reports(&normal_big), moored_reports(&covid));
    println!();
    println!("Shanghai during the closure window:");
    println!("  port calls planned:   normal {c_normal:>5}   closure {c_covid:>5}");
    println!("  moored reports <25km: normal {m_normal:>5}   closure {m_covid:>5}");
    println!(
        "  [{}] the closure is visible as a port-call collapse ({:.0}% of normal)",
        if c_covid * 2 < c_normal.max(1) {
            "ok"
        } else {
            "MISS"
        },
        100.0 * c_covid as f64 / c_normal.max(1) as f64
    );
    println!();
    println!(
        "Paper: 'we build a model of normalcy that can then be used to identify \
         any outliers from this e.g. Covid-19 or Suez Canal' — both events are \
         recovered here from the inventory alone."
    );
}
