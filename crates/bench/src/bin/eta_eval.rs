//! Evaluates **§4.1.2** — ETA estimation from the inventory's ATA
//! statistics on *known sea routes* (the paper's framing: "ATA and ETO
//! present a baseline statistic for estimation of arrival time (ETA) for
//! known sea routes"). For each well-covered route key, replay a fresh
//! vessel and compare three estimators at several voyage stages:
//!
//! * inventory — the median historical ATA of the vessel's current cell
//!   under the route key,
//! * naive — great-circle distance to destination over an assumed speed
//!   (no lane knowledge: underestimates any route that bends),
//! * truth — the replayed vessel's actual remaining time.

use pol_apps::{naive_eta_secs, EtaEstimator};
use pol_bench::{
    banner, build_inventory, experiment_scenario, hours, simulate_voyage, top_route_keys,
    typical_speed_kn, TRAIN_SEED,
};
use pol_core::PipelineConfig;
use pol_fleetsim::{EPOCH_2022, WORLD_PORTS};

fn main() {
    banner(
        "§4.1.2 — ETA estimation on known routes",
        "paper §4.1.2 / Figure 5",
    );
    let (_, out) = build_inventory(&experiment_scenario(TRAIN_SEED), &PipelineConfig::default());
    let estimator = EtaEstimator::new(&out.inventory);

    let keys = top_route_keys(&out.inventory, 40, 15);
    println!();
    println!("known routes evaluated: {}", keys.len());

    let fractions = [0.25, 0.5, 0.75];
    let mut inv_err: Vec<Vec<f64>> = vec![Vec::new(); fractions.len()];
    let mut naive_err: Vec<Vec<f64>> = vec![Vec::new(); fractions.len()];

    for (i, (o, d, seg, _)) in keys.iter().enumerate() {
        let Some((arrival, reports)) = simulate_voyage(
            *o,
            *d,
            typical_speed_kn(*seg) + (i as f64 % 3.0) - 1.0,
            EPOCH_2022 + 86_400,
            31_000 + i as u64,
        ) else {
            continue;
        };
        if reports.len() < 20 {
            continue;
        }
        let departure = reports[0].timestamp;
        let dest_pos = WORLD_PORTS[*d as usize].pos();
        for (fi, frac) in fractions.iter().enumerate() {
            let t = departure + ((arrival - departure) as f64 * frac) as i64;
            let Some(r) = reports.iter().min_by_key(|r| (r.timestamp - t).abs()) else {
                continue;
            };
            let truth = (arrival - r.timestamp) as f64;
            if truth <= 0.0 {
                continue;
            }
            if let Some(est) = estimator.estimate(r.pos, Some(*seg), Some((*o, *d))) {
                inv_err[fi].push((est.p50_secs - truth).abs());
                naive_err[fi].push((naive_eta_secs(r.pos, dest_pos, 14.0) - truth).abs());
            }
        }
    }

    let mae = |v: &[f64]| hours(v.iter().sum::<f64>() / v.len().max(1) as f64);
    println!();
    println!(
        "{:<18} {:>10} {:>14} {:>16}",
        "voyage progress", "samples", "inventory MAE", "naive g.c. MAE"
    );
    let mut inv_total = 0.0;
    let mut naive_total = 0.0;
    for (fi, frac) in fractions.iter().enumerate() {
        println!(
            "{:<18} {:>10} {:>12.1} h {:>14.1} h",
            format!("{:.0}%", frac * 100.0),
            inv_err[fi].len(),
            mae(&inv_err[fi]),
            mae(&naive_err[fi]),
        );
        inv_total += mae(&inv_err[fi]);
        naive_total += mae(&naive_err[fi]);
    }
    println!();
    println!(
        "[{}] on known routes, the inventory's historical-ATA estimate beats the \
         great-circle baseline ({:.1} h vs {:.1} h mean MAE)",
        if inv_total < naive_total {
            "ok"
        } else {
            "MISS"
        },
        inv_total / fractions.len() as f64,
        naive_total / fractions.len() as f64
    );
    println!();
    println!(
        "Paper: the inventory ATA is 'a basic ETA estimate … input to more \
         advanced ETA estimators'; no accuracy table is reported, so the claim \
         under reproduction is the qualitative one above."
    );
}
