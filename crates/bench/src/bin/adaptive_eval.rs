//! Evaluates the **§5 future-work extension**: the density-adaptive
//! hierarchical inventory ("larger cells in open sea areas … high
//! resolution in dense areas"). Reports the cell-count reduction, the
//! resulting resolution mix, and a fidelity check: dense-area queries are
//! still answered at full resolution.

use pol_bench::{banner, build_inventory, experiment_scenario, TRAIN_SEED};
use pol_core::{AdaptiveConfig, AdaptiveInventory, PipelineConfig};
use pol_hexgrid::Resolution;

fn main() {
    banner(
        "§5 future work — density-adaptive hierarchical inventory",
        "paper §5 ('non-uniform inventories … adjusting to the density of maritime traffic')",
    );
    let (_, out) = build_inventory(&experiment_scenario(TRAIN_SEED), &PipelineConfig::fine());
    let inv = &out.inventory;
    let fine_cells = inv.len_of(pol_core::features::GroupingSet::Cell);

    println!();
    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>14}",
        "threshold (rec/cell)", "cells", "vs fine", "resolutions", "records kept"
    );
    for threshold in [16u64, 64, 256] {
        let cfg = AdaptiveConfig {
            min_records_per_cell: threshold,
            coarsest: Resolution::new(3).unwrap(),
        };
        let adaptive = AdaptiveInventory::build(inv, &cfg);
        assert_eq!(
            adaptive.partition_violations(),
            0,
            "partition must be exact"
        );
        let hist = adaptive.resolution_histogram();
        let mix = hist
            .iter()
            .map(|(r, n)| format!("r{r}:{n}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:<22} {:>10} {:>9.0}% {:>12} {:>14}",
            threshold,
            adaptive.len(),
            100.0 * adaptive.len() as f64 / fine_cells as f64,
            hist.len(),
            adaptive.total_records()
        );
        println!("{:>34} mix: {mix}", "");
    }

    // Fidelity: queries in the busiest port approach stay at res 7;
    // mid-ocean queries get answered by a pooled coarse cell.
    let cfg = AdaptiveConfig {
        min_records_per_cell: 64,
        coarsest: Resolution::new(3).unwrap(),
    };
    let adaptive = AdaptiveInventory::build(inv, &cfg);
    // Probe the busiest lane cell (guaranteed dense) and an ocean point.
    let busiest = inv
        .iter()
        .filter_map(|(k, s)| match k {
            pol_core::features::GroupKey::Cell(c) => Some((*c, s.records)),
            _ => None,
        })
        .max_by_key(|(_, r)| *r)
        .expect("non-empty inventory")
        .0;
    let lane_probe = pol_hexgrid::cell_center(busiest);
    println!();
    match adaptive.summary_at(lane_probe) {
        Some((cell, stats)) => println!(
            "busiest-lane query:       answered at res {} with {} records (kept fine)",
            cell.resolution().level(),
            stats.records
        ),
        None => println!("busiest-lane query: uncovered (unexpected)"),
    }
    let mid_indian = pol_geo::LatLon::new(-8.0, 72.0).unwrap();
    match adaptive.summary_at(mid_indian) {
        Some((cell, stats)) => println!(
            "mid-Indian-Ocean query:   answered at res {} with {} records (pooled)",
            cell.resolution().level(),
            stats.records
        ),
        None => println!("mid-Indian-Ocean query:   no traffic ever seen there"),
    }
    println!();
    println!(
        "The adaptive partition keeps port/lane cells at the fine resolution \
         while pooling sparse ocean cells into parents — the exact proposal of \
         the paper's future-work section, enabled by the grid's exact \
         aperture-7 hierarchy. Total records are preserved exactly; only \
         spatial granularity is traded where nothing needed resolving."
    );
    println!(
        "fine inventory: {} cells (res 7); see table above for reductions.",
        fine_cells
    );
}
