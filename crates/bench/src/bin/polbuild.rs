//! `polbuild` — the ingestion benchmark: how fast does the build side
//! turn raw AIS reports into an inventory? (The serving-side counterpart
//! is `polload`.)
//!
//! ```text
//! polbuild [--vessels N] [--days D] [--seed S] [--res R] [--threads T]
//!          [--out FILE] [--min-rps X]
//! ```
//!
//! Runs a fleetsim workload through the **staged** reference pipeline
//! stage by stage (wall time + allocation counters per stage), then
//! through the **fused** morsel-driven executor end to end, verifies the
//! two are bit-identical, and writes `figures/BENCH_build.json` with
//! records/sec per stage and end to end. With `--min-rps` the process
//! fails unless the fused end-to-end throughput clears the floor — the
//! CI ingestion gate.

use pol_bench::alloc::{self, CountingAlloc};
use pol_bench::{figures_dir, port_sites};
use pol_core::clean::clean_and_enrich;
use pol_core::features::build_group_stats;
use pol_core::project::project;
use pol_core::trips::extract_trips;
use pol_core::{codec, Inventory, PipelineConfig};
use pol_engine::{Dataset, Engine};
use pol_fleetsim::emit::EmissionConfig;
use pol_fleetsim::scenario::{generate, ScenarioConfig};
use pol_hexgrid::Resolution;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn parse_or<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One timed pipeline stage.
struct StageRow {
    name: &'static str,
    input_records: u64,
    output_records: u64,
    wall_ms: f64,
    allocs: u64,
    alloc_bytes: u64,
}

impl StageRow {
    fn records_per_sec(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.input_records as f64 / (self.wall_ms / 1e3)
        } else {
            0.0
        }
    }
}

fn json_stage(row: &StageRow) -> String {
    format!(
        "    {{\"name\": \"{}\", \"input_records\": {}, \"output_records\": {}, \
         \"wall_ms\": {:.3}, \"records_per_sec\": {:.1}, \"allocs\": {}, \"alloc_bytes\": {}}}",
        row.name,
        row.input_records,
        row.output_records,
        row.wall_ms,
        row.records_per_sec(),
        row.allocs,
        row.alloc_bytes
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let vessels = parse_or(&args, "--vessels", 40usize);
    let days = parse_or(&args, "--days", 7u32);
    let seed = parse_or(&args, "--seed", 42u64);
    let res = parse_or(&args, "--res", 6u8);
    let threads = parse_or(
        &args,
        "--threads",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    );
    let min_rps = parse_or(&args, "--min-rps", 0.0f64);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| figures_dir().join("BENCH_build.json"));
    let Some(resolution) = Resolution::new(res) else {
        eprintln!("error: resolution {res} out of 0..=15");
        return ExitCode::FAILURE;
    };

    let scenario = ScenarioConfig {
        seed,
        n_vessels: vessels,
        duration_days: days,
        emission: EmissionConfig {
            interval_scale: 10.0,
            ..EmissionConfig::default()
        },
        ..ScenarioConfig::default()
    };
    let cfg = PipelineConfig::default().with_resolution(resolution);
    eprintln!("polbuild: simulating {vessels} vessels over {days} days (seed {seed})...");
    let ds = generate(&scenario);
    let raw_records: u64 = ds.positions.iter().map(|p| p.len() as u64).sum();
    let ports = port_sites(cfg.port_radius_km);
    eprintln!("polbuild: {raw_records} raw reports; staged pass ({threads} threads)...");

    // ---- Staged reference path, one timed stage at a time. ----
    let engine = Engine::new(threads);
    let mut stages: Vec<StageRow> = Vec::new();
    let mut stage = |name: &'static str, input: u64, wall: f64, output: u64, a0, a1| {
        let d = alloc::AllocSnapshot::since(&a1, a0);
        stages.push(StageRow {
            name,
            input_records: input,
            output_records: output,
            wall_ms: wall,
            allocs: d.allocs,
            alloc_bytes: d.bytes,
        });
    };
    let staged_t0 = Instant::now();
    let a0 = alloc::snapshot();

    let t = Instant::now();
    let (cleaned, clean_report) = match clean_and_enrich(
        &engine,
        Dataset::from_partitions(ds.positions.clone()),
        &ds.statics,
        &cfg,
    ) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: clean failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cleaned_count = cleaned.count() as u64;
    let a1 = alloc::snapshot();
    stage(
        "clean",
        raw_records,
        t.elapsed().as_secs_f64() * 1e3,
        cleaned_count,
        a0,
        a1,
    );

    let t = Instant::now();
    let trips = match extract_trips(&engine, cleaned, &ports, &cfg) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: trips failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let with_trips = trips.count() as u64;
    let a2 = alloc::snapshot();
    stage(
        "trips",
        cleaned_count,
        t.elapsed().as_secs_f64() * 1e3,
        with_trips,
        a1,
        a2,
    );

    let t = Instant::now();
    let projected = match project(&engine, trips, &cfg) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: project failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let projected_count = projected.count() as u64;
    let a3 = alloc::snapshot();
    stage(
        "project",
        with_trips,
        t.elapsed().as_secs_f64() * 1e3,
        projected_count,
        a2,
        a3,
    );

    let t = Instant::now();
    let stats = match build_group_stats(&engine, projected, &cfg) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: features failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let group_entries = stats.count() as u64;
    let staged_inventory = Inventory::from_dataset(cfg.resolution, stats, projected_count);
    let a4 = alloc::snapshot();
    stage(
        "features",
        projected_count * 3,
        t.elapsed().as_secs_f64() * 1e3,
        group_entries,
        a3,
        a4,
    );

    let staged_wall_ms = staged_t0.elapsed().as_secs_f64() * 1e3;
    let staged_alloc = alloc::AllocSnapshot::since(&a4, a0);

    // ---- Fused executor, end to end. ----
    eprintln!("polbuild: fused pass...");
    let fused_engine = Engine::new(threads);
    let f0 = alloc::snapshot();
    let fused_t0 = Instant::now();
    let fused = match pol_core::run_fused(
        &fused_engine,
        ds.positions.clone(),
        &ds.statics,
        &ports,
        &cfg,
    ) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: fused run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let fused_wall_ms = fused_t0.elapsed().as_secs_f64() * 1e3;
    let fused_alloc = alloc::AllocSnapshot::since(&alloc::snapshot(), f0);

    // ---- Bit-identity check: the benchmark refuses to report a fused
    // number that does not match the staged oracle. ----
    let staged_bytes = codec::to_bytes(&staged_inventory);
    let fused_bytes = codec::to_bytes(&fused.inventory);
    let counts_match = fused.counts.raw == raw_records
        && fused.counts.cleaned == cleaned_count
        && fused.counts.with_trips == with_trips
        && fused.counts.projected == projected_count
        && fused.counts.group_entries == group_entries
        && fused.clean_report == clean_report;
    if staged_bytes != fused_bytes || !counts_match {
        eprintln!(
            "error: fused output diverged from staged (bytes equal: {}, counts equal: {})",
            staged_bytes == fused_bytes,
            counts_match
        );
        return ExitCode::FAILURE;
    }

    let rps = |wall_ms: f64| {
        if wall_ms > 0.0 {
            raw_records as f64 / (wall_ms / 1e3)
        } else {
            0.0
        }
    };
    let staged_rps = rps(staged_wall_ms);
    let fused_rps = rps(fused_wall_ms);
    let speedup = if fused_wall_ms > 0.0 {
        staged_wall_ms / fused_wall_ms
    } else {
        0.0
    };

    // ---- JSON report. ----
    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"polbuild\",\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"vessels\": {vessels},\n"));
    json.push_str(&format!("  \"days\": {days},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"resolution\": {res},\n"));
    json.push_str(&format!("  \"raw_records\": {raw_records},\n"));
    json.push_str("  \"bit_identical\": true,\n");
    json.push_str("  \"staged_stages\": [\n");
    let rows: Vec<String> = stages.iter().map(json_stage).collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str("  \"fused_stages\": [\n");
    let frows: Vec<String> = fused_engine
        .metrics()
        .report()
        .iter()
        .map(|s| {
            format!(
                "    {{\"name\": \"{}\", \"input_records\": {}, \"output_records\": {}, \
                 \"shuffled_records\": {}, \"wall_ms\": {:.3}}}",
                s.name,
                s.input_records,
                s.output_records,
                s.shuffled_records,
                s.wall.as_secs_f64() * 1e3
            )
        })
        .collect();
    json.push_str(&frows.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str("  \"end_to_end\": {\n");
    json.push_str(&format!(
        "    \"staged_wall_ms\": {staged_wall_ms:.3},\n    \"staged_records_per_sec\": {staged_rps:.1},\n"
    ));
    json.push_str(&format!(
        "    \"fused_wall_ms\": {fused_wall_ms:.3},\n    \"fused_records_per_sec\": {fused_rps:.1},\n"
    ));
    json.push_str(&format!("    \"speedup\": {speedup:.3},\n"));
    json.push_str(&format!(
        "    \"staged_allocs\": {},\n    \"staged_alloc_bytes\": {},\n",
        staged_alloc.allocs, staged_alloc.bytes
    ));
    json.push_str(&format!(
        "    \"fused_allocs\": {},\n    \"fused_alloc_bytes\": {}\n",
        fused_alloc.allocs, fused_alloc.bytes
    ));
    json.push_str("  }\n}\n");
    if let Some(dir) = out_path.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    let mut f = match std::fs::File::create(&out_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", out_path.display());
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = f.write_all(json.as_bytes()) {
        eprintln!("error: cannot write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }

    println!(
        "polbuild: staged {:.0} rec/s, fused {:.0} rec/s ({speedup:.2}x), \
         allocs {} -> {} ({:.1}%), bit-identical",
        staged_rps,
        fused_rps,
        staged_alloc.allocs,
        fused_alloc.allocs,
        if staged_alloc.allocs > 0 {
            fused_alloc.allocs as f64 / staged_alloc.allocs as f64 * 100.0
        } else {
            0.0
        }
    );
    println!("wrote {}", out_path.display());

    if min_rps > 0.0 && fused_rps < min_rps {
        eprintln!("error: fused throughput {fused_rps:.0} rec/s below floor {min_rps:.0} rec/s");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
