//! `polbuild` — the ingestion benchmark: how fast does the build side
//! turn raw AIS reports into an inventory? (The serving-side counterpart
//! is `polload`.)
//!
//! ```text
//! polbuild [--vessels N] [--days D] [--seed S] [--res R] [--threads T[,T2,...]]
//!          [--out FILE] [--min-rps X] [--min-speedup X] [--repeat N] [--profile]
//! ```
//!
//! `--threads` takes a comma-separated list of worker counts and sweeps
//! the whole benchmark across them. For each count the fleetsim workload
//! runs through the **staged** reference pipeline stage by stage (wall
//! time + allocation counters per stage), then through the **fused**
//! morsel-driven executor end to end. The benchmark refuses to report a
//! number unless (a) staged and fused are bit-identical at every count
//! and (b) every count produces the same bytes as every other — the
//! cross-thread check is what proves the radix-partitioned parallel
//! merge is deterministic, not just fast. `figures/BENCH_build.json`
//! records the full sweep; the top-level `end_to_end` block (and the
//! `--min-rps` CI floor) reflect the highest thread count, i.e. the
//! parallel radix-merge path. `--min-speedup` is stricter: it gates on
//! `end_to_end.speedup` at EVERY swept count, so a fused regression at
//! one thread count fails the run even if the headline count is fine.
//! `--profile` prints the engine's per-stage per-worker task breakdown
//! (wall time, allocations, bytes — fed by this binary's counting
//! allocator) after each pass. `--repeat N` (default 3) runs each thread
//! count N times and reports the fastest staged and fastest fused pass —
//! min-of-N is the noise-robust estimator on shared hardware, where a
//! neighbour's CPU burst during one pass would otherwise flip a speedup
//! ratio that has nothing to do with the code under test.

use pol_bench::alloc::{self, CountingAlloc};
use pol_bench::{figures_dir, port_sites};
use pol_core::clean::clean_and_enrich;
use pol_core::features::build_group_stats;
use pol_core::project::project;
use pol_core::trips::extract_trips;
use pol_core::{codec, Inventory, PipelineConfig};
use pol_engine::{Dataset, Engine};
use pol_fleetsim::emit::EmissionConfig;
use pol_fleetsim::scenario::{generate, ScenarioConfig};
use pol_hexgrid::Resolution;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn parse_or<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `--threads` as a comma-separated list of worker counts
/// (`--threads 4` and `--threads 1,4,8` both work). `None` on a
/// malformed list so the caller can reject it instead of silently
/// benchmarking the wrong configuration.
fn parse_threads(args: &[String]) -> Option<Vec<usize>> {
    let Some(raw) = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
    else {
        let default = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        return Some(vec![default]);
    };
    let mut counts = Vec::new();
    for part in raw.split(',') {
        match part.trim().parse::<usize>() {
            Ok(n) if n > 0 => counts.push(n),
            _ => return None,
        }
    }
    if counts.is_empty() {
        None
    } else {
        Some(counts)
    }
}

/// One timed pipeline stage.
struct StageRow {
    name: &'static str,
    input_records: u64,
    output_records: u64,
    wall_ms: f64,
    allocs: u64,
    alloc_bytes: u64,
}

impl StageRow {
    fn records_per_sec(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.input_records as f64 / (self.wall_ms / 1e3)
        } else {
            0.0
        }
    }
}

fn json_stage(row: &StageRow) -> String {
    format!(
        "      {{\"name\": \"{}\", \"input_records\": {}, \"output_records\": {}, \
         \"wall_ms\": {:.3}, \"records_per_sec\": {:.1}, \"allocs\": {}, \"alloc_bytes\": {}}}",
        row.name,
        row.input_records,
        row.output_records,
        row.wall_ms,
        row.records_per_sec(),
        row.allocs,
        row.alloc_bytes
    )
}

/// Everything one thread count's staged + fused pass produced.
struct RunOutcome {
    threads: usize,
    stages: Vec<StageRow>,
    fused_stage_json: Vec<String>,
    staged_wall_ms: f64,
    fused_wall_ms: f64,
    staged_alloc: alloc::AllocSnapshot,
    fused_alloc: alloc::AllocSnapshot,
    /// Canonical inventory bytes; identical across all runs by the time
    /// the report is written.
    bytes: Vec<u8>,
    raw_records: u64,
}

impl RunOutcome {
    fn staged_rps(&self) -> f64 {
        rps(self.raw_records, self.staged_wall_ms)
    }
    fn fused_rps(&self) -> f64 {
        rps(self.raw_records, self.fused_wall_ms)
    }
    fn speedup(&self) -> f64 {
        if self.fused_wall_ms > 0.0 {
            self.staged_wall_ms / self.fused_wall_ms
        } else {
            0.0
        }
    }
}

fn rps(records: u64, wall_ms: f64) -> f64 {
    if wall_ms > 0.0 {
        records as f64 / (wall_ms / 1e3)
    } else {
        0.0
    }
}

/// Runs staged + fused at one thread count and verifies they are
/// bit-identical (the per-count oracle check).
fn run_once(
    threads: usize,
    ds: &pol_fleetsim::scenario::Dataset,
    ports: &[pol_core::records::PortSite],
    cfg: &PipelineConfig,
    profile: bool,
) -> Result<RunOutcome, String> {
    let raw_records: u64 = ds.positions.iter().map(|p| p.len() as u64).sum();
    eprintln!("polbuild: staged pass ({threads} threads)...");

    // ---- Staged reference path, one timed stage at a time. ----
    let engine = Engine::new(threads);
    let mut stages: Vec<StageRow> = Vec::new();
    let mut stage = |name: &'static str, input: u64, wall: f64, output: u64, a0, a1| {
        let d = alloc::AllocSnapshot::since(&a1, a0);
        stages.push(StageRow {
            name,
            input_records: input,
            output_records: output,
            wall_ms: wall,
            allocs: d.allocs,
            alloc_bytes: d.bytes,
        });
    };
    // Clone the input outside the timed region: the copy is identical
    // for both paths and only adds allocator noise to the comparison.
    let staged_input = ds.positions.clone();
    let staged_t0 = Instant::now();
    let a0 = alloc::snapshot();

    let t = Instant::now();
    let (cleaned, clean_report) = clean_and_enrich(
        &engine,
        Dataset::from_partitions(staged_input),
        &ds.statics,
        cfg,
    )
    .map_err(|e| format!("clean failed: {e}"))?;
    let cleaned_count = cleaned.count() as u64;
    let a1 = alloc::snapshot();
    stage(
        "clean",
        raw_records,
        t.elapsed().as_secs_f64() * 1e3,
        cleaned_count,
        a0,
        a1,
    );

    let t = Instant::now();
    let trips =
        extract_trips(&engine, cleaned, ports, cfg).map_err(|e| format!("trips failed: {e}"))?;
    let with_trips = trips.count() as u64;
    let a2 = alloc::snapshot();
    stage(
        "trips",
        cleaned_count,
        t.elapsed().as_secs_f64() * 1e3,
        with_trips,
        a1,
        a2,
    );

    let t = Instant::now();
    let projected = project(&engine, trips, cfg).map_err(|e| format!("project failed: {e}"))?;
    let projected_count = projected.count() as u64;
    let a3 = alloc::snapshot();
    stage(
        "project",
        with_trips,
        t.elapsed().as_secs_f64() * 1e3,
        projected_count,
        a2,
        a3,
    );

    let t = Instant::now();
    let stats =
        build_group_stats(&engine, projected, cfg).map_err(|e| format!("features failed: {e}"))?;
    let group_entries = stats.count() as u64;
    let staged_inventory = Inventory::from_dataset(cfg.resolution, stats, projected_count);
    let a4 = alloc::snapshot();
    stage(
        "features",
        projected_count * 3,
        t.elapsed().as_secs_f64() * 1e3,
        group_entries,
        a3,
        a4,
    );

    let staged_wall_ms = staged_t0.elapsed().as_secs_f64() * 1e3;
    let staged_alloc = alloc::AllocSnapshot::since(&a4, a0);
    if profile {
        eprintln!("polbuild: staged profile ({threads} threads)");
        eprint!("{}", engine.metrics().render_profile());
    }

    // ---- Fused executor, end to end. ----
    eprintln!("polbuild: fused pass ({threads} threads)...");
    let fused_engine = Engine::new(threads);
    let fused_input = ds.positions.clone();
    let f0 = alloc::snapshot();
    let fused_t0 = Instant::now();
    let fused = pol_core::run_fused(&fused_engine, fused_input, &ds.statics, ports, cfg)
        .map_err(|e| format!("fused run failed: {e}"))?;
    let fused_wall_ms = fused_t0.elapsed().as_secs_f64() * 1e3;
    let fused_alloc = alloc::AllocSnapshot::since(&alloc::snapshot(), f0);
    if profile {
        eprintln!("polbuild: fused profile ({threads} threads)");
        eprint!("{}", fused_engine.metrics().render_profile());
    }

    // ---- Bit-identity check: the benchmark refuses to report a fused
    // number that does not match the staged oracle. ----
    let staged_bytes = codec::to_bytes(&staged_inventory);
    let fused_bytes = codec::to_bytes(&fused.inventory);
    let counts_match = fused.counts.raw == raw_records
        && fused.counts.cleaned == cleaned_count
        && fused.counts.with_trips == with_trips
        && fused.counts.projected == projected_count
        && fused.counts.group_entries == group_entries
        && fused.clean_report == clean_report;
    if staged_bytes != fused_bytes || !counts_match {
        return Err(format!(
            "fused output diverged from staged at {threads} threads \
             (bytes equal: {}, counts equal: {counts_match})",
            staged_bytes == fused_bytes,
        ));
    }

    let fused_stage_json: Vec<String> = fused_engine
        .metrics()
        .report()
        .iter()
        .map(|s| {
            format!(
                "      {{\"name\": \"{}\", \"input_records\": {}, \"output_records\": {}, \
                 \"shuffled_records\": {}, \"wall_ms\": {:.3}}}",
                s.name,
                s.input_records,
                s.output_records,
                s.shuffled_records,
                s.wall.as_secs_f64() * 1e3
            )
        })
        .collect();

    Ok(RunOutcome {
        threads,
        stages,
        fused_stage_json,
        staged_wall_ms,
        fused_wall_ms,
        staged_alloc,
        fused_alloc,
        bytes: staged_bytes,
        raw_records,
    })
}

/// Runs `run_once` `repeats` times at one thread count and keeps the
/// fastest staged pass and the fastest fused pass (each with its stage
/// rows and allocation counters). Every repeat still passes the
/// bit-identity oracle, and all repeats must agree on the inventory
/// bytes before their timings are comparable at all.
fn run_best_of(
    repeats: usize,
    threads: usize,
    ds: &pol_fleetsim::scenario::Dataset,
    ports: &[pol_core::records::PortSite],
    cfg: &PipelineConfig,
    profile: bool,
) -> Result<RunOutcome, String> {
    let mut best: Option<RunOutcome> = None;
    for rep in 0..repeats.max(1) {
        let run = run_once(threads, ds, ports, cfg, profile && rep == 0)?;
        best = Some(match best.take() {
            None => run,
            Some(mut b) => {
                if run.bytes != b.bytes {
                    return Err(format!(
                        "inventory bytes differ between repeats at {threads} threads"
                    ));
                }
                if run.staged_wall_ms < b.staged_wall_ms {
                    b.staged_wall_ms = run.staged_wall_ms;
                    b.stages = run.stages;
                    b.staged_alloc = run.staged_alloc;
                }
                if run.fused_wall_ms < b.fused_wall_ms {
                    b.fused_wall_ms = run.fused_wall_ms;
                    b.fused_stage_json = run.fused_stage_json;
                    b.fused_alloc = run.fused_alloc;
                }
                b
            }
        });
    }
    best.ok_or_else(|| "no repeats ran".to_string())
}

fn json_end_to_end(run: &RunOutcome, indent: &str) -> String {
    let mut json = String::new();
    json.push_str(&format!(
        "{indent}\"staged_wall_ms\": {:.3},\n{indent}\"staged_records_per_sec\": {:.1},\n",
        run.staged_wall_ms,
        run.staged_rps()
    ));
    json.push_str(&format!(
        "{indent}\"fused_wall_ms\": {:.3},\n{indent}\"fused_records_per_sec\": {:.1},\n",
        run.fused_wall_ms,
        run.fused_rps()
    ));
    json.push_str(&format!("{indent}\"speedup\": {:.3},\n", run.speedup()));
    json.push_str(&format!(
        "{indent}\"staged_allocs\": {},\n{indent}\"staged_alloc_bytes\": {},\n",
        run.staged_alloc.allocs, run.staged_alloc.bytes
    ));
    json.push_str(&format!(
        "{indent}\"fused_allocs\": {},\n{indent}\"fused_alloc_bytes\": {}\n",
        run.fused_alloc.allocs, run.fused_alloc.bytes
    ));
    json
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let vessels = parse_or(&args, "--vessels", 40usize);
    let days = parse_or(&args, "--days", 7u32);
    let seed = parse_or(&args, "--seed", 42u64);
    let res = parse_or(&args, "--res", 6u8);
    let Some(thread_counts) = parse_threads(&args) else {
        eprintln!("error: --threads takes a comma-separated list of positive counts, e.g. 1,4,8");
        return ExitCode::FAILURE;
    };
    let min_rps = parse_or(&args, "--min-rps", 0.0f64);
    let min_speedup = parse_or(&args, "--min-speedup", 0.0f64);
    let repeats = parse_or(&args, "--repeat", 3usize).max(1);
    let profile = args.iter().any(|a| a == "--profile");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| figures_dir().join("BENCH_build.json"));
    let Some(resolution) = Resolution::new(res) else {
        eprintln!("error: resolution {res} out of 0..=15");
        return ExitCode::FAILURE;
    };

    let scenario = ScenarioConfig {
        seed,
        n_vessels: vessels,
        duration_days: days,
        emission: EmissionConfig {
            interval_scale: 10.0,
            ..EmissionConfig::default()
        },
        ..ScenarioConfig::default()
    };
    let cfg = PipelineConfig::default().with_resolution(resolution);
    eprintln!("polbuild: simulating {vessels} vessels over {days} days (seed {seed})...");
    let ds = generate(&scenario);
    let raw_records: u64 = ds.positions.iter().map(|p| p.len() as u64).sum();
    let ports = port_sites(cfg.port_radius_km);
    eprintln!(
        "polbuild: {raw_records} raw reports; sweeping {} thread count(s): {:?}",
        thread_counts.len(),
        thread_counts
    );

    let mut runs: Vec<RunOutcome> = Vec::new();
    for &threads in &thread_counts {
        match run_best_of(repeats, threads, &ds, &ports, &cfg, profile) {
            Ok(run) => runs.push(run),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // ---- Cross-thread determinism: every worker count must produce the
    // same inventory bytes, or the parallel radix merge is
    // schedule-dependent and its numbers are meaningless. ----
    if let Some((first, rest)) = runs.split_first() {
        for run in rest {
            if run.bytes != first.bytes {
                eprintln!(
                    "error: inventory bytes differ between {} and {} threads — \
                     the parallel merge is not deterministic",
                    first.threads, run.threads
                );
                return ExitCode::FAILURE;
            }
        }
    }
    // `run_once` succeeded for every count, so at least one run exists;
    // the floor and headline reflect the widest (last) configuration.
    let Some(headline) = runs.last() else {
        eprintln!("error: no thread counts were benchmarked");
        return ExitCode::FAILURE;
    };

    // ---- JSON report. ----
    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"polbuild\",\n");
    json.push_str(&format!("  \"threads\": {},\n", headline.threads));
    json.push_str(&format!(
        "  \"threads_swept\": [{}],\n",
        thread_counts
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!("  \"vessels\": {vessels},\n"));
    json.push_str(&format!("  \"days\": {days},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"resolution\": {res},\n"));
    json.push_str(&format!("  \"raw_records\": {raw_records},\n"));
    json.push_str(&format!("  \"repeats\": {repeats},\n"));
    json.push_str("  \"bit_identical\": true,\n");
    json.push_str("  \"cross_thread_identical\": true,\n");
    json.push_str("  \"sweep\": [\n");
    let sweep_rows: Vec<String> = runs
        .iter()
        .map(|run| {
            let mut row = String::from("    {\n");
            row.push_str(&format!("      \"threads\": {},\n", run.threads));
            row.push_str("      \"staged_stages\": [\n");
            let rows: Vec<String> = run.stages.iter().map(json_stage).collect();
            row.push_str(&rows.join(",\n"));
            row.push_str("\n      ],\n");
            row.push_str("      \"fused_stages\": [\n");
            row.push_str(&run.fused_stage_json.join(",\n"));
            row.push_str("\n      ],\n");
            row.push_str("      \"end_to_end\": {\n");
            row.push_str(&json_end_to_end(run, "        "));
            row.push_str("      }\n    }");
            row
        })
        .collect();
    json.push_str(&sweep_rows.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str("  \"end_to_end\": {\n");
    json.push_str(&json_end_to_end(headline, "    "));
    json.push_str("  }\n}\n");
    if let Some(dir) = out_path.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    let mut f = match std::fs::File::create(&out_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", out_path.display());
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = f.write_all(json.as_bytes()) {
        eprintln!("error: cannot write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }

    for run in &runs {
        println!(
            "polbuild[{} threads]: staged {:.0} rec/s, fused {:.0} rec/s ({:.2}x), \
             allocs {} -> {} ({:.1}%), bit-identical",
            run.threads,
            run.staged_rps(),
            run.fused_rps(),
            run.speedup(),
            run.staged_alloc.allocs,
            run.fused_alloc.allocs,
            if run.staged_alloc.allocs > 0 {
                run.fused_alloc.allocs as f64 / run.staged_alloc.allocs as f64 * 100.0
            } else {
                0.0
            }
        );
    }
    if runs.len() > 1 {
        println!(
            "polbuild: all {} thread counts produced identical inventory bytes",
            runs.len()
        );
    }
    println!("wrote {}", out_path.display());

    let fused_rps = headline.fused_rps();
    if min_rps > 0.0 && fused_rps < min_rps {
        eprintln!("error: fused throughput {fused_rps:.0} rec/s below floor {min_rps:.0} rec/s");
        return ExitCode::FAILURE;
    }
    // The speedup floor applies at EVERY swept count: "fused is faster"
    // must hold whether the build runs sequentially or wide.
    if min_speedup > 0.0 {
        let mut failed = false;
        for run in &runs {
            if run.speedup() < min_speedup {
                eprintln!(
                    "error: fused speedup {:.3}x at {} threads below floor {min_speedup:.2}x",
                    run.speedup(),
                    run.threads
                );
                failed = true;
            }
        }
        if failed {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
