//! Shared experiment plumbing: scenario presets, the fleetsim→pipeline
//! adapter, and CSV/figure output helpers.
//!
//! Every `src/bin/` target regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index); the `benches/` targets measure the
//! performance claims. All experiments are deterministic given the
//! scenario seed and print the paper's reported values next to the
//! measured ones.

#![deny(missing_docs)]

pub mod alloc;

use pol_core::records::PortSite;
use pol_core::{PipelineConfig, PipelineOutput};
use pol_engine::Engine;
use pol_fleetsim::emit::EmissionConfig;
use pol_fleetsim::scenario::{generate, Dataset, ScenarioConfig};
use pol_fleetsim::WORLD_PORTS;
use std::io::Write;
use std::path::PathBuf;

/// Seed of the "build" (training) scenario.
pub const TRAIN_SEED: u64 = 42;

/// Seed of held-out evaluation scenarios.
pub const TEST_SEED: u64 = 4242;

/// The standard experiment scenario: laptop-scale but dense enough that
/// consecutive reports land in adjacent cells (compression behaves like
/// the paper's Table 4). ~1 M reports; the scale factor vs the paper's
/// 2.7 B is reported by every experiment.
pub fn experiment_scenario(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        n_vessels: 150,
        duration_days: 14,
        emission: EmissionConfig {
            // ~1 min between under-way reports: 6× sparser than the real
            // protocol, dense enough that per-cell record counts (and so
            // Table 4's compression column) behave like the real archive.
            interval_scale: 10.0,
            ..EmissionConfig::default()
        },
        ..ScenarioConfig::default()
    }
}

/// A quick scenario for iterating (and for criterion benches).
pub fn quick_scenario(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        n_vessels: 40,
        duration_days: 7,
        emission: EmissionConfig {
            interval_scale: 20.0,
            ..EmissionConfig::default()
        },
        ..ScenarioConfig::default()
    }
}

/// Adapts the simulator's port table into pipeline port sites.
pub fn port_sites(radius_km: f64) -> Vec<PortSite> {
    WORLD_PORTS
        .iter()
        .enumerate()
        .map(|(i, p)| PortSite {
            id: i as u16,
            name: p.name.to_string(),
            pos: p.pos(),
            radius_km,
        })
        .collect()
}

/// Looks up a simulator port id by LOCODE.
pub fn port_id(locode: &str) -> u16 {
    pol_fleetsim::ports::port_by_locode(locode)
        // lint: allow(no_unwrap) — bench harness: a typo'd LOCODE in a
        // benchmark scenario should abort the run, not be papered over.
        .unwrap_or_else(|| panic!("unknown port {locode}"))
        .0
         .0
}

/// Which build executor to run — the staged reference pipeline or the
/// fused morsel-driven one. They produce bit-identical inventories
/// (tested); fused is the fast default, staged is the oracle `polbuild`
/// benchmarks against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildExecutor {
    /// [`pol_core::run`] — one materialized `Dataset` per stage.
    Staged,
    /// [`pol_core::run_fused`] — single pass per vessel partition.
    Fused,
}

impl BuildExecutor {
    /// Parses a `--executor` flag value.
    pub fn from_name(name: &str) -> Option<BuildExecutor> {
        match name {
            "staged" => Some(BuildExecutor::Staged),
            "fused" => Some(BuildExecutor::Fused),
            _ => None,
        }
    }
}

/// Runs the chosen executor over an already-generated dataset on an
/// explicit engine (so callers control thread count and read the
/// engine's stage metrics afterwards).
pub fn build_inventory_on(
    engine: &Engine,
    ds: &Dataset,
    pipeline: &PipelineConfig,
    executor: BuildExecutor,
) -> PipelineOutput {
    let ports = port_sites(pipeline.port_radius_km);
    let positions = ds.positions.clone();
    match executor {
        BuildExecutor::Staged => pol_core::run(engine, positions, &ds.statics, &ports, pipeline),
        BuildExecutor::Fused => {
            pol_core::run_fused(engine, positions, &ds.statics, &ports, pipeline)
        }
    }
    // lint: allow(no_unwrap) — bench harness: a failed pipeline build
    // invalidates every number downstream; abort loudly.
    .expect("pipeline run failed")
}

/// Generates a scenario and runs the full pipeline over it (fused
/// executor — bit-identical to staged, materially faster).
pub fn build_inventory(
    scenario: &ScenarioConfig,
    pipeline: &PipelineConfig,
) -> (Dataset, PipelineOutput) {
    let ds = generate(scenario);
    let engine = Engine::with_available_parallelism();
    let out = build_inventory_on(&engine, &ds, pipeline, BuildExecutor::Fused);
    (ds, out)
}

/// The repository's `figures/` output directory.
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("figures");
    // lint: allow(no_unwrap) — bench harness: figures/ must be writable
    // for any result to land; fail fast.
    std::fs::create_dir_all(&dir).expect("create figures dir");
    dir
}

/// Writes a CSV into `figures/` and returns its path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = figures_dir().join(name);
    // lint: allow(no_unwrap) — bench harness: a partially written figure
    // CSV is worse than an aborted run.
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create csv"));
    writeln!(f, "{header}").expect("write header");
    for r in rows {
        writeln!(f, "{r}").expect("write row");
    }
    f.flush().expect("flush csv"); // lint: allow(no_unwrap) — harness policy above
    path
}

/// Formats seconds as hours with one decimal.
pub fn hours(secs: f64) -> f64 {
    secs / 3600.0
}

/// The best-covered `(origin, dest, segment)` route keys of an inventory,
/// by number of cells holding the key, descending. §4.1.2/§4.1.3 of the
/// paper apply to "known sea routes" — these are the known ones.
pub fn top_route_keys(
    inv: &pol_core::Inventory,
    min_cells: usize,
    n: usize,
) -> Vec<(u16, u16, pol_ais::types::MarketSegment, usize)> {
    use pol_core::features::GroupKey;
    let mut counts: std::collections::HashMap<(u16, u16, u8), usize> =
        std::collections::HashMap::new();
    for (key, _) in inv.iter() {
        if let GroupKey::CellRoute(_, o, d, seg) = key {
            *counts.entry((*o, *d, seg.id())).or_insert(0) += 1;
        }
    }
    let mut all: Vec<_> = counts
        .into_iter()
        .filter(|(_, c)| *c >= min_cells)
        .map(|((o, d, s), c)| {
            (
                o,
                d,
                // lint: allow(no_unwrap) — the id was produced by
                // `MarketSegment::id()` at insert time.
                pol_ais::types::MarketSegment::from_id(s).expect("stored id valid"),
                c,
            )
        })
        .collect();
    all.sort_by(|a, b| b.3.cmp(&a.3).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
    all.truncate(n);
    all
}

/// Simulates one fresh voyage along a given port pair (a "new vessel" on a
/// known route: same lanes, different noise/speed) and returns its emitted
/// reports plus the true arrival time. `None` when the lane graph cannot
/// route the pair.
pub fn simulate_voyage(
    origin: u16,
    dest: u16,
    speed_kn: f64,
    departure: i64,
    seed: u64,
) -> Option<(i64, Vec<pol_ais::PositionReport>)> {
    use pol_fleetsim::emit::emit_reports;
    use pol_fleetsim::lanes::{LaneGraph, RouteOptions};
    use pol_fleetsim::voyage::{Activity, VoyagePlan};
    use pol_fleetsim::{PortId, Rng};
    let route = LaneGraph::global().route(PortId(origin), PortId(dest), RouteOptions::default())?;
    let plan = VoyagePlan {
        origin: PortId(origin),
        dest: PortId(dest),
        departure,
        speed_kn,
        route,
    };
    let arrival = plan.arrival();
    let acts = vec![Activity::Voyage(plan)];
    let mut rng = Rng::new(seed);
    let emission = EmissionConfig {
        interval_scale: 10.0,
        dropout: 0.05,
        gps_noise_m: 30.0,
        corrupt_rate: 0.0,
    };
    let reports = emit_reports(
        pol_ais::types::Mmsi(900_000_000 + (seed % 99_999_999) as u32),
        &acts,
        departure,
        arrival + 1,
        &emission,
        &mut rng,
    );
    Some((arrival, reports))
}

/// A plausible cruise speed for a segment (used when replaying voyages).
pub fn typical_speed_kn(seg: pol_ais::types::MarketSegment) -> f64 {
    use pol_ais::types::MarketSegment::*;
    match seg {
        Container => 17.5,
        DryBulk => 12.5,
        Tanker => 13.0,
        Gas => 17.0,
        GeneralCargo => 14.0,
        Passenger => 20.0,
        Other => 12.0,
    }
}

/// The reports a vessel emitted during one ground-truth voyage, in time
/// order (the evaluation binaries sample these).
pub fn reports_for_voyage<'a>(
    ds: &'a Dataset,
    v: &pol_fleetsim::scenario::VoyageTruth,
) -> Vec<&'a pol_ais::PositionReport> {
    let Some(idx) = ds.fleet.iter().position(|f| f.mmsi == v.mmsi) else {
        return Vec::new();
    };
    ds.positions[idx]
        .iter()
        .filter(|r| r.timestamp >= v.departure && r.timestamp <= v.arrival)
        .collect()
}

/// Prints a standard experiment banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{title}");
    println!("(reproduces {paper_ref}; synthetic substrate, see DESIGN.md)");
    println!("================================================================");
}
