//! A counting global allocator for the benchmark binaries.
//!
//! Wraps the system allocator with relaxed atomic counters so `polbuild`
//! (and `polinv build --timings`) can report allocations and bytes per
//! pipeline stage — the cost the fused executor exists to avoid. Every
//! call also feeds `pol_engine::profile::note_alloc`, the thread-local
//! counters behind `polbuild --profile`'s per-worker breakdown. Install
//! it in a binary with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: pol_bench::alloc::CountingAlloc = pol_bench::alloc::CountingAlloc;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A point-in-time reading of the allocation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation calls (alloc + realloc) since process start.
    pub allocs: u64,
    /// Bytes requested since process start.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Counter growth since an earlier snapshot.
    pub fn since(&self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Current counter values. Counters only move when a binary installs
/// [`CountingAlloc`] as its `#[global_allocator]`.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}

/// The counting allocator: every call forwards verbatim to [`System`]
/// after bumping the counters (relaxed ordering — counts are advisory
/// telemetry, not synchronization).
pub struct CountingAlloc;

// SAFETY: every method forwards verbatim to `System`, which upholds the
// GlobalAlloc contract; the added atomic increments cannot affect the
// returned memory; tested by: counting_alloc_forwards_and_counts.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds the GlobalAlloc contract; forwarded verbatim;
    // tested by: counting_alloc_forwards_and_counts.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        pol_engine::profile::note_alloc(layout.size());
        // SAFETY: same layout, same contract as the caller's;
        // tested by: counting_alloc_forwards_and_counts.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds the GlobalAlloc contract; forwarded verbatim;
    // tested by: counting_alloc_forwards_and_counts.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same pointer/layout pair the caller owns;
        // tested by: counting_alloc_forwards_and_counts.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds the GlobalAlloc contract; forwarded verbatim;
    // tested by: counting_alloc_forwards_and_counts.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        pol_engine::profile::note_alloc(new_size);
        // SAFETY: same pointer/layout/new_size triple as the caller's;
        // tested by: counting_alloc_forwards_and_counts.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta_is_monotone() {
        let a = snapshot();
        let b = snapshot();
        let d = b.since(a);
        // Without the allocator installed the counters stay flat; with it
        // they only grow. Either way the delta is non-negative by type.
        assert!(d.allocs <= b.allocs);
        assert_eq!(AllocSnapshot::default().since(b).allocs, 0);
    }
}
