//! The §4 efficiency claim: answering "what is the statistical summary of
//! this location?" from the inventory versus recomputing it with a full
//! scan over the raw records. The paper reports the inventory needs 99.73%
//! (res 6) / 98.44% (res 7) fewer record hits; this bench measures both
//! the hit ratio and the wall-clock speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use pol_bench::{build_inventory, quick_scenario, TRAIN_SEED};
use pol_core::PipelineConfig;
use pol_hexgrid::{cell_at, Resolution};
use pol_sketch::Welford;

fn bench_query(c: &mut Criterion) {
    let cfg = PipelineConfig::default();
    let (ds, out) = build_inventory(&quick_scenario(TRAIN_SEED), &cfg);
    let inv = out.inventory;
    let all_reports: Vec<_> = ds.positions.iter().flatten().copied().collect();
    let res = Resolution::new(6).unwrap();

    // Pick the busiest cell as the query location.
    let (query_cell, _) = inv
        .iter()
        .filter_map(|(k, s)| match k {
            pol_core::features::GroupKey::Cell(c) => Some((*c, s.records)),
            _ => None,
        })
        .max_by_key(|(_, r)| *r)
        .expect("non-empty inventory");

    // Report the hit-ratio equivalent of Table 4's compression column.
    let cov = inv.coverage();
    eprintln!(
        "query_vs_scan: full scan touches {} records; inventory lookup touches 1 entry \
         ({}x fewer hits; this dataset's compression: {:.2}%; paper reports 99.73% fewer \
         hits at res 6)",
        all_reports.len(),
        all_reports.len(),
        cov.compression * 100.0
    );

    let mut g = c.benchmark_group("query_vs_scan");
    g.bench_function("inventory_lookup", |b| {
        b.iter(|| {
            let s = inv.summary(query_cell).expect("busiest cell exists");
            std::hint::black_box((s.records, s.speed.mean()))
        })
    });
    g.bench_function("full_scan_recompute", |b| {
        b.iter(|| {
            // What answering without the inventory costs: scan every raw
            // record, project it, and aggregate the matching ones.
            let mut w = Welford::new();
            let mut records = 0u64;
            for r in &all_reports {
                if cell_at(r.pos, res) == query_cell {
                    records += 1;
                    if let Some(s) = r.sog_knots {
                        w.add(s);
                    }
                }
            }
            std::hint::black_box((records, w.mean()))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
