//! Pipeline throughput: records/second for the full methodology, swept
//! over worker threads and partition counts — the engine-substitution
//! check (the paper's Spark setup scales the same stages over 128 vcores;
//! here we verify the stage structure parallelises at all and measure the
//! single-node cost per record).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pol_bench::{port_sites, quick_scenario, TRAIN_SEED};
use pol_core::PipelineConfig;
use pol_engine::Engine;
use pol_fleetsim::scenario::generate;

fn bench_pipeline(c: &mut Criterion) {
    let ds = generate(&quick_scenario(TRAIN_SEED));
    let total: usize = ds.positions.iter().map(Vec::len).sum();
    let cfg = PipelineConfig::default();
    let ports = port_sites(cfg.port_radius_km);

    let mut g = c.benchmark_group("pipeline_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(total as u64));
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                let engine = Engine::new(threads);
                b.iter(|| {
                    let out =
                        pol_core::run(&engine, ds.positions.clone(), &ds.statics, &ports, &cfg)
                            .expect("pipeline run failed");
                    std::hint::black_box(out.counts.group_entries)
                });
            },
        );
    }
    g.finish();

    // Stage split: cleaning alone (the scan-heavy stage).
    let mut g = c.benchmark_group("pipeline_stages");
    g.sample_size(10);
    g.throughput(Throughput::Elements(total as u64));
    g.bench_function("clean_and_enrich", |b| {
        let engine = Engine::new(2);
        b.iter(|| {
            let raw = pol_engine::Dataset::from_partitions(ds.positions.clone());
            let (cleaned, _) = pol_core::clean::clean_and_enrich(&engine, raw, &ds.statics, &cfg)
                .expect("clean stage failed");
            std::hint::black_box(cleaned.count())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
