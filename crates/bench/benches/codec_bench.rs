//! Inventory persistence: serialize/deserialize throughput and the
//! bytes-per-entry footprint of the "compact data model".

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pol_bench::{build_inventory, quick_scenario, TRAIN_SEED};
use pol_core::{codec, PipelineConfig};

fn bench_codec(c: &mut Criterion) {
    let (_, out) = build_inventory(&quick_scenario(TRAIN_SEED), &PipelineConfig::default());
    let inv = out.inventory;
    let bytes = codec::to_bytes(&inv);
    eprintln!(
        "codec: {} entries, {} records -> {} bytes ({:.0} B/entry, {:.1} B/input-record)",
        inv.len(),
        inv.total_records(),
        bytes.len(),
        bytes.len() as f64 / inv.len().max(1) as f64,
        bytes.len() as f64 / inv.total_records().max(1) as f64
    );

    let mut g = c.benchmark_group("codec");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("serialize", |b| {
        b.iter(|| std::hint::black_box(codec::to_bytes(&inv).len()))
    });
    g.bench_function("deserialize", |b| {
        b.iter(|| {
            let back = codec::from_bytes(&bytes).expect("self-produced bytes decode");
            std::hint::black_box(back.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
