//! Ablation of the statistics substrate: Greenwald–Khanna (what Spark's
//! `approx_percentile`, and therefore the paper, uses) vs the t-digest
//! alternative, and HyperLogLog vs exact sets — speed here, accuracy
//! printed alongside, on an AIS-shaped bimodal speed distribution
//! (moored mass at ~0 kn plus a cruise mode).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pol_sketch::{Distinct, GkSketch, HyperLogLog, TDigest};

/// Bimodal AIS-like speed stream.
fn speeds(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            if i % 3 == 0 {
                ((i * 31) % 100) as f64 / 200.0 // moored: 0..0.5 kn
            } else {
                12.0 + ((i * 17) % 800) as f64 / 100.0 // cruise: 12..20 kn
            }
        })
        .collect()
}

fn bench_quantiles(c: &mut Criterion) {
    let data = speeds(100_000);
    let mut sorted = data.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let truth = |phi: f64| sorted[(phi * (sorted.len() - 1) as f64) as usize];

    // Print accuracy once (criterion output is for speed).
    let mut gk = GkSketch::new(0.02);
    let mut td = TDigest::new(100.0);
    data.iter().for_each(|&x| {
        gk.add(x);
        td.add(x);
    });
    for phi in [0.1, 0.5, 0.9] {
        eprintln!(
            "sketch_ablation p{:.0}: truth {:.3} | GK {:.3} | t-digest {:.3}",
            phi * 100.0,
            truth(phi),
            gk.quantile(phi).unwrap(),
            td.quantile(phi).unwrap()
        );
    }

    let mut g = c.benchmark_group("quantile_sketch_insert");
    g.throughput(Throughput::Elements(data.len() as u64));
    g.bench_function("gk_eps_0.02", |b| {
        b.iter(|| {
            let mut s = GkSketch::new(0.02);
            data.iter().for_each(|&x| s.add(x));
            std::hint::black_box(s.count())
        })
    });
    g.bench_function("tdigest_d100", |b| {
        b.iter(|| {
            let mut s = TDigest::new(100.0);
            data.iter().for_each(|&x| s.add(x));
            std::hint::black_box(s.count())
        })
    });
    g.bench_function("exact_sort", |b| {
        b.iter(|| {
            let mut v = data.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            std::hint::black_box(v[v.len() / 2])
        })
    });
    g.finish();
}

fn bench_distinct(c: &mut Criterion) {
    let ids: Vec<u64> = (0..100_000u64)
        .map(|i| (i * 2_654_435_761) % 60_000)
        .collect();
    let mut hll = HyperLogLog::new(12);
    ids.iter().for_each(|i| hll.add(i));
    let exact = ids.iter().collect::<std::collections::HashSet<_>>().len();
    eprintln!(
        "sketch_ablation distinct: truth {exact} | HLL(p=12) {:.0}",
        hll.estimate()
    );

    let mut g = c.benchmark_group("distinct_count");
    g.throughput(Throughput::Elements(ids.len() as u64));
    g.bench_function("hll_p12", |b| {
        b.iter(|| {
            let mut s = HyperLogLog::new(12);
            ids.iter().for_each(|i| s.add(i));
            std::hint::black_box(s.estimate())
        })
    });
    g.bench_function("adaptive_distinct", |b| {
        b.iter(|| {
            let mut s = Distinct::new();
            ids.iter().for_each(|i| s.add(i));
            std::hint::black_box(s.estimate())
        })
    });
    g.bench_function("exact_hashset", |b| {
        b.iter(|| {
            let s: std::collections::HashSet<_> = ids.iter().collect();
            std::hint::black_box(s.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_quantiles, bench_distinct);
criterion_main!(benches);
