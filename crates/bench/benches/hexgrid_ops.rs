//! Hexgrid microbenchmarks: the §3.2.1 requirement that the spatial index
//! be "performant" — latlon→cell is the pipeline's hottest single
//! operation (once per record per resolution).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pol_geo::LatLon;
use pol_hexgrid::{cell_at, cell_boundary, cell_center, children, grid_disk, parent, Resolution};

fn bench_hexgrid(c: &mut Criterion) {
    let res6 = Resolution::new(6).unwrap();
    let res7 = Resolution::new(7).unwrap();
    // A deterministic scatter of maritime-looking positions.
    let points: Vec<LatLon> = (0..10_000)
        .map(|i| {
            let lat = -60.0 + ((i * 7919) % 12_000) as f64 / 100.0;
            let lon = -180.0 + ((i * 104_729) % 36_000) as f64 / 100.0;
            LatLon::new(lat, lon).unwrap()
        })
        .collect();
    let cells: Vec<_> = points.iter().map(|p| cell_at(*p, res6)).collect();

    let mut g = c.benchmark_group("hexgrid");
    g.throughput(Throughput::Elements(points.len() as u64));
    g.bench_function("latlon_to_cell_res6", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &points {
                acc ^= cell_at(*p, res6).raw();
            }
            std::hint::black_box(acc)
        })
    });
    g.bench_function("latlon_to_cell_res7", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &points {
                acc ^= cell_at(*p, res7).raw();
            }
            std::hint::black_box(acc)
        })
    });
    g.bench_function("cell_center", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for c in &cells {
                acc += cell_center(*c).lat();
            }
            std::hint::black_box(acc)
        })
    });
    g.bench_function("parent", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for c in &cells {
                acc ^= parent(*c).map(|p| p.raw()).unwrap_or(0);
            }
            std::hint::black_box(acc)
        })
    });
    g.bench_function("children", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for c in &cells {
                if let Some(kids) = children(*c) {
                    acc ^= kids[3].raw();
                }
            }
            std::hint::black_box(acc)
        })
    });
    g.bench_function("boundary", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for c in cells.iter().take(1_000) {
                acc += cell_boundary(*c)[0].lon();
            }
            std::hint::black_box(acc)
        })
    });
    g.finish();

    let mut g = c.benchmark_group("hexgrid_disk");
    for k in [1u32, 3, 8] {
        g.bench_function(format!("grid_disk_k{k}"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for c in cells.iter().take(200) {
                    acc += grid_disk(*c, k).len();
                }
                std::hint::black_box(acc)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hexgrid);
criterion_main!(benches);
