//! Grid inventory vs the clustering family (§2's related work): build the
//! per-cell summaries and, on the same points, run DBSCAN and the k-means
//! route extraction. The paper's position — the grid method scales
//! predictably where density-based clustering is eps-sensitive and
//! quadratic-ish — shows up as the cost gap here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pol_baselines::{dbscan, extract_route, DbscanParams};
use pol_bench::{quick_scenario, TRAIN_SEED};
use pol_fleetsim::scenario::generate;
use pol_geo::LatLon;
use pol_hexgrid::{cell_at, Resolution};
use pol_sketch::hash::FxHashMap;

fn bench_comparison(c: &mut Criterion) {
    let ds = generate(&quick_scenario(TRAIN_SEED));
    let points: Vec<LatLon> = ds.positions.iter().flatten().map(|r| r.pos).collect();
    let res = Resolution::new(6).unwrap();

    for n in [5_000usize, 20_000] {
        let sample: Vec<LatLon> = points.iter().take(n).copied().collect();
        let mut g = c.benchmark_group(format!("grid_vs_clustering_{n}"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(sample.len() as u64));
        g.bench_with_input(BenchmarkId::new("grid_summaries", n), &sample, |b, pts| {
            b.iter(|| {
                // The inventory's core operation: project + count per cell.
                let mut cells: FxHashMap<u64, u64> = FxHashMap::default();
                for p in pts {
                    *cells.entry(cell_at(*p, res).raw()).or_insert(0) += 1;
                }
                std::hint::black_box(cells.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("dbscan_eps5km", n), &sample, |b, pts| {
            b.iter(|| {
                let (labels, k) = dbscan(
                    pts,
                    DbscanParams {
                        eps_km: 5.0,
                        min_pts: 5,
                    },
                );
                std::hint::black_box((labels.len(), k))
            })
        });
        g.bench_with_input(
            BenchmarkId::new("kmeans_route_k20", n),
            &sample,
            |b, pts| {
                b.iter(|| {
                    let tracks = vec![pts.clone()];
                    std::hint::black_box(extract_route(&tracks, 20, 7).map(|r| r.length_km))
                })
            },
        );
        g.finish();
    }
}

criterion_group!(benches, bench_comparison);
criterion_main!(benches);
