//! Installs [`pol_bench::alloc::CountingAlloc`] as this test binary's
//! global allocator and proves the counters move with real allocations —
//! the integration the `SAFETY` contracts in `alloc.rs` cite.

use pol_bench::alloc::{snapshot, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn counting_alloc_forwards_and_counts() {
    let before = snapshot();
    // Allocation: a fresh Vec with a forced heap block.
    let mut v: Vec<u64> = Vec::with_capacity(1024);
    v.extend(0..1024);
    // Reallocation: grow past the initial capacity.
    v.extend(0..4096);
    let after = snapshot();
    let delta = after.since(before);
    assert!(
        delta.allocs >= 2,
        "alloc+realloc must be counted: {delta:?}"
    );
    assert!(
        delta.bytes >= 1024 * std::mem::size_of::<u64>() as u64,
        "byte counter must cover the requested block: {delta:?}"
    );
    // The memory itself is usable and correct — the forwarded System
    // allocator really served it.
    assert_eq!(v.len(), 5120);
    assert_eq!(v[1023], 1023);
    drop(v); // dealloc path runs without corruption
}
