//! Allocation-budget regression gate for the fused build path.
//!
//! Installs [`pol_bench::alloc::CountingAlloc`] as the test binary's
//! global allocator, warms a fused engine once (first run pays for the
//! per-worker scratch, thread-local buffers and sketch spill vectors),
//! then pins the *steady-state* allocation count of a full fused build.
//! The committed baseline before the scratch-arena rewrite was 401,610
//! allocations for the default `polbuild` workload; the budget here is
//! more than an order of magnitude below that, scaled to the smaller
//! test workload — a regression that reintroduces per-vessel or
//! per-record allocation blows through it immediately.

use pol_bench::alloc::{snapshot, CountingAlloc};
use pol_bench::{build_inventory_on, BuildExecutor};
use pol_core::{codec, PipelineConfig};
use pol_engine::Engine;
use pol_fleetsim::emit::EmissionConfig;
use pol_fleetsim::scenario::{generate, ScenarioConfig};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The CI smoke workload (matches `ci.sh`'s polbuild invocation scale).
fn scenario() -> ScenarioConfig {
    ScenarioConfig {
        seed: 42,
        n_vessels: 10,
        duration_days: 3,
        emission: EmissionConfig {
            interval_scale: 10.0,
            ..EmissionConfig::default()
        },
        ..ScenarioConfig::default()
    }
}

#[test]
fn fused_steady_state_allocations_stay_pinned() {
    let ds = generate(&scenario());
    let raw: u64 = ds.positions.iter().map(|p| p.len() as u64).sum();
    assert!(raw > 10_000, "workload too small to be meaningful: {raw}");
    let cfg = PipelineConfig::default();

    let engine = Engine::new(2);
    // Warm-up: first run allocates the per-worker scratch arenas.
    let warm = build_inventory_on(&engine, &ds, &cfg, BuildExecutor::Fused);

    // Steady state: same engine, warm scratch.
    let before = snapshot();
    let steady = build_inventory_on(&engine, &ds, &cfg, BuildExecutor::Fused);
    let delta = snapshot().since(before);

    // Same bytes both times — the reuse must not leak state across runs.
    assert_eq!(
        codec::to_bytes(&warm.inventory),
        codec::to_bytes(&steady.inventory),
        "scratch reuse changed the inventory"
    );

    // The budget: the pre-rewrite fused path spent ~401k allocations on a
    // workload ~5x this size (~28k scaled); steady state now runs in the
    // low thousands. 2x headroom over the measured count keeps the gate
    // insensitive to hash-map growth jitter without letting per-record
    // allocation creep back in.
    eprintln!(
        "fused steady-state: {} allocs for {raw} records",
        delta.allocs
    );
    assert!(
        delta.allocs < 5_000,
        "fused steady-state allocation budget exceeded: {} allocs for {raw} records",
        delta.allocs
    );
}

/// The staged `features` stage was the other allocation hot spot named in
/// the profiling work (it builds one combiner per (key, partition) with
/// eight sketches each). The inline small-storage rewrite of those
/// sketches must keep the whole staged pipeline — features included —
/// well under the old fused baseline too.
#[test]
fn staged_pipeline_allocations_stay_reduced() {
    let ds = generate(&scenario());
    let cfg = PipelineConfig::default();
    let engine = Engine::new(2);
    let _ = build_inventory_on(&engine, &ds, &cfg, BuildExecutor::Staged);
    let before = snapshot();
    let _ = build_inventory_on(&engine, &ds, &cfg, BuildExecutor::Staged);
    let delta = snapshot().since(before);
    eprintln!("staged steady-state: {} allocs", delta.allocs);
    assert!(
        delta.allocs < 8_000,
        "staged steady-state allocation count regressed: {}",
        delta.allocs
    );
}
