//! Property tests for the data substrate: whatever the seed, the simulator
//! must produce datasets the pipeline's contracts hold for.

use pol_fleetsim::emit::EmissionConfig;
use pol_fleetsim::lanes::{LaneGraph, RouteOptions};
use pol_fleetsim::ports::{PortId, WORLD_PORTS};
use pol_fleetsim::scenario::{generate, ScenarioConfig};
use proptest::prelude::*;

fn tiny_cfg(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        n_vessels: 6,
        duration_days: 4,
        emission: EmissionConfig {
            interval_scale: 60.0,
            ..EmissionConfig::default()
        },
        ..ScenarioConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn any_seed_yields_valid_reports(seed in 0u64..10_000) {
        let ds = generate(&tiny_cfg(seed));
        prop_assert_eq!(ds.positions.len(), 6);
        let mut reports = 0usize;
        for (vi, part) in ds.positions.iter().enumerate() {
            for r in part {
                reports += 1;
                prop_assert_eq!(r.mmsi, ds.fleet[vi].mmsi);
                prop_assert!(r.timestamp >= ds.config.start);
                prop_assert!(r.timestamp < ds.config.end());
                // Positions are always valid LatLon by construction; speeds
                // may exceed protocol range only via corruption injection.
            }
        }
        prop_assert!(reports > 100, "suspiciously few reports: {reports}");
    }

    #[test]
    fn out_of_order_fraction_is_bounded_by_corruption(seed in 0u64..5_000) {
        let mut cfg = tiny_cfg(seed);
        cfg.emission.corrupt_rate = 0.0;
        let ds = generate(&cfg);
        for part in &ds.positions {
            for w in part.windows(2) {
                prop_assert!(w[0].timestamp <= w[1].timestamp,
                    "uncorrupted streams are time-ordered");
            }
        }
    }

    #[test]
    fn truth_windows_nest_and_orient(seed in 0u64..5_000) {
        let ds = generate(&tiny_cfg(seed));
        for v in &ds.truth {
            prop_assert!(v.arrival > v.departure);
            prop_assert_ne!(v.origin, v.dest);
            prop_assert!(v.distance_km > 0.0);
            prop_assert!((v.origin.0 as usize) < WORLD_PORTS.len());
            prop_assert!((v.dest.0 as usize) < WORLD_PORTS.len());
        }
        // Per vessel, voyages are disjoint in time and chain ports.
        for vessel in &ds.fleet {
            let mut voyages: Vec<_> = ds.truth.iter().filter(|v| v.mmsi == vessel.mmsi).collect();
            voyages.sort_by_key(|v| v.departure);
            for w in voyages.windows(2) {
                prop_assert!(w[0].arrival <= w[1].departure, "voyages overlap");
                prop_assert_eq!(w[0].dest, w[1].origin, "voyages must chain");
            }
        }
    }

    #[test]
    fn routing_is_symmetric_in_distance(a in 0u16..126, b in 0u16..126) {
        prop_assume!(a != b);
        let g = LaneGraph::global();
        let ab = g.route(PortId(a), PortId(b), RouteOptions::default());
        let ba = g.route(PortId(b), PortId(a), RouteOptions::default());
        match (ab, ba) {
            (Some(x), Some(y)) => {
                prop_assert!((x.distance_km - y.distance_km).abs() < 1e-6,
                    "{} vs {}", x.distance_km, y.distance_km);
            }
            (None, None) => {}
            _ => prop_assert!(false, "asymmetric reachability"),
        }
    }

    #[test]
    fn route_polyline_length_matches_reported(a in 0u16..126, b in 0u16..126) {
        prop_assume!(a != b);
        let g = LaneGraph::global();
        if let Some(r) = g.route(PortId(a), PortId(b), RouteOptions::default()) {
            let polyline: f64 = r
                .points
                .windows(2)
                .map(|w| pol_geo::haversine_km(w[0], w[1]))
                .sum();
            prop_assert!((polyline - r.distance_km).abs() < 1.0,
                "polyline {polyline} vs reported {}", r.distance_km);
            // Never shorter than the great circle.
            let gc = pol_geo::haversine_km(r.points[0], *r.points.last().unwrap());
            prop_assert!(r.distance_km >= gc - 1.0);
        }
    }

    #[test]
    fn avoiding_canals_never_shortens(a in 0u16..126, b in 0u16..126) {
        prop_assume!(a != b);
        let g = LaneGraph::global();
        let open = g.route(PortId(a), PortId(b), RouteOptions::default());
        let closed = g.route(
            PortId(a),
            PortId(b),
            RouteOptions { avoid_suez: true, avoid_panama: true },
        );
        if let (Some(o), Some(c)) = (open, closed) {
            prop_assert!(c.distance_km >= o.distance_km - 1e-6);
        }
    }
}
