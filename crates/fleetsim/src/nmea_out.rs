//! Raw-wire output: renders a simulated dataset as the NMEA AIVDM line
//! stream a real receiving network would log, interleaving position
//! reports (type 1) with periodic static & voyage broadcasts (type 5,
//! two sentences) — the paper's actual input format at the lowest level.

use crate::scenario::Dataset;
use pol_ais::encode::{encode_position_a, encode_static_voyage};
use pol_ais::nmea::Sentence;
use pol_ais::PositionReport;

/// How often each vessel re-broadcasts its static data, seconds (the
/// protocol schedules type 5 every 6 minutes; scaled like emission).
pub const STATIC_INTERVAL_SECS: i64 = 6 * 60 * 30;

/// Renders one position report as a wire line.
pub fn position_line(report: &PositionReport) -> String {
    let (payload, fill) = encode_position_a(report);
    Sentence::wrap(&payload, fill, 0)
        .pop()
        // lint: allow(no_unwrap) — a type-1 report armours to 28 chars,
        // well under the 60-char fragmentation limit, so wrap() returns
        // exactly one sentence.
        .expect("type 1 fits one sentence")
        .to_line()
}

/// Renders a whole dataset as a time-ordered NMEA line stream.
///
/// Position reports become type-1 sentences; every vessel additionally
/// broadcasts its static report (type 5, spanning two sentences) on first
/// appearance and every [`STATIC_INTERVAL_SECS`] thereafter. Lines come
/// out globally time-sorted, like a single receiver archive.
pub fn to_nmea_lines(ds: &Dataset) -> Vec<String> {
    // (timestamp, tiebreak, line)
    let mut timed: Vec<(i64, u8, String)> = Vec::new();
    let mut msg_id: u8 = 0;
    for (vi, part) in ds.positions.iter().enumerate() {
        let static_report = &ds.statics[vi];
        let mut next_static = i64::MIN;
        for r in part {
            if r.timestamp >= next_static {
                let (payload, fill) = encode_static_voyage(static_report, "", 0.0);
                msg_id = msg_id.wrapping_add(1) % 10;
                for s in Sentence::wrap(&payload, fill, msg_id) {
                    // Static broadcasts sort before the position at the
                    // same instant.
                    timed.push((r.timestamp, 0, s.to_line()));
                }
                next_static = r.timestamp + STATIC_INTERVAL_SECS;
            }
            timed.push((r.timestamp, 1, position_line(r)));
        }
    }
    timed.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    timed.into_iter().map(|(_, _, l)| l).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{generate, ScenarioConfig};
    use pol_ais::decode::{decode_payload, AisMessage};
    use pol_ais::nmea::Assembler;

    fn tiny() -> Dataset {
        generate(&ScenarioConfig {
            n_vessels: 3,
            duration_days: 2,
            ..ScenarioConfig::tiny()
        })
    }

    #[test]
    fn every_line_parses_and_decodes() {
        let ds = tiny();
        let lines = to_nmea_lines(&ds);
        assert!(lines.len() > ds.total_reports(), "statics add lines");
        let mut asm = Assembler::new();
        let mut positions = 0;
        let mut statics = 0;
        for line in &lines {
            let s = Sentence::parse(line).expect("self-produced NMEA parses");
            if let Some((payload, fill)) = asm.push(s) {
                match decode_payload(&payload, fill).expect("valid payload") {
                    AisMessage::PositionA { .. } => positions += 1,
                    AisMessage::StaticVoyage { .. } => statics += 1,
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert_eq!(positions, ds.total_reports());
        assert!(statics >= 3, "each vessel broadcasts static data");
        assert_eq!(asm.pending(), 0, "no dangling fragments");
    }

    #[test]
    fn static_rebroadcast_cadence() {
        let ds = tiny();
        let lines = to_nmea_lines(&ds);
        // Type 5 spans two sentences; fragments are flagged 2,1 and 2,2.
        let static_fragments = lines.iter().filter(|l| l.starts_with("!AIVDM,2,")).count();
        assert_eq!(static_fragments % 2, 0);
        let broadcasts = static_fragments / 2;
        // At least one per vessel; more over two days at the scaled 3h
        // interval.
        assert!(broadcasts >= ds.statics.len());
    }

    #[test]
    fn decoded_positions_match_source_within_quantisation() {
        let ds = tiny();
        let r = ds.positions.iter().flatten().next().expect("has reports");
        let line = position_line(r);
        let s = Sentence::parse(&line).unwrap();
        match decode_payload(&s.payload, s.fill_bits).unwrap() {
            AisMessage::PositionA { mmsi, pos, .. } => {
                assert_eq!(mmsi, r.mmsi);
                let p = pos.unwrap();
                assert!((p.lat() - r.pos.lat()).abs() < 2e-6);
                assert!((p.lon() - r.pos.lon()).abs() < 2e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stream_is_time_ordered() {
        // Reconstruct order via decode: receiver timestamps are not on the
        // wire, so check the generator's own ordering invariant instead by
        // construction (stable sort on timestamps) — spot-check the first
        // vessels' interleaving instead.
        let ds = tiny();
        let lines = to_nmea_lines(&ds);
        assert!(!lines.is_empty());
        // All lines are syntactically valid and non-duplicated in sequence.
        for w in lines.windows(2) {
            assert!(Sentence::parse(&w[0]).is_ok());
        }
    }
}
