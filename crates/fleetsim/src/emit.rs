//! AIS report emission: turns a vessel's activity calendar into the
//! positional-report stream a receiving network would archive.
//!
//! Fidelity to the protocol (§3.1.1 of the paper):
//!
//! * class-A reporting intervals depend on speed — 2 s above 23 kn, 6 s
//!   above 14 kn, 10 s under way below that, and 3 min when moored/anchored
//!   (scaled by [`EmissionConfig::interval_scale`] to keep laptop-scale
//!   volumes),
//! * GPS jitter on every fix,
//! * reception dropout (terrestrial/satellite coverage is imperfect),
//! * rare corrupt records — speed spikes, bogus courses, position
//!   teleports, duplicated timestamps — exactly the defects the paper's
//!   cleaning step (§3.3.1) is built to reject.

use crate::ports::WORLD_PORTS;
use crate::rng::Rng;
use crate::voyage::Activity;
use pol_ais::types::{Mmsi, NavStatus};
use pol_ais::PositionReport;
use pol_geo::{destination, LatLon};

/// Emission tuning.
#[derive(Clone, Copy, Debug)]
pub struct EmissionConfig {
    /// Multiplies every protocol interval (30 ⇒ a 10 s interval becomes
    /// 5 min). 1.0 reproduces true protocol rates — and the paper's
    /// billions of rows.
    pub interval_scale: f64,
    /// Probability that an emitted report is never received.
    pub dropout: f64,
    /// GPS noise, standard deviation in metres.
    pub gps_noise_m: f64,
    /// Probability that a received report is corrupted.
    pub corrupt_rate: f64,
}

impl Default for EmissionConfig {
    fn default() -> Self {
        EmissionConfig {
            interval_scale: 30.0,
            dropout: 0.05,
            gps_noise_m: 30.0,
            corrupt_rate: 0.000_5,
        }
    }
}

/// Protocol reporting interval (seconds) for a state.
pub fn protocol_interval_secs(sog_knots: f64, status: NavStatus) -> f64 {
    if status.is_stationary() {
        180.0
    } else if sog_knots > 23.0 {
        2.0
    } else if sog_knots > 14.0 {
        6.0
    } else {
        10.0
    }
}

/// Emits the received report stream for one vessel's calendar over
/// `[start, end)`. Reports come out time-ordered except for the rare
/// corrupt duplicates/swaps that cleaning must handle.
pub fn emit_reports(
    mmsi: Mmsi,
    activities: &[Activity],
    start: i64,
    end: i64,
    cfg: &EmissionConfig,
    rng: &mut Rng,
) -> Vec<PositionReport> {
    let mut out = Vec::new();
    for act in activities {
        let a0 = act.from().max(start);
        let a1 = act.to().min(end);
        if a0 >= a1 {
            continue;
        }
        let mut t = a0;
        while t < a1 {
            let (pos, sog, cog, status) = match act {
                Activity::InPort { port, .. } => {
                    let p = WORLD_PORTS[port.0 as usize].pos();
                    (p, 0.0, 0.0, NavStatus::Moored)
                }
                Activity::Voyage(plan) => {
                    // lint: allow(no_unwrap) — the loop clamps t to
                    // [a0, a1), the exact window the plan covers.
                    let k = plan.kinematics_at(t).expect("t within the voyage window");
                    (k.pos, k.sog_knots, k.cog_deg, k.nav_status)
                }
            };
            let interval = protocol_interval_secs(sog, status) * cfg.interval_scale;
            if !rng.chance(cfg.dropout) {
                let report = observe(mmsi, t, pos, sog, cog, status, cfg, rng);
                if rng.chance(cfg.corrupt_rate) {
                    corrupt(report, &mut out, rng);
                } else {
                    out.push(report);
                }
            }
            t += (interval.max(1.0)).round() as i64;
        }
    }
    out
}

/// Applies GPS noise and small instrument noise to a true state.
#[allow(clippy::too_many_arguments)]
fn observe(
    mmsi: Mmsi,
    t: i64,
    pos: LatLon,
    sog: f64,
    cog: f64,
    status: NavStatus,
    cfg: &EmissionConfig,
    rng: &mut Rng,
) -> PositionReport {
    let jitter_km = (cfg.gps_noise_m / 1000.0) * rng.normal().abs();
    let noisy_pos = destination(pos, rng.range(0.0, 360.0), jitter_km);
    let heading = if status.is_stationary() {
        None
    } else {
        Some((cog + rng.normal_with(0.0, 2.0)).rem_euclid(360.0))
    };
    PositionReport {
        mmsi,
        timestamp: t,
        pos: noisy_pos,
        sog_knots: Some((sog + rng.normal_with(0.0, 0.2)).clamp(0.0, 102.2)),
        cog_deg: Some((cog + rng.normal_with(0.0, 1.0)).rem_euclid(360.0)),
        heading_deg: heading,
        nav_status: status,
    }
}

/// Injects one of the defect classes the cleaning step must reject.
fn corrupt(mut report: PositionReport, out: &mut Vec<PositionReport>, rng: &mut Rng) {
    match rng.below(4) {
        0 => {
            // Speed spike beyond the protocol maximum.
            report.sog_knots = Some(rng.range(110.0, 500.0));
            out.push(report);
        }
        1 => {
            // Course outside [0, 360).
            report.cog_deg = Some(rng.range(360.0, 720.0));
            out.push(report);
        }
        2 => {
            // Position teleport: an infeasible jump (> 50 kn implied speed).
            report.pos = LatLon::wrapped(
                report.pos.lat() + rng.range(3.0, 8.0),
                report.pos.lon() + rng.range(3.0, 8.0),
            );
            out.push(report);
        }
        _ => {
            // Duplicate with out-of-order timestamp.
            let mut dup = report;
            dup.timestamp -= 120;
            out.push(report);
            out.push(dup);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes::{LaneGraph, RouteOptions};
    use crate::ports::port_by_locode;
    use crate::voyage::VoyagePlan;

    fn calendar() -> Vec<Activity> {
        let (o, _) = port_by_locode("NLRTM").unwrap();
        let (d, _) = port_by_locode("GBFXT").unwrap();
        let route = LaneGraph::global()
            .route(o, d, RouteOptions::default())
            .unwrap();
        let dep = 1_640_995_200 + 3_600;
        let plan = VoyagePlan {
            origin: o,
            dest: d,
            departure: dep,
            speed_kn: 14.0,
            route,
        };
        let arr = plan.arrival();
        vec![
            Activity::InPort {
                port: o,
                from: 1_640_995_200,
                to: dep,
            },
            Activity::Voyage(plan),
            Activity::InPort {
                port: d,
                from: arr,
                to: arr + 86_400,
            },
        ]
    }

    fn no_defects() -> EmissionConfig {
        EmissionConfig {
            interval_scale: 30.0,
            dropout: 0.0,
            gps_noise_m: 0.0,
            corrupt_rate: 0.0,
        }
    }

    #[test]
    fn protocol_intervals() {
        assert_eq!(
            protocol_interval_secs(25.0, NavStatus::UnderWayUsingEngine),
            2.0
        );
        assert_eq!(
            protocol_interval_secs(18.0, NavStatus::UnderWayUsingEngine),
            6.0
        );
        assert_eq!(
            protocol_interval_secs(8.0, NavStatus::UnderWayUsingEngine),
            10.0
        );
        assert_eq!(protocol_interval_secs(0.0, NavStatus::Moored), 180.0);
    }

    #[test]
    fn emits_ordered_valid_reports() {
        let mut rng = Rng::new(5);
        let acts = calendar();
        let start = acts[0].from();
        let end = acts[2].to();
        let reports = emit_reports(
            Mmsi(123_456_789),
            &acts,
            start,
            end,
            &no_defects(),
            &mut rng,
        );
        assert!(reports.len() > 100, "got {}", reports.len());
        for w in reports.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
        for r in &reports {
            assert!(r.in_protocol_ranges(), "{r:?}");
        }
        // Both moored and under-way phases present.
        assert!(reports.iter().any(|r| r.nav_status == NavStatus::Moored));
        assert!(reports
            .iter()
            .any(|r| r.nav_status == NavStatus::UnderWayUsingEngine));
    }

    #[test]
    fn moored_reports_are_sparser() {
        let mut rng = Rng::new(6);
        let acts = calendar();
        let cfg = no_defects();
        let reports = emit_reports(Mmsi(1), &acts, acts[0].from(), acts[2].to(), &cfg, &mut rng);
        let moored: Vec<_> = reports
            .iter()
            .filter(|r| r.nav_status == NavStatus::Moored)
            .collect();
        let underway: Vec<_> = reports
            .iter()
            .filter(|r| r.nav_status == NavStatus::UnderWayUsingEngine)
            .collect();
        // Moored interval = 180 s × 30 vs ≤ 10 s × 30 under way: per hour
        // under way must report ≥ 10× as often.
        let moored_span = (moored.last().unwrap().timestamp - moored[0].timestamp).max(1);
        let uw_span = (underway.last().unwrap().timestamp - underway[0].timestamp).max(1);
        let moored_rate = moored.len() as f64 / moored_span as f64;
        let uw_rate = underway.len() as f64 / uw_span as f64;
        assert!(uw_rate > moored_rate * 5.0, "{uw_rate} vs {moored_rate}");
    }

    #[test]
    fn dropout_thins_the_stream() {
        let acts = calendar();
        let (start, end) = (acts[0].from(), acts[2].to());
        let full = emit_reports(Mmsi(1), &acts, start, end, &no_defects(), &mut Rng::new(7));
        let mut half_cfg = no_defects();
        half_cfg.dropout = 0.5;
        let half = emit_reports(Mmsi(1), &acts, start, end, &half_cfg, &mut Rng::new(7));
        let ratio = half.len() as f64 / full.len() as f64;
        assert!((0.4..0.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn corruption_injects_cleanable_defects() {
        let acts = calendar();
        let (start, end) = (acts[0].from(), acts[2].to());
        let mut cfg = no_defects();
        cfg.corrupt_rate = 0.2; // exaggerate for the test
        let reports = emit_reports(Mmsi(1), &acts, start, end, &cfg, &mut Rng::new(8));
        let out_of_range = reports.iter().filter(|r| !r.in_protocol_ranges()).count();
        assert!(out_of_range > 0, "expected corrupt records");
        let out_of_order = reports
            .windows(2)
            .filter(|w| w[0].timestamp > w[1].timestamp)
            .count();
        assert!(out_of_order > 0, "expected out-of-order duplicates");
    }

    #[test]
    fn window_clips_emission() {
        let acts = calendar();
        let mut rng = Rng::new(9);
        let mid = (acts[0].from() + acts[2].to()) / 2;
        let reports = emit_reports(Mmsi(1), &acts, acts[0].from(), mid, &no_defects(), &mut rng);
        assert!(reports.iter().all(|r| r.timestamp < mid));
    }
}
