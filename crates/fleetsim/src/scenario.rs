//! Packaged dataset scenarios: the baseline "year", a COVID-style port
//! closure and a Suez-style canal blockage.
//!
//! A scenario is fully described by a [`ScenarioConfig`]; generation is
//! deterministic given the seed and produces the same three inputs the
//! paper's pipeline consumes (Table 1): per-vessel positional report
//! streams, the vessel static inventory, and the port table — plus the
//! *ground truth* voyage list that the use-case evaluations (§4.1.2,
//! §4.1.3) score against.

use crate::emit::{emit_reports, EmissionConfig};
use crate::fleet::{Fleet, VesselSpec};
use crate::lanes::{LaneGraph, RouteOptions};
use crate::ports::{PortId, WORLD_PORTS};
use crate::rng::Rng;
use crate::voyage::{Activity, VoyagePlan};
use crate::EPOCH_2022;
use pol_ais::types::Mmsi;
use pol_ais::{PositionReport, StaticReport};

/// A disruptive event injected into the simulated world.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Disruption {
    /// A port stops accepting calls during `[from, to)` (COVID-19-style).
    PortClosure {
        /// The closed port.
        port: PortId,
        /// Closure start, Unix seconds.
        from: i64,
        /// Closure end, Unix seconds (exclusive).
        to: i64,
    },
    /// The Suez canal is blocked during `[from, to)`; voyages planned in
    /// the window route via the Cape of Good Hope (Ever-Given-style).
    SuezBlockage {
        /// Blockage start, Unix seconds.
        from: i64,
        /// Blockage end, Unix seconds (exclusive).
        to: i64,
    },
}

/// Scenario parameters.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Seed of all randomness.
    pub seed: u64,
    /// Fleet size (the paper's world has ~60 000; defaults are laptop-
    /// scale and every experiment reports its scale factor).
    pub n_vessels: usize,
    /// Unix start time.
    pub start: i64,
    /// Simulated span in days.
    pub duration_days: u32,
    /// Emission tuning.
    pub emission: EmissionConfig,
    /// Optional disruption.
    pub disruption: Option<Disruption>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 42,
            n_vessels: 300,
            start: EPOCH_2022,
            duration_days: 21,
            emission: EmissionConfig::default(),
            disruption: None,
        }
    }
}

impl ScenarioConfig {
    /// A smaller config for unit tests. The emission interval is kept
    /// dense enough (≈ 1–3 min under way) that consecutive reports land in
    /// the same or adjacent res-6 cells, like real AIS traffic does — the
    /// compression behaviour of Table 4 depends on that.
    pub fn tiny() -> Self {
        ScenarioConfig {
            n_vessels: 20,
            duration_days: 6,
            emission: EmissionConfig {
                interval_scale: 20.0,
                ..EmissionConfig::default()
            },
            ..ScenarioConfig::default()
        }
    }

    /// End of the simulated window.
    pub fn end(&self) -> i64 {
        self.start + self.duration_days as i64 * 86_400
    }
}

/// Ground truth for one completed (or in-progress) voyage.
#[derive(Clone, Debug)]
pub struct VoyageTruth {
    /// The vessel that sailed the voyage.
    pub mmsi: Mmsi,
    /// Origin port.
    pub origin: PortId,
    /// Destination port.
    pub dest: PortId,
    /// Departure time, Unix seconds.
    pub departure: i64,
    /// Arrival time, Unix seconds.
    pub arrival: i64,
    /// Routed distance, km.
    pub distance_km: f64,
    /// Whether the voyage was re-routed around a closed canal.
    pub rerouted: bool,
}

/// A generated dataset: the simulator's analogue of the paper's Table 1.
pub struct Dataset {
    /// Positional reports, one partition per vessel (the pipeline's initial
    /// partitioning in §3.3.1 is by vessel identifier).
    pub positions: Vec<Vec<PositionReport>>,
    /// The vessel static inventory.
    pub statics: Vec<StaticReport>,
    /// The fleet specs (simulation-side superset of `statics`).
    pub fleet: Vec<VesselSpec>,
    /// Ground-truth voyages for evaluation.
    pub truth: Vec<VoyageTruth>,
    /// The config that produced this dataset.
    pub config: ScenarioConfig,
}

impl Dataset {
    /// Total positional report count.
    pub fn total_reports(&self) -> usize {
        self.positions.iter().map(Vec::len).sum()
    }
}

/// Generates a dataset from a scenario config.
pub fn generate(config: &ScenarioConfig) -> Dataset {
    let mut rng = Rng::new(config.seed);
    let fleet = Fleet::generate(&mut rng, config.n_vessels);
    let graph = LaneGraph::global();
    let weights: Vec<f64> = WORLD_PORTS.iter().map(|p| p.weight).collect();
    let start = config.start;
    let end = config.end();

    let mut positions = Vec::with_capacity(fleet.len());
    let mut truth = Vec::new();

    for (vi, vessel) in fleet.iter().enumerate() {
        let mut vrng = rng.fork(vi as u64);
        let mut activities: Vec<Activity> = Vec::new();
        // Stagger entry so not every vessel departs at t0; negative lead
        // lets some vessels already be mid-ocean at the window start.
        let mut t = start - (vrng.f64() * 5.0 * 86_400.0) as i64;
        let mut here = pick_port(&mut vrng, &weights, None, config, t);
        while t < end {
            // Dwell in port 12 h – 3 days.
            let dwell = vrng.range(0.5, 3.0) * 86_400.0;
            let depart = t + dwell as i64;
            let dest = pick_port(&mut vrng, &weights, Some(here), config, depart);
            let opts = route_options(config, depart);
            let Some(route) = graph.route(here, dest, opts) else {
                break; // unreachable under closures; end this vessel's year
            };
            activities.push(Activity::InPort {
                port: here,
                from: t,
                to: depart,
            });
            let speed = (vessel.design_speed_kn + vrng.normal_with(0.0, 0.5)).clamp(8.0, 25.0);
            let plan = VoyagePlan {
                origin: here,
                dest,
                departure: depart,
                speed_kn: speed,
                route,
            };
            let arrival = plan.arrival();
            if depart < end {
                truth.push(VoyageTruth {
                    mmsi: vessel.mmsi,
                    origin: here,
                    dest,
                    departure: depart,
                    arrival,
                    distance_km: plan.route.distance_km,
                    rerouted: opts.avoid_suez || opts.avoid_panama,
                });
            }
            activities.push(Activity::Voyage(plan));
            here = dest;
            t = arrival;
        }
        positions.push(emit_reports(
            vessel.mmsi,
            &activities,
            start,
            end,
            &config.emission,
            &mut vrng,
        ));
    }

    Dataset {
        positions,
        statics: fleet.iter().map(VesselSpec::static_report).collect(),
        fleet,
        truth,
        config: config.clone(),
    }
}

/// Picks an origin/destination port honouring closures; biases toward a
/// different port than `not` and respects traffic weights.
fn pick_port(
    rng: &mut Rng,
    weights: &[f64],
    not: Option<PortId>,
    config: &ScenarioConfig,
    at: i64,
) -> PortId {
    loop {
        let cand = PortId(rng.weighted(weights) as u16);
        if Some(cand) == not {
            continue;
        }
        if let Some(Disruption::PortClosure { port, from, to }) = config.disruption {
            if cand == port && at >= from && at < to {
                continue;
            }
        }
        return cand;
    }
}

/// Routing options at planning time (canal blockages).
fn route_options(config: &ScenarioConfig, at: i64) -> RouteOptions {
    match config.disruption {
        Some(Disruption::SuezBlockage { from, to }) if at >= from && at < to => RouteOptions {
            avoid_suez: true,
            avoid_panama: false,
        },
        _ => RouteOptions::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ports::port_by_locode;

    #[test]
    fn tiny_scenario_generates_data() {
        let ds = generate(&ScenarioConfig::tiny());
        assert_eq!(ds.positions.len(), 20);
        assert_eq!(ds.statics.len(), 20);
        assert!(ds.total_reports() > 1_000, "got {}", ds.total_reports());
        assert!(!ds.truth.is_empty());
        // Reports are inside the window.
        let (s, e) = (ds.config.start, ds.config.end());
        for part in &ds.positions {
            for r in part {
                assert!(r.timestamp >= s && r.timestamp < e);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&ScenarioConfig::tiny());
        let b = generate(&ScenarioConfig::tiny());
        assert_eq!(a.total_reports(), b.total_reports());
        for (x, y) in a
            .positions
            .iter()
            .flatten()
            .zip(b.positions.iter().flatten())
        {
            assert_eq!(x, y);
        }
        assert_eq!(a.truth.len(), b.truth.len());
    }

    #[test]
    fn different_seed_differs() {
        let a = generate(&ScenarioConfig::tiny());
        let mut cfg = ScenarioConfig::tiny();
        cfg.seed = 43;
        let b = generate(&cfg);
        assert_ne!(a.total_reports(), b.total_reports());
    }

    #[test]
    fn truth_voyages_are_consistent() {
        let ds = generate(&ScenarioConfig::tiny());
        for v in &ds.truth {
            assert_ne!(v.origin, v.dest);
            assert!(v.arrival > v.departure);
            assert!(v.distance_km > 0.0);
            assert!(ds.fleet.iter().any(|f| f.mmsi == v.mmsi));
        }
    }

    #[test]
    fn port_closure_removes_calls() {
        let (sin, _) = port_by_locode("SGSIN").unwrap();
        let mut cfg = ScenarioConfig::tiny();
        cfg.n_vessels = 40;
        cfg.disruption = Some(Disruption::PortClosure {
            port: sin,
            from: cfg.start,
            to: cfg.end(),
        });
        let ds = generate(&cfg);
        // No voyage *planned during the closure* targets the closed port.
        // (Vessels get a pre-window lead-in, so voyages planned before the
        // closure may still involve it — as in reality, where ships already
        // bound for a closing port arrive anyway.)
        for v in ds.truth.iter().filter(|v| v.departure >= cfg.start) {
            assert_ne!(v.dest, sin, "closed port must receive no new calls");
        }
        // And the closure visibly suppresses traffic to the port.
        let base = generate(&ScenarioConfig {
            n_vessels: 40,
            ..ScenarioConfig::tiny()
        });
        let calls = |ds: &Dataset| ds.truth.iter().filter(|v| v.dest == sin).count();
        assert!(
            calls(&ds) < calls(&base),
            "{} !< {}",
            calls(&ds),
            calls(&base)
        );
    }

    #[test]
    fn suez_blockage_marks_reroutes() {
        let mut cfg = ScenarioConfig::tiny();
        cfg.n_vessels = 60;
        cfg.duration_days = 14;
        cfg.disruption = Some(Disruption::SuezBlockage {
            from: cfg.start,
            to: cfg.end(),
        });
        let ds = generate(&cfg);
        // Voyages *planned during* the blockage are rerouted (pre-window
        // lead-in departures may precede it).
        assert!(
            ds.truth
                .iter()
                .filter(|v| v.departure >= cfg.start)
                .all(|v| v.rerouted),
            "all voyages planned during a full-window blockage are rerouted"
        );
        assert!(
            ds.truth.iter().any(|v| v.rerouted),
            "blockage produced no reroutes at all"
        );
        // And a baseline run has none.
        let base = generate(&ScenarioConfig::tiny());
        assert!(base.truth.iter().all(|v| !v.rerouted));
    }

    #[test]
    fn statics_join_positions_by_mmsi() {
        let ds = generate(&ScenarioConfig::tiny());
        let static_mmsis: std::collections::HashSet<_> =
            ds.statics.iter().map(|s| s.mmsi).collect();
        for part in &ds.positions {
            if let Some(r) = part.first() {
                assert!(static_mmsis.contains(&r.mmsi));
            }
        }
    }
}
