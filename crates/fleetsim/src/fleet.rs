//! The synthetic commercial fleet — the stand-in for the paper's
//! 60 000-vessel static inventory.

use crate::rng::Rng;
use pol_ais::types::{MarketSegment, Mmsi};
use pol_ais::StaticReport;

/// Static particulars of one simulated vessel.
#[derive(Clone, Debug)]
pub struct VesselSpec {
    /// Vessel identity.
    pub mmsi: Mmsi,
    /// Vessel name.
    pub name: String,
    /// Market segment.
    pub segment: MarketSegment,
    /// Gross tonnage.
    pub grt: u32,
    /// Design (service) speed in knots.
    pub design_speed_kn: f64,
}

impl VesselSpec {
    /// The vessel's static report (what the AIS type-5/vessel-DB join
    /// yields in the paper's enrichment step).
    pub fn static_report(&self) -> StaticReport {
        StaticReport {
            mmsi: self.mmsi,
            imo: Some(9_000_000 + self.mmsi.0 % 1_000_000),
            name: self.name.clone(),
            ship_type: self.segment.representative_code(),
            gross_tonnage: self.grt,
        }
    }
}

/// The fleet generator.
pub struct Fleet;

/// Fleet mix: share, design-speed mean/std (kn), GRT range — per segment,
/// approximating the world commercial fleet's composition.
const MIX: &[(MarketSegment, f64, f64, f64, u32, u32)] = &[
    (MarketSegment::Container, 0.22, 17.5, 2.0, 8_000, 230_000),
    (MarketSegment::DryBulk, 0.28, 12.5, 1.0, 20_000, 200_000),
    (MarketSegment::Tanker, 0.22, 13.0, 1.2, 8_000, 160_000),
    (MarketSegment::Gas, 0.05, 17.0, 1.5, 50_000, 170_000),
    (MarketSegment::GeneralCargo, 0.18, 14.0, 2.0, 5_100, 60_000),
    (MarketSegment::Passenger, 0.05, 20.0, 2.0, 20_000, 230_000),
];

const NAME_HEADS: &[&str] = &[
    "EVER", "MAERSK", "MSC", "CMA", "COSCO", "HAPAG", "ONE", "NYK", "GOLDEN", "STAR", "PACIFIC",
    "ATLANTIC", "NORDIC", "AEGEAN", "BALTIC", "IONIAN",
];
const NAME_TAILS: &[&str] = &[
    "GLORY",
    "FORTUNE",
    "PIONEER",
    "TRADER",
    "EXPRESS",
    "HORIZON",
    "SPIRIT",
    "HARMONY",
    "VOYAGER",
    "NAVIGATOR",
    "TRIUMPH",
    "DAWN",
    "WAVE",
    "CREST",
    "SUMMIT",
    "LEGACY",
];

impl Fleet {
    /// Generates `n` commercial vessels deterministically from `rng`.
    pub fn generate(rng: &mut Rng, n: usize) -> Vec<VesselSpec> {
        let weights: Vec<f64> = MIX.iter().map(|m| m.1).collect();
        (0..n)
            .map(|i| {
                let (segment, _, sp_mean, sp_std, grt_lo, grt_hi) = MIX[rng.weighted(&weights)];
                // Log-uniform tonnage: the world fleet is bottom-heavy.
                let grt = (grt_lo as f64 * ((grt_hi as f64 / grt_lo as f64).powf(rng.f64())))
                    .round() as u32;
                let design_speed_kn = rng.normal_with(sp_mean, sp_std).clamp(9.0, 25.0);
                let name = format!(
                    "{} {} {}",
                    NAME_HEADS[rng.below(NAME_HEADS.len())],
                    NAME_TAILS[rng.below(NAME_TAILS.len())],
                    i + 1
                );
                VesselSpec {
                    // 9-digit MMSIs in a realistic MID-prefixed space.
                    mmsi: Mmsi(200_000_000 + i as u32 * 37 + 11),
                    name,
                    segment,
                    grt,
                    design_speed_kn,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_with_unique_mmsi() {
        let mut rng = Rng::new(1);
        let fleet = Fleet::generate(&mut rng, 500);
        assert_eq!(fleet.len(), 500);
        let mmsis: std::collections::HashSet<_> = fleet.iter().map(|v| v.mmsi).collect();
        assert_eq!(mmsis.len(), 500);
    }

    #[test]
    fn all_vessels_are_commercial_fleet() {
        let mut rng = Rng::new(2);
        for v in Fleet::generate(&mut rng, 300) {
            let s = v.static_report();
            assert!(s.is_commercial_fleet(), "{v:?}");
            assert_eq!(s.segment(), v.segment);
            assert!((9.0..=25.0).contains(&v.design_speed_kn));
        }
    }

    #[test]
    fn segment_mix_roughly_matches() {
        let mut rng = Rng::new(3);
        let fleet = Fleet::generate(&mut rng, 5_000);
        let bulk = fleet
            .iter()
            .filter(|v| v.segment == MarketSegment::DryBulk)
            .count() as f64
            / 5_000.0;
        assert!((0.24..0.32).contains(&bulk), "dry-bulk share {bulk}");
        let gas = fleet
            .iter()
            .filter(|v| v.segment == MarketSegment::Gas)
            .count() as f64
            / 5_000.0;
        assert!((0.02..0.08).contains(&gas), "gas share {gas}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Fleet::generate(&mut Rng::new(7), 50);
        let b = Fleet::generate(&mut Rng::new(7), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mmsi, y.mmsi);
            assert_eq!(x.segment, y.segment);
            assert_eq!(x.grt, y.grt);
            assert_eq!(x.design_speed_kn, y.design_speed_kn);
        }
    }

    #[test]
    fn container_ships_are_fast() {
        let fleet = Fleet::generate(&mut Rng::new(11), 3_000);
        let avg = |seg: MarketSegment| {
            let v: Vec<f64> = fleet
                .iter()
                .filter(|x| x.segment == seg)
                .map(|x| x.design_speed_kn)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(avg(MarketSegment::Container) > avg(MarketSegment::DryBulk) + 2.0);
    }
}
