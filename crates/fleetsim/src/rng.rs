//! Deterministic pseudo-randomness: xoshiro256** seeded via splitmix64.
//!
//! The simulator must produce bit-identical datasets from a seed across
//! platforms and dependency versions (EXPERIMENTS.md quotes numbers from
//! seeded runs), so it does not rely on any external RNG crate.

/// xoshiro256** generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the state by running splitmix64 from `seed`.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Rng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent stream (e.g. one per vessel) from this
    /// generator's seed space.
    pub fn fork(&mut self, salt: u64) -> Rng {
        Rng::new(self.next_u64() ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = &mut self.s;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        let u1 = self.f64().max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal with given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Picks an index according to non-negative `weights` (must sum > 0).
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0);
        let mut target = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.below(i + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut r = Rng::new(1);
        let mut buckets = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            buckets[(r.f64() * 10.0) as usize] += 1;
        }
        for (i, b) in buckets.iter().enumerate() {
            let frac = *b as f64 / n as f64;
            assert!((0.09..0.11).contains(&frac), "bucket {i}: {frac}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(3);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = r.normal();
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn weighted_respects_weights() {
        let mut r = Rng::new(9);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[r.weighted(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.6..3.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>(), "astronomically unlikely");
    }

    #[test]
    fn fork_streams_diverge() {
        let mut base = Rng::new(11);
        let mut a = base.fork(1);
        let mut b = base.fork(2);
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
        // And forking deterministically reproduces.
        let mut base2 = Rng::new(11);
        let mut a2 = base2.fork(1);
        let xs2: Vec<u64> = (0..10).map(|_| a2.next_u64()).collect();
        assert_eq!(xs, xs2);
    }
}
