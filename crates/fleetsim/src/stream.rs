//! Streaming emission mode: a single globally timestamp-ordered,
//! vessel-interleaved record iterator over a generated fleet.
//!
//! Batch consumers take [`crate::scenario::Dataset::positions`] as-is —
//! one partition per vessel, the pipeline's §3.3.1 initial partitioning.
//! A *live* pipeline instead sees one wire: every vessel's reports
//! multiplexed in arrival order. [`interleave`] produces that wire from
//! the per-vessel partitions with a k-way heap merge keyed by
//! `(head timestamp, vessel lane)`:
//!
//! * each vessel's **relative order is preserved exactly** — only the
//!   head of a lane is ever eligible, so the occasional out-of-order
//!   corrupt duplicate that [`crate::emit`] injects survives the merge
//!   and reaches the consumer's reorder buffer, as it would in reality;
//! * with defect-free emission the output is globally nondecreasing in
//!   timestamp (the merge invariant the ordering proptest pins);
//! * timestamp ties break by lane index, so the stream is deterministic
//!   given the dataset — a requirement for the streamed-vs-batch
//!   byte-identity gate in `polstream`.
//!
//! Reception dropout, GPS noise and corrupt-field injection all happen
//! upstream in [`crate::emit::EmissionConfig`]; this module only changes
//! the *delivery order*, never the records.

use pol_ais::PositionReport;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A k-way merge iterator over per-vessel report partitions, yielding
/// one globally timestamp-ordered, vessel-interleaved stream.
///
/// Construct with [`interleave`]. The iterator is exact-size and owns
/// its input; memory is the input itself plus one heap slot per lane.
pub struct StreamIter {
    lanes: Vec<Vec<PositionReport>>,
    cursor: Vec<usize>,
    /// Min-heap over `(head timestamp, lane)` of every non-exhausted lane.
    heap: BinaryHeap<Reverse<(i64, usize)>>,
    remaining: usize,
}

/// Merges per-vessel report partitions into a single timestamp-ordered,
/// vessel-interleaved stream — `fleetsim`'s `--stream` emission mode.
///
/// Per-lane relative order is preserved unconditionally; across lanes
/// records are delivered in nondecreasing head-timestamp order with ties
/// broken by lane index.
pub fn interleave(lanes: Vec<Vec<PositionReport>>) -> StreamIter {
    let cursor = vec![0; lanes.len()];
    let remaining = lanes.iter().map(Vec::len).sum();
    let mut heap = BinaryHeap::with_capacity(lanes.len());
    for (lane, reports) in lanes.iter().enumerate() {
        if let Some(r) = reports.first() {
            heap.push(Reverse((r.timestamp, lane)));
        }
    }
    StreamIter {
        lanes,
        cursor,
        heap,
        remaining,
    }
}

impl Iterator for StreamIter {
    type Item = PositionReport;

    fn next(&mut self) -> Option<PositionReport> {
        let Reverse((_, lane)) = self.heap.pop()?;
        let i = self.cursor[lane];
        let r = *self.lanes[lane].get(i)?;
        self.cursor[lane] = i + 1;
        if let Some(next) = self.lanes[lane].get(i + 1) {
            self.heap.push(Reverse((next.timestamp, lane)));
        }
        self.remaining -= 1;
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for StreamIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::EmissionConfig;
    use crate::scenario::{generate, ScenarioConfig};
    use pol_ais::types::{Mmsi, NavStatus};
    use pol_geo::LatLon;
    use proptest::prelude::*;

    fn report(lane: u32, timestamp: i64) -> PositionReport {
        PositionReport {
            mmsi: Mmsi(200_000_000 + lane),
            timestamp,
            pos: LatLon::new(0.0, 0.0).unwrap(),
            sog_knots: Some(10.0),
            cog_deg: Some(90.0),
            heading_deg: None,
            nav_status: NavStatus::UnderWayUsingEngine,
        }
    }

    proptest! {
        /// The headline merge invariant: sorted lanes in, a globally
        /// nondecreasing permutation of the exact input multiset out,
        /// with every lane's relative order preserved.
        #[test]
        fn interleave_orders_sorted_lanes(
            raw in prop::collection::vec(
                prop::collection::vec(0i64..100_000, 0..40), 0..8)
        ) {
            let lanes: Vec<Vec<PositionReport>> = raw
                .iter()
                .enumerate()
                .map(|(li, ts)| {
                    let mut ts = ts.clone();
                    ts.sort_unstable();
                    ts.iter().map(|&t| report(li as u32, t)).collect()
                })
                .collect();
            let total: usize = lanes.iter().map(Vec::len).sum();
            let merged: Vec<PositionReport> = interleave(lanes.clone()).collect();

            // Exact count (also checks the ExactSizeIterator contract).
            prop_assert_eq!(merged.len(), total);
            prop_assert_eq!(interleave(lanes.clone()).len(), total);

            // Globally nondecreasing.
            for w in merged.windows(2) {
                prop_assert!(w[0].timestamp <= w[1].timestamp);
            }

            // Per-lane projection is exactly the lane: order preserved
            // and multiset equality in one check (mmsi identifies lanes).
            for (li, lane) in lanes.iter().enumerate() {
                let got: Vec<PositionReport> = merged
                    .iter()
                    .filter(|r| r.mmsi == Mmsi(200_000_000 + li as u32))
                    .copied()
                    .collect();
                prop_assert_eq!(&got, lane);
            }
        }
    }

    #[test]
    fn ties_break_by_lane_index() {
        let lanes = vec![vec![report(1, 5)], vec![report(0, 5)], vec![report(2, 5)]];
        let merged: Vec<u32> = interleave(lanes).map(|r| r.mmsi.0).collect();
        assert_eq!(merged, vec![200_000_001, 200_000_000, 200_000_002]);
    }

    #[test]
    fn out_of_order_corrupt_duplicates_survive_in_lane_order() {
        // A lane whose head jumps backwards (the emit-layer corrupt
        // duplicate: original at t, dup at t-120 pushed after it) must
        // come through in lane order, not be re-sorted away.
        let lanes = vec![
            vec![
                report(0, 100),
                report(0, 400),
                report(0, 280),
                report(0, 500),
            ],
            vec![report(1, 150), report(1, 300)],
        ];
        let merged: Vec<(u32, i64)> = interleave(lanes).map(|r| (r.mmsi.0, r.timestamp)).collect();
        assert_eq!(
            merged,
            vec![
                (200_000_000, 100),
                (200_000_001, 150),
                (200_000_001, 300),
                (200_000_000, 400),
                (200_000_000, 280), // late: released only after its lane predecessor
                (200_000_000, 500),
            ]
        );
    }

    #[test]
    fn scenario_stream_is_ordered_without_defects() {
        let mut cfg = ScenarioConfig::tiny();
        cfg.emission = EmissionConfig {
            dropout: 0.0,
            corrupt_rate: 0.0,
            ..cfg.emission
        };
        let ds = generate(&cfg);
        let total = ds.total_reports();
        let merged: Vec<PositionReport> = interleave(ds.positions).collect();
        assert_eq!(merged.len(), total);
        for w in merged.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
    }
}
