//! The embedded world ports database — the simulator's stand-in for the
//! paper's external "Port Information" table (20 000 ports; we embed the
//! ~110 that dominate global commercial traffic, with true coordinates).
//!
//! Weights approximate relative call frequency (container TEU / tonnage
//! ranks); they drive origin/destination sampling in the scenario
//! generator, so hub ports (Singapore, Shanghai, Rotterdam) acquire the
//! prominence the paper's Figure 6 displays.

use pol_geo::LatLon;

/// Index of a port in [`WORLD_PORTS`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u16);

/// Broad sailing region, used to bias O/D selection toward realistic
/// trade patterns (plenty of intra-region feeder traffic plus the long
/// east–west head-haul lanes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Region {
    /// North Sea and Atlantic Europe.
    NorthEurope,
    /// Baltic Sea.
    Baltic,
    /// Mediterranean Sea.
    Mediterranean,
    /// Black Sea.
    BlackSea,
    /// Arabian/Persian Gulf and Red Sea.
    MiddleEast,
    /// Indian subcontinent.
    SouthAsia,
    /// Strait of Malacca to the South China Sea rim.
    SoutheastAsia,
    /// China, Korea, Japan, Taiwan.
    EastAsia,
    /// Australia and New Zealand.
    Oceania,
    /// North American east coast.
    NorthAmericaEast,
    /// North American west coast.
    NorthAmericaWest,
    /// Gulf of Mexico.
    NorthAmericaGulf,
    /// South American east coast.
    LatamEast,
    /// South American west coast.
    LatamWest,
    /// Caribbean basin.
    Caribbean,
    /// African west coast.
    AfricaWest,
    /// African east coast.
    AfricaEast,
    /// Southern Africa.
    AfricaSouth,
}

/// One port of the embedded database.
#[derive(Clone, Copy, Debug)]
pub struct Port {
    /// UN/LOCODE.
    pub locode: &'static str,
    /// Common name.
    pub name: &'static str,
    /// Harbour latitude, degrees.
    pub lat: f64,
    /// Harbour longitude, degrees.
    pub lon: f64,
    /// Relative traffic weight (arbitrary units).
    pub weight: f64,
    /// Sailing region.
    pub region: Region,
}

impl Port {
    /// Position as a validated coordinate.
    pub fn pos(&self) -> LatLon {
        // lint: allow(no_unwrap) — WORLD_PORTS is the only constructor of
        // `Port` and its coordinates are range-checked by the port tests.
        LatLon::new(self.lat, self.lon).expect("embedded port coordinates are valid")
    }
}

/// Looks a port up by UN/LOCODE.
pub fn port_by_locode(locode: &str) -> Option<(PortId, &'static Port)> {
    WORLD_PORTS
        .iter()
        .enumerate()
        .find(|(_, p)| p.locode == locode)
        .map(|(i, p)| (PortId(i as u16), p))
}

/// The port table. Coordinates are harbour-entrance accurate to a few km —
/// ample for geofences of 8–15 km radius.
pub static WORLD_PORTS: &[Port] = &[
    // --- East Asia ---
    Port {
        locode: "CNSHA",
        name: "Shanghai",
        lat: 31.23,
        lon: 121.49,
        weight: 10.0,
        region: Region::EastAsia,
    },
    Port {
        locode: "CNNGB",
        name: "Ningbo-Zhoushan",
        lat: 29.87,
        lon: 121.84,
        weight: 8.5,
        region: Region::EastAsia,
    },
    Port {
        locode: "CNSZX",
        name: "Shenzhen",
        lat: 22.49,
        lon: 113.90,
        weight: 7.5,
        region: Region::EastAsia,
    },
    Port {
        locode: "CNCAN",
        name: "Guangzhou",
        lat: 22.80,
        lon: 113.60,
        weight: 6.5,
        region: Region::EastAsia,
    },
    Port {
        locode: "CNTAO",
        name: "Qingdao",
        lat: 36.07,
        lon: 120.32,
        weight: 6.5,
        region: Region::EastAsia,
    },
    Port {
        locode: "CNTSN",
        name: "Tianjin",
        lat: 38.98,
        lon: 117.75,
        weight: 5.5,
        region: Region::EastAsia,
    },
    Port {
        locode: "CNDLC",
        name: "Dalian",
        lat: 38.92,
        lon: 121.65,
        weight: 4.0,
        region: Region::EastAsia,
    },
    Port {
        locode: "CNXMN",
        name: "Xiamen",
        lat: 24.45,
        lon: 118.07,
        weight: 4.0,
        region: Region::EastAsia,
    },
    Port {
        locode: "HKHKG",
        name: "Hong Kong",
        lat: 22.30,
        lon: 114.17,
        weight: 6.0,
        region: Region::EastAsia,
    },
    Port {
        locode: "TWKHH",
        name: "Kaohsiung",
        lat: 22.60,
        lon: 120.28,
        weight: 4.5,
        region: Region::EastAsia,
    },
    Port {
        locode: "KRPUS",
        name: "Busan",
        lat: 35.08,
        lon: 129.04,
        weight: 7.0,
        region: Region::EastAsia,
    },
    Port {
        locode: "KRINC",
        name: "Incheon",
        lat: 37.45,
        lon: 126.60,
        weight: 3.0,
        region: Region::EastAsia,
    },
    Port {
        locode: "KRKWY",
        name: "Gwangyang",
        lat: 34.90,
        lon: 127.70,
        weight: 2.5,
        region: Region::EastAsia,
    },
    Port {
        locode: "JPTYO",
        name: "Tokyo",
        lat: 35.60,
        lon: 139.79,
        weight: 3.5,
        region: Region::EastAsia,
    },
    Port {
        locode: "JPYOK",
        name: "Yokohama",
        lat: 35.45,
        lon: 139.65,
        weight: 3.5,
        region: Region::EastAsia,
    },
    Port {
        locode: "JPNGO",
        name: "Nagoya",
        lat: 35.03,
        lon: 136.85,
        weight: 3.0,
        region: Region::EastAsia,
    },
    Port {
        locode: "JPUKB",
        name: "Kobe",
        lat: 34.67,
        lon: 135.20,
        weight: 2.8,
        region: Region::EastAsia,
    },
    Port {
        locode: "JPOSA",
        name: "Osaka",
        lat: 34.65,
        lon: 135.43,
        weight: 2.5,
        region: Region::EastAsia,
    },
    // --- Southeast Asia ---
    Port {
        locode: "SGSIN",
        name: "Singapore",
        lat: 1.26,
        lon: 103.84,
        weight: 9.5,
        region: Region::SoutheastAsia,
    },
    Port {
        locode: "MYPKG",
        name: "Port Klang",
        lat: 3.00,
        lon: 101.40,
        weight: 5.0,
        region: Region::SoutheastAsia,
    },
    Port {
        locode: "MYTPP",
        name: "Tanjung Pelepas",
        lat: 1.36,
        lon: 103.55,
        weight: 4.0,
        region: Region::SoutheastAsia,
    },
    Port {
        locode: "THLCH",
        name: "Laem Chabang",
        lat: 13.08,
        lon: 100.88,
        weight: 3.5,
        region: Region::SoutheastAsia,
    },
    Port {
        locode: "VNSGN",
        name: "Ho Chi Minh City",
        lat: 10.77,
        lon: 106.70,
        weight: 3.0,
        region: Region::SoutheastAsia,
    },
    Port {
        locode: "VNHPH",
        name: "Haiphong",
        lat: 20.85,
        lon: 106.68,
        weight: 2.5,
        region: Region::SoutheastAsia,
    },
    Port {
        locode: "IDJKT",
        name: "Jakarta (Tanjung Priok)",
        lat: -6.10,
        lon: 106.88,
        weight: 3.0,
        region: Region::SoutheastAsia,
    },
    Port {
        locode: "IDSUB",
        name: "Surabaya",
        lat: -7.20,
        lon: 112.73,
        weight: 2.0,
        region: Region::SoutheastAsia,
    },
    Port {
        locode: "PHMNL",
        name: "Manila",
        lat: 14.58,
        lon: 120.96,
        weight: 2.5,
        region: Region::SoutheastAsia,
    },
    // --- South Asia ---
    Port {
        locode: "LKCMB",
        name: "Colombo",
        lat: 6.95,
        lon: 79.85,
        weight: 3.5,
        region: Region::SouthAsia,
    },
    Port {
        locode: "INNSA",
        name: "Nhava Sheva (Mumbai)",
        lat: 18.95,
        lon: 72.95,
        weight: 3.5,
        region: Region::SouthAsia,
    },
    Port {
        locode: "INMUN",
        name: "Mundra",
        lat: 22.74,
        lon: 69.70,
        weight: 3.0,
        region: Region::SouthAsia,
    },
    Port {
        locode: "INMAA",
        name: "Chennai",
        lat: 13.10,
        lon: 80.30,
        weight: 2.0,
        region: Region::SouthAsia,
    },
    Port {
        locode: "INVTZ",
        name: "Visakhapatnam",
        lat: 17.69,
        lon: 83.29,
        weight: 1.5,
        region: Region::SouthAsia,
    },
    Port {
        locode: "PKKHI",
        name: "Karachi",
        lat: 24.80,
        lon: 66.97,
        weight: 2.0,
        region: Region::SouthAsia,
    },
    Port {
        locode: "BDCGP",
        name: "Chittagong",
        lat: 22.30,
        lon: 91.80,
        weight: 2.0,
        region: Region::SouthAsia,
    },
    // --- Middle East ---
    Port {
        locode: "AEJEA",
        name: "Jebel Ali (Dubai)",
        lat: 25.01,
        lon: 55.06,
        weight: 5.5,
        region: Region::MiddleEast,
    },
    Port {
        locode: "SAJED",
        name: "Jeddah",
        lat: 21.48,
        lon: 39.18,
        weight: 3.0,
        region: Region::MiddleEast,
    },
    Port {
        locode: "OMSLL",
        name: "Salalah",
        lat: 16.95,
        lon: 54.00,
        weight: 2.5,
        region: Region::MiddleEast,
    },
    Port {
        locode: "IRBND",
        name: "Bandar Abbas",
        lat: 27.15,
        lon: 56.21,
        weight: 2.0,
        region: Region::MiddleEast,
    },
    Port {
        locode: "KWSAA",
        name: "Shuaiba",
        lat: 29.03,
        lon: 48.16,
        weight: 1.5,
        region: Region::MiddleEast,
    },
    // --- Mediterranean ---
    Port {
        locode: "EGPSD",
        name: "Port Said",
        lat: 31.25,
        lon: 32.30,
        weight: 3.0,
        region: Region::Mediterranean,
    },
    Port {
        locode: "EGALY",
        name: "Alexandria",
        lat: 31.20,
        lon: 29.88,
        weight: 1.8,
        region: Region::Mediterranean,
    },
    Port {
        locode: "GRPIR",
        name: "Piraeus",
        lat: 37.94,
        lon: 23.64,
        weight: 3.5,
        region: Region::Mediterranean,
    },
    Port {
        locode: "ITGIT",
        name: "Gioia Tauro",
        lat: 38.45,
        lon: 15.90,
        weight: 2.0,
        region: Region::Mediterranean,
    },
    Port {
        locode: "ITGOA",
        name: "Genoa",
        lat: 44.40,
        lon: 8.92,
        weight: 2.2,
        region: Region::Mediterranean,
    },
    Port {
        locode: "ESVLC",
        name: "Valencia",
        lat: 39.45,
        lon: -0.32,
        weight: 3.0,
        region: Region::Mediterranean,
    },
    Port {
        locode: "ESBCN",
        name: "Barcelona",
        lat: 41.35,
        lon: 2.16,
        weight: 2.2,
        region: Region::Mediterranean,
    },
    Port {
        locode: "ESALG",
        name: "Algeciras",
        lat: 36.13,
        lon: -5.44,
        weight: 3.2,
        region: Region::Mediterranean,
    },
    Port {
        locode: "MTMAR",
        name: "Marsaxlokk",
        lat: 35.83,
        lon: 14.54,
        weight: 1.8,
        region: Region::Mediterranean,
    },
    Port {
        locode: "FRMRS",
        name: "Marseille-Fos",
        lat: 43.40,
        lon: 4.90,
        weight: 2.0,
        region: Region::Mediterranean,
    },
    Port {
        locode: "MATNG",
        name: "Tanger Med",
        lat: 35.88,
        lon: -5.50,
        weight: 2.8,
        region: Region::Mediterranean,
    },
    Port {
        locode: "TRMER",
        name: "Mersin",
        lat: 36.78,
        lon: 34.64,
        weight: 1.6,
        region: Region::Mediterranean,
    },
    Port {
        locode: "TRAMR",
        name: "Ambarli (Istanbul)",
        lat: 40.97,
        lon: 28.68,
        weight: 2.0,
        region: Region::Mediterranean,
    },
    Port {
        locode: "ILHFA",
        name: "Haifa",
        lat: 32.82,
        lon: 35.00,
        weight: 1.4,
        region: Region::Mediterranean,
    },
    // --- Black Sea ---
    Port {
        locode: "ROCND",
        name: "Constanta",
        lat: 44.17,
        lon: 28.65,
        weight: 1.6,
        region: Region::BlackSea,
    },
    Port {
        locode: "UAODS",
        name: "Odesa",
        lat: 46.49,
        lon: 30.74,
        weight: 1.4,
        region: Region::BlackSea,
    },
    Port {
        locode: "RUNVS",
        name: "Novorossiysk",
        lat: 44.72,
        lon: 37.78,
        weight: 1.8,
        region: Region::BlackSea,
    },
    // --- North Europe ---
    Port {
        locode: "NLRTM",
        name: "Rotterdam",
        lat: 51.95,
        lon: 4.14,
        weight: 8.0,
        region: Region::NorthEurope,
    },
    Port {
        locode: "BEANR",
        name: "Antwerp",
        lat: 51.28,
        lon: 4.34,
        weight: 6.0,
        region: Region::NorthEurope,
    },
    Port {
        locode: "DEHAM",
        name: "Hamburg",
        lat: 53.54,
        lon: 9.98,
        weight: 5.0,
        region: Region::NorthEurope,
    },
    Port {
        locode: "DEBRV",
        name: "Bremerhaven",
        lat: 53.55,
        lon: 8.58,
        weight: 3.5,
        region: Region::NorthEurope,
    },
    Port {
        locode: "GBFXT",
        name: "Felixstowe",
        lat: 51.96,
        lon: 1.32,
        weight: 3.0,
        region: Region::NorthEurope,
    },
    Port {
        locode: "GBSOU",
        name: "Southampton",
        lat: 50.90,
        lon: -1.43,
        weight: 2.2,
        region: Region::NorthEurope,
    },
    Port {
        locode: "GBLGP",
        name: "London Gateway",
        lat: 51.50,
        lon: 0.49,
        weight: 1.8,
        region: Region::NorthEurope,
    },
    Port {
        locode: "FRLEH",
        name: "Le Havre",
        lat: 49.48,
        lon: 0.11,
        weight: 2.5,
        region: Region::NorthEurope,
    },
    Port {
        locode: "FRDKK",
        name: "Dunkirk",
        lat: 51.03,
        lon: 2.20,
        weight: 1.2,
        region: Region::NorthEurope,
    },
    Port {
        locode: "BEZEE",
        name: "Zeebrugge",
        lat: 51.33,
        lon: 3.20,
        weight: 1.8,
        region: Region::NorthEurope,
    },
    Port {
        locode: "ESBIO",
        name: "Bilbao",
        lat: 43.35,
        lon: -3.03,
        weight: 1.0,
        region: Region::NorthEurope,
    },
    Port {
        locode: "PTLIS",
        name: "Lisbon",
        lat: 38.70,
        lon: -9.15,
        weight: 1.2,
        region: Region::NorthEurope,
    },
    Port {
        locode: "PTSIE",
        name: "Sines",
        lat: 37.95,
        lon: -8.87,
        weight: 1.4,
        region: Region::NorthEurope,
    },
    // --- Baltic ---
    Port {
        locode: "PLGDN",
        name: "Gdansk",
        lat: 54.40,
        lon: 18.67,
        weight: 2.0,
        region: Region::Baltic,
    },
    Port {
        locode: "SEGOT",
        name: "Gothenburg",
        lat: 57.69,
        lon: 11.90,
        weight: 1.6,
        region: Region::Baltic,
    },
    Port {
        locode: "DKAAR",
        name: "Aarhus",
        lat: 56.15,
        lon: 10.22,
        weight: 1.2,
        region: Region::Baltic,
    },
    Port {
        locode: "DKCPH",
        name: "Copenhagen",
        lat: 55.68,
        lon: 12.60,
        weight: 1.0,
        region: Region::Baltic,
    },
    Port {
        locode: "FIHEL",
        name: "Helsinki",
        lat: 60.15,
        lon: 24.95,
        weight: 1.2,
        region: Region::Baltic,
    },
    Port {
        locode: "RULED",
        name: "St Petersburg",
        lat: 59.88,
        lon: 30.20,
        weight: 2.0,
        region: Region::Baltic,
    },
    Port {
        locode: "EETLL",
        name: "Tallinn",
        lat: 59.44,
        lon: 24.75,
        weight: 1.0,
        region: Region::Baltic,
    },
    Port {
        locode: "LVRIX",
        name: "Riga",
        lat: 57.00,
        lon: 24.10,
        weight: 0.9,
        region: Region::Baltic,
    },
    Port {
        locode: "LTKLJ",
        name: "Klaipeda",
        lat: 55.70,
        lon: 21.13,
        weight: 0.9,
        region: Region::Baltic,
    },
    Port {
        locode: "SESTO",
        name: "Stockholm",
        lat: 59.32,
        lon: 18.07,
        weight: 0.8,
        region: Region::Baltic,
    },
    // --- North America East / Gulf / West ---
    Port {
        locode: "USNYC",
        name: "New York / New Jersey",
        lat: 40.67,
        lon: -74.05,
        weight: 5.0,
        region: Region::NorthAmericaEast,
    },
    Port {
        locode: "USSAV",
        name: "Savannah",
        lat: 32.08,
        lon: -81.09,
        weight: 3.5,
        region: Region::NorthAmericaEast,
    },
    Port {
        locode: "USORF",
        name: "Norfolk",
        lat: 36.90,
        lon: -76.33,
        weight: 2.5,
        region: Region::NorthAmericaEast,
    },
    Port {
        locode: "USCHS",
        name: "Charleston",
        lat: 32.78,
        lon: -79.92,
        weight: 2.2,
        region: Region::NorthAmericaEast,
    },
    Port {
        locode: "USMIA",
        name: "Miami",
        lat: 25.77,
        lon: -80.17,
        weight: 1.8,
        region: Region::NorthAmericaEast,
    },
    Port {
        locode: "CAMTR",
        name: "Montreal",
        lat: 45.55,
        lon: -73.52,
        weight: 1.4,
        region: Region::NorthAmericaEast,
    },
    Port {
        locode: "CAHAL",
        name: "Halifax",
        lat: 44.64,
        lon: -63.57,
        weight: 1.2,
        region: Region::NorthAmericaEast,
    },
    Port {
        locode: "USHOU",
        name: "Houston",
        lat: 29.61,
        lon: -94.93,
        weight: 3.5,
        region: Region::NorthAmericaGulf,
    },
    Port {
        locode: "USMSY",
        name: "New Orleans",
        lat: 29.93,
        lon: -90.06,
        weight: 2.0,
        region: Region::NorthAmericaGulf,
    },
    Port {
        locode: "USLAX",
        name: "Los Angeles",
        lat: 33.73,
        lon: -118.26,
        weight: 5.5,
        region: Region::NorthAmericaWest,
    },
    Port {
        locode: "USLGB",
        name: "Long Beach",
        lat: 33.75,
        lon: -118.20,
        weight: 4.5,
        region: Region::NorthAmericaWest,
    },
    Port {
        locode: "USOAK",
        name: "Oakland",
        lat: 37.80,
        lon: -122.30,
        weight: 2.2,
        region: Region::NorthAmericaWest,
    },
    Port {
        locode: "USSEA",
        name: "Seattle",
        lat: 47.60,
        lon: -122.34,
        weight: 2.0,
        region: Region::NorthAmericaWest,
    },
    Port {
        locode: "CAVAN",
        name: "Vancouver",
        lat: 49.29,
        lon: -123.11,
        weight: 2.8,
        region: Region::NorthAmericaWest,
    },
    Port {
        locode: "CAPRR",
        name: "Prince Rupert",
        lat: 54.30,
        lon: -130.32,
        weight: 1.2,
        region: Region::NorthAmericaWest,
    },
    // --- Latin America ---
    Port {
        locode: "BRSSZ",
        name: "Santos",
        lat: -23.98,
        lon: -46.30,
        weight: 3.0,
        region: Region::LatamEast,
    },
    Port {
        locode: "BRPNG",
        name: "Paranagua",
        lat: -25.50,
        lon: -48.51,
        weight: 1.5,
        region: Region::LatamEast,
    },
    Port {
        locode: "BRRIO",
        name: "Rio de Janeiro",
        lat: -22.89,
        lon: -43.18,
        weight: 1.5,
        region: Region::LatamEast,
    },
    Port {
        locode: "ARBUE",
        name: "Buenos Aires",
        lat: -34.60,
        lon: -58.37,
        weight: 1.8,
        region: Region::LatamEast,
    },
    Port {
        locode: "UYMVD",
        name: "Montevideo",
        lat: -34.90,
        lon: -56.21,
        weight: 1.0,
        region: Region::LatamEast,
    },
    Port {
        locode: "PECLL",
        name: "Callao",
        lat: -12.05,
        lon: -77.15,
        weight: 1.6,
        region: Region::LatamWest,
    },
    Port {
        locode: "CLVAP",
        name: "Valparaiso",
        lat: -33.03,
        lon: -71.63,
        weight: 1.2,
        region: Region::LatamWest,
    },
    Port {
        locode: "CLSAI",
        name: "San Antonio",
        lat: -33.59,
        lon: -71.62,
        weight: 1.2,
        region: Region::LatamWest,
    },
    Port {
        locode: "ECGYE",
        name: "Guayaquil",
        lat: -2.28,
        lon: -79.91,
        weight: 1.2,
        region: Region::LatamWest,
    },
    Port {
        locode: "MXLZC",
        name: "Lazaro Cardenas",
        lat: 17.94,
        lon: -102.18,
        weight: 1.2,
        region: Region::LatamWest,
    },
    Port {
        locode: "MXZLO",
        name: "Manzanillo",
        lat: 19.06,
        lon: -104.31,
        weight: 1.4,
        region: Region::LatamWest,
    },
    // --- Caribbean / Panama ---
    Port {
        locode: "PAONX",
        name: "Colon",
        lat: 9.36,
        lon: -79.90,
        weight: 2.2,
        region: Region::Caribbean,
    },
    Port {
        locode: "PABLB",
        name: "Balboa",
        lat: 8.95,
        lon: -79.57,
        weight: 2.2,
        region: Region::Caribbean,
    },
    Port {
        locode: "COCTG",
        name: "Cartagena",
        lat: 10.40,
        lon: -75.51,
        weight: 1.8,
        region: Region::Caribbean,
    },
    Port {
        locode: "JMKIN",
        name: "Kingston",
        lat: 17.97,
        lon: -76.80,
        weight: 1.4,
        region: Region::Caribbean,
    },
    Port {
        locode: "DOCAU",
        name: "Caucedo",
        lat: 18.42,
        lon: -69.63,
        weight: 1.0,
        region: Region::Caribbean,
    },
    // --- Africa ---
    Port {
        locode: "ZADUR",
        name: "Durban",
        lat: -29.87,
        lon: 31.03,
        weight: 2.2,
        region: Region::AfricaSouth,
    },
    Port {
        locode: "ZACPT",
        name: "Cape Town",
        lat: -33.90,
        lon: 18.43,
        weight: 1.6,
        region: Region::AfricaSouth,
    },
    Port {
        locode: "NGLOS",
        name: "Lagos (Apapa)",
        lat: 6.43,
        lon: 3.40,
        weight: 1.6,
        region: Region::AfricaWest,
    },
    Port {
        locode: "GHTEM",
        name: "Tema",
        lat: 5.62,
        lon: 0.00,
        weight: 1.2,
        region: Region::AfricaWest,
    },
    Port {
        locode: "CIABJ",
        name: "Abidjan",
        lat: 5.25,
        lon: -4.00,
        weight: 1.2,
        region: Region::AfricaWest,
    },
    Port {
        locode: "SNDKR",
        name: "Dakar",
        lat: 14.68,
        lon: -17.43,
        weight: 1.0,
        region: Region::AfricaWest,
    },
    Port {
        locode: "AOLAD",
        name: "Luanda",
        lat: -8.80,
        lon: 13.23,
        weight: 1.0,
        region: Region::AfricaWest,
    },
    Port {
        locode: "TZDAR",
        name: "Dar es Salaam",
        lat: -6.82,
        lon: 39.30,
        weight: 1.2,
        region: Region::AfricaEast,
    },
    Port {
        locode: "KEMBA",
        name: "Mombasa",
        lat: -4.07,
        lon: 39.66,
        weight: 1.2,
        region: Region::AfricaEast,
    },
    Port {
        locode: "DJJIB",
        name: "Djibouti",
        lat: 11.60,
        lon: 43.15,
        weight: 1.4,
        region: Region::AfricaEast,
    },
    // --- Oceania ---
    Port {
        locode: "AUMEL",
        name: "Melbourne",
        lat: -37.83,
        lon: 144.92,
        weight: 2.0,
        region: Region::Oceania,
    },
    Port {
        locode: "AUSYD",
        name: "Sydney (Botany)",
        lat: -33.97,
        lon: 151.22,
        weight: 1.8,
        region: Region::Oceania,
    },
    Port {
        locode: "AUBNE",
        name: "Brisbane",
        lat: -27.38,
        lon: 153.17,
        weight: 1.4,
        region: Region::Oceania,
    },
    Port {
        locode: "AUFRE",
        name: "Fremantle",
        lat: -32.05,
        lon: 115.74,
        weight: 1.2,
        region: Region::Oceania,
    },
    Port {
        locode: "NZAKL",
        name: "Auckland",
        lat: -36.84,
        lon: 174.77,
        weight: 1.2,
        region: Region::Oceania,
    },
    Port {
        locode: "NZTRG",
        name: "Tauranga",
        lat: -37.64,
        lon: 176.18,
        weight: 1.0,
        region: Region::Oceania,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn table_size_and_uniqueness() {
        assert!(WORLD_PORTS.len() >= 100, "got {}", WORLD_PORTS.len());
        let locodes: HashSet<_> = WORLD_PORTS.iter().map(|p| p.locode).collect();
        assert_eq!(locodes.len(), WORLD_PORTS.len(), "duplicate LOCODEs");
    }

    #[test]
    fn coordinates_valid_and_weights_positive() {
        for p in WORLD_PORTS {
            let _ = p.pos(); // panics when invalid
            assert!(p.weight > 0.0, "{}", p.locode);
            assert_eq!(p.locode.len(), 5, "{}", p.locode);
        }
    }

    #[test]
    fn lookup_by_locode() {
        let (id, p) = port_by_locode("SGSIN").unwrap();
        assert_eq!(p.name, "Singapore");
        assert_eq!(WORLD_PORTS[id.0 as usize].locode, "SGSIN");
        assert!(port_by_locode("XXXXX").is_none());
    }

    #[test]
    fn figure6_hub_ports_present_and_heavy() {
        for code in ["SGSIN", "CNSHA", "NLRTM"] {
            let (_, p) = port_by_locode(code).unwrap();
            assert!(p.weight >= 7.0, "{code} must be a hub, weight {}", p.weight);
        }
    }

    #[test]
    fn known_distances_sane() {
        // Rotterdam–Antwerp ≈ 80 km; Singapore–Tanjung Pelepas ≈ 35 km.
        let (_, rtm) = port_by_locode("NLRTM").unwrap();
        let (_, anr) = port_by_locode("BEANR").unwrap();
        let d = pol_geo::haversine_km(rtm.pos(), anr.pos());
        assert!((50.0..120.0).contains(&d), "RTM-ANR {d}");
        let (_, sin) = port_by_locode("SGSIN").unwrap();
        let (_, tpp) = port_by_locode("MYTPP").unwrap();
        let d = pol_geo::haversine_km(sin.pos(), tpp.pos());
        assert!(d < 60.0, "SIN-TPP {d}");
    }

    #[test]
    fn all_regions_inhabited() {
        use Region::*;
        for r in [
            NorthEurope,
            Baltic,
            Mediterranean,
            BlackSea,
            MiddleEast,
            SouthAsia,
            SoutheastAsia,
            EastAsia,
            Oceania,
            NorthAmericaEast,
            NorthAmericaWest,
            NorthAmericaGulf,
            LatamEast,
            LatamWest,
            Caribbean,
            AfricaWest,
            AfricaEast,
            AfricaSouth,
        ] {
            assert!(
                WORLD_PORTS.iter().any(|p| p.region == r),
                "region {r:?} empty"
            );
        }
    }
}
