//! # pol-fleetsim — the data substrate
//!
//! The paper's inventory is built from a proprietary archive: every
//! positional report MarineTraffic (Kpler) received in 2022 — 2.7 billion
//! records from ~60 000 commercial vessels (Table 1). That archive cannot
//! ship with a reproduction, so this crate builds the closest synthetic
//! equivalent that exercises the same code paths:
//!
//! * [`rng`] — an own splitmix64/xoshiro256** PRNG so datasets are
//!   bit-reproducible from a seed across toolchains,
//! * [`ports`] — ~110 real-world major ports with true coordinates and
//!   traffic weights (the paper's "Port Information" input),
//! * [`lanes`] — a hand-curated ocean waypoint graph with the real
//!   chokepoints (Suez, Panama, Malacca, Gibraltar, Dover, Bosporus,
//!   Hormuz, Cape of Good Hope, Cape Horn…) and a Dijkstra router;
//!   canal edges carry flags so disruption scenarios can close them,
//! * [`fleet`] — a commercial fleet sampled per market segment with
//!   realistic speed and tonnage profiles (the "Vessel Static information"
//!   input),
//! * [`voyage`] — port-to-port movement along routed legs with harbour
//!   slow-downs and port dwell,
//! * [`emit`] — AIS-protocol-faithful report emission: class-A reporting
//!   intervals by speed/status, GPS noise, reception dropout, and the
//!   occasional corrupt field the cleaning step (§3.3.1) must reject,
//! * [`scenario`] — packaged datasets: a baseline "year", a COVID-style
//!   port closure, and a Suez-style canal blockage with Cape reroute,
//! * [`stream`] — the `--stream` emission mode: a k-way merge of the
//!   per-vessel partitions into one globally timestamp-ordered,
//!   vessel-interleaved wire for live-ingestion consumers.
//!
//! Everything is deterministic given [`scenario::ScenarioConfig::seed`].

#![deny(missing_docs)]

pub mod emit;
pub mod fleet;
pub mod lanes;
pub mod nmea_out;
pub mod ports;
pub mod rng;
pub mod scenario;
pub mod stream;
pub mod voyage;

pub use fleet::{Fleet, VesselSpec};
pub use lanes::{LaneGraph, RouteOptions};
pub use ports::{Port, PortId, WORLD_PORTS};
pub use rng::Rng;
pub use scenario::{Dataset, Disruption, ScenarioConfig};

/// Unix timestamp of 2022-01-01T00:00:00Z — the simulated year's origin,
/// matching the paper's 2022 dataset.
pub const EPOCH_2022: i64 = 1_640_995_200;
