//! Voyage kinematics: where a vessel is, how fast, and pointing where, at
//! any instant of a planned port-to-port passage.

use crate::lanes::Route;
use crate::ports::PortId;
use pol_ais::types::NavStatus;
use pol_geo::LatLon;

/// Distance (km) of the reduced-speed harbour approach/departure zones.
pub const HARBOUR_ZONE_KM: f64 = 25.0;

/// Speed multiplier inside harbour zones.
pub const HARBOUR_SPEED_FACTOR: f64 = 0.4;

/// One planned passage.
#[derive(Clone, Debug)]
pub struct VoyagePlan {
    /// Origin port.
    pub origin: PortId,
    /// Destination port.
    pub dest: PortId,
    /// Unix departure time (leaving the origin berth).
    pub departure: i64,
    /// Cruise speed in knots for this passage.
    pub speed_kn: f64,
    /// The routed polyline.
    pub route: Route,
}

/// A vessel's instantaneous kinematic state.
#[derive(Clone, Copy, Debug)]
pub struct Kinematics {
    /// Current position.
    pub pos: LatLon,
    /// Speed over ground, knots.
    pub sog_knots: f64,
    /// Course over ground, degrees.
    pub cog_deg: f64,
    /// Navigational status at this instant.
    pub nav_status: NavStatus,
}

impl VoyagePlan {
    /// Cruise speed in km/h.
    fn cruise_kmh(&self) -> f64 {
        pol_geo::units::knots_to_kmh(self.speed_kn)
    }

    /// Total passage duration in seconds, accounting for the slow harbour
    /// zones at both ends.
    pub fn duration_secs(&self) -> i64 {
        let d = self.route.distance_km;
        let v = self.cruise_kmh();
        let slow = HARBOUR_ZONE_KM.min(d / 2.0);
        let cruise = (d - 2.0 * slow).max(0.0);
        let hours = cruise / v + 2.0 * slow / (v * HARBOUR_SPEED_FACTOR);
        (hours * 3600.0).ceil() as i64
    }

    /// Unix arrival time.
    pub fn arrival(&self) -> i64 {
        self.departure + self.duration_secs()
    }

    /// Distance travelled (km) after `dt` seconds under way.
    fn travelled_km(&self, dt: f64) -> f64 {
        let d = self.route.distance_km;
        let v = self.cruise_kmh();
        let slow_v = v * HARBOUR_SPEED_FACTOR;
        let slow = HARBOUR_ZONE_KM.min(d / 2.0);
        let t1 = slow / slow_v * 3600.0; // end of departure zone, secs
        let cruise = (d - 2.0 * slow).max(0.0);
        let t2 = t1 + cruise / v * 3600.0; // start of arrival zone
        if dt <= t1 {
            slow_v * dt / 3600.0
        } else if dt <= t2 {
            slow + v * (dt - t1) / 3600.0
        } else {
            (slow + cruise + slow_v * (dt - t2) / 3600.0).min(d)
        }
    }

    /// Instantaneous speed (knots) at `dt` seconds into the passage.
    fn speed_at(&self, dt: f64) -> f64 {
        let d = self.route.distance_km;
        let slow = HARBOUR_ZONE_KM.min(d / 2.0);
        let travelled = self.travelled_km(dt);
        if travelled < slow || travelled > d - slow {
            self.speed_kn * HARBOUR_SPEED_FACTOR
        } else {
            self.speed_kn
        }
    }

    /// Kinematic state at Unix time `t`, or `None` when the vessel is not
    /// under way on this passage at `t`.
    pub fn kinematics_at(&self, t: i64) -> Option<Kinematics> {
        if t < self.departure || t > self.arrival() {
            return None;
        }
        let dt = (t - self.departure) as f64;
        let travelled = self.travelled_km(dt);
        Some(Kinematics {
            pos: self.route.position_at(travelled),
            sog_knots: self.speed_at(dt),
            cog_deg: self.route.bearing_at(travelled),
            nav_status: NavStatus::UnderWayUsingEngine,
        })
    }
}

/// One entry of a vessel's simulated calendar.
#[derive(Clone, Debug)]
pub enum Activity {
    /// Berthed/moored in a port.
    InPort {
        /// The port called at.
        port: PortId,
        /// Berth start, Unix seconds.
        from: i64,
        /// Berth end, Unix seconds.
        to: i64,
    },
    /// Under way on a passage.
    Voyage(VoyagePlan),
}

impl Activity {
    /// Start time.
    pub fn from(&self) -> i64 {
        match self {
            Activity::InPort { from, .. } => *from,
            Activity::Voyage(v) => v.departure,
        }
    }

    /// End time.
    pub fn to(&self) -> i64 {
        match self {
            Activity::InPort { to, .. } => *to,
            Activity::Voyage(v) => v.arrival(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes::{LaneGraph, RouteOptions};
    use crate::ports::port_by_locode;

    fn plan(from: &str, to: &str, speed: f64) -> VoyagePlan {
        let (o, _) = port_by_locode(from).unwrap();
        let (d, _) = port_by_locode(to).unwrap();
        let route = LaneGraph::global()
            .route(o, d, RouteOptions::default())
            .unwrap();
        VoyagePlan {
            origin: o,
            dest: d,
            departure: 1_640_995_200,
            speed_kn: speed,
            route,
        }
    }

    #[test]
    fn duration_matches_known_passage() {
        // Rotterdam -> Singapore at 16 kn ≈ 21-24 days.
        let p = plan("NLRTM", "SGSIN", 16.0);
        let days = p.duration_secs() as f64 / 86_400.0;
        assert!((19.0..28.0).contains(&days), "{days} days");
    }

    #[test]
    fn kinematics_outside_window_is_none() {
        let p = plan("NLRTM", "BEANR", 12.0);
        assert!(p.kinematics_at(p.departure - 1).is_none());
        assert!(p.kinematics_at(p.arrival() + 1).is_none());
        assert!(p.kinematics_at(p.departure).is_some());
        assert!(p.kinematics_at(p.arrival()).is_some());
    }

    #[test]
    fn starts_and_ends_at_the_berths() {
        let p = plan("NLRTM", "SGSIN", 16.0);
        let (_, rtm) = port_by_locode("NLRTM").unwrap();
        let (_, sin) = port_by_locode("SGSIN").unwrap();
        let k0 = p.kinematics_at(p.departure).unwrap();
        assert!(pol_geo::haversine_km(k0.pos, rtm.pos()) < 1.0);
        let k1 = p.kinematics_at(p.arrival()).unwrap();
        assert!(
            pol_geo::haversine_km(k1.pos, sin.pos()) < 2.0,
            "{:?}",
            k1.pos
        );
    }

    #[test]
    fn slow_in_harbour_fast_at_sea() {
        let p = plan("NLRTM", "SGSIN", 16.0);
        let early = p.kinematics_at(p.departure + 600).unwrap();
        assert!(early.sog_knots < 8.0, "harbour speed {}", early.sog_knots);
        let mid = p
            .kinematics_at(p.departure + p.duration_secs() / 2)
            .unwrap();
        assert!(
            (mid.sog_knots - 16.0).abs() < 0.1,
            "cruise {}",
            mid.sog_knots
        );
        assert_eq!(mid.nav_status, NavStatus::UnderWayUsingEngine);
    }

    #[test]
    fn progress_is_monotone() {
        let p = plan("CNSHA", "USLAX", 18.0);
        let (_, sha) = port_by_locode("CNSHA").unwrap();
        let mut prev = 0.0;
        let n = 40;
        for i in 0..=n {
            let t = p.departure + p.duration_secs() * i / n;
            let k = p.kinematics_at(t).unwrap();
            let d = pol_geo::haversine_km(sha.pos(), k.pos);
            // Distance from origin grows along the lane (allow lane wiggle).
            if i > n / 10 {
                assert!(d >= prev - 200.0, "step {i}: {d} < {prev}");
            }
            prev = prev.max(d);
        }
    }

    #[test]
    fn activity_window_accessors() {
        let p = plan("NLRTM", "BEANR", 12.0);
        let arr = p.arrival();
        let a = Activity::Voyage(p);
        assert_eq!(a.from(), 1_640_995_200);
        assert_eq!(a.to(), arr);
        let ip = Activity::InPort {
            port: PortId(0),
            from: 5,
            to: 10,
        };
        assert_eq!(ip.from(), 5);
        assert_eq!(ip.to(), 10);
    }
}
