//! The ocean waypoint graph and router.
//!
//! Vessels don't sail point-to-point great circles: they follow lanes
//! through straits and canals. The simulator models this with a
//! hand-curated backbone of ~95 ocean waypoints (all real chokepoints and
//! sea areas) connected by water-only legs, plus automatic attachment of
//! each port to its nearest waypoints. Routing is Dijkstra over haversine
//! edge weights.
//!
//! Canal edges (Suez, Panama) carry flags so scenarios can close them —
//! the Ever-Given disruption of the paper's introduction is literally
//! "route with `avoid_suez = true`", which sends Asia–Europe traffic
//! around the Cape of Good Hope exactly as 2021 did.
//!
//! Fidelity note: a handful of legs clip coastlines slightly (e.g. the
//! Banda-Sea shortcut); the methodology under test aggregates *observed*
//! positions per cell and never consults a land mask, so cosmetic routing
//! imperfections do not affect any experiment.

use crate::ports::{PortId, WORLD_PORTS};
use pol_geo::{haversine_km, interpolate, LatLon};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::OnceLock;

/// Canal membership of an edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Canal {
    /// Open water.
    None,
    /// The Suez canal system.
    Suez,
    /// The Panama canal system.
    Panama,
}

/// Options for routing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouteOptions {
    /// Treat Suez as closed (Ever-Given scenario).
    pub avoid_suez: bool,
    /// Treat Panama as closed.
    pub avoid_panama: bool,
}

/// A routed voyage: the polyline a vessel will follow.
#[derive(Clone, Debug)]
pub struct Route {
    /// Waypoints from origin port to destination port inclusive.
    pub points: Vec<LatLon>,
    /// Total length in km.
    pub distance_km: f64,
    /// Names of backbone waypoints traversed (diagnostics).
    pub via: Vec<&'static str>,
}

impl Route {
    /// Position at `travelled_km` along the polyline (clamped to the ends).
    pub fn position_at(&self, travelled_km: f64) -> LatLon {
        let (Some(&first), Some(&last)) = (self.points.first(), self.points.last()) else {
            return LatLon::wrapped(0.0, 0.0); // degenerate empty route
        };
        if travelled_km <= 0.0 {
            return first;
        }
        let mut remaining = travelled_km;
        for (&a, &b) in self.points.iter().zip(self.points.iter().skip(1)) {
            let leg = haversine_km(a, b);
            if remaining <= leg {
                let f = if leg > 0.0 { remaining / leg } else { 0.0 };
                return interpolate(a, b, f);
            }
            remaining -= leg;
        }
        last
    }

    /// Bearing of travel at `travelled_km` along the polyline, degrees.
    pub fn bearing_at(&self, travelled_km: f64) -> f64 {
        let Some(&last) = self.points.last() else {
            return 0.0;
        };
        let mut remaining = travelled_km.max(0.0);
        for (&a, &b) in self.points.iter().zip(self.points.iter().skip(1)) {
            let leg = haversine_km(a, b);
            if remaining <= leg || b == last {
                let f = if leg > 0.0 {
                    (remaining / leg).min(1.0)
                } else {
                    0.0
                };
                let here = interpolate(a, b, f);
                return pol_geo::initial_bearing_deg(here, b);
            }
            remaining -= leg;
        }
        0.0
    }
}

struct Waypoint(&'static str, f64, f64);

/// Ocean backbone waypoints: real straits, canal mouths and open-sea marks.
static WAYPOINTS: &[Waypoint] = &[
    // Europe / North Sea / Baltic
    Waypoint("north-sea-s", 52.5, 3.0),
    Waypoint("north-sea-n", 57.0, 4.0),
    Waypoint("skagen", 57.8, 10.7),
    Waypoint("kattegat", 56.3, 11.9),
    Waypoint("oresund", 55.1, 12.75),
    Waypoint("baltic-sw", 54.9, 13.5),
    Waypoint("baltic-mid", 56.0, 17.5),
    Waypoint("baltic-n", 58.8, 20.5),
    Waypoint("gulf-finland", 59.75, 24.0),
    Waypoint("dover", 51.1, 1.45),
    Waypoint("channel-w", 49.8, -3.5),
    Waypoint("ushant", 48.7, -5.8),
    Waypoint("biscay", 45.5, -5.5),
    Waypoint("finisterre", 43.3, -9.7),
    Waypoint("portugal", 38.6, -9.8),
    Waypoint("gibraltar", 35.95, -5.7),
    // Mediterranean / Black Sea
    Waypoint("alboran", 36.2, -2.5),
    Waypoint("med-w", 37.8, 3.0),
    Waypoint("sardinia-s", 38.0, 9.0),
    Waypoint("sicily", 37.0, 11.5),
    Waypoint("ionian", 36.5, 17.0),
    Waypoint("aegean-s", 36.2, 25.0),
    Waypoint("dardanelles", 40.1, 26.2),
    Waypoint("marmara", 40.8, 28.2),
    Waypoint("bosporus", 41.2, 29.1),
    Waypoint("black-sea", 43.5, 32.0),
    Waypoint("med-e", 33.8, 28.0),
    Waypoint("port-said-app", 31.6, 32.2),
    // Suez / Red Sea / Arabian Sea
    Waypoint("suez-canal", 30.5, 32.4),
    Waypoint("gulf-suez", 28.5, 33.2),
    Waypoint("red-sea", 20.0, 38.7),
    Waypoint("bab-el-mandeb", 12.55, 43.4),
    Waypoint("gulf-aden", 12.8, 48.5),
    Waypoint("socotra", 12.5, 55.0),
    Waypoint("gulf-oman", 24.5, 59.0),
    Waypoint("hormuz", 26.4, 56.6),
    Waypoint("arabian-sea", 15.0, 65.0),
    Waypoint("lakshadweep", 9.0, 74.0),
    Waypoint("dondra", 5.6, 80.6),
    Waypoint("bengal", 12.0, 87.0),
    // Southeast Asia / Far East
    Waypoint("aceh", 5.9, 94.5),
    Waypoint("malacca", 3.5, 99.5),
    Waypoint("singapore-strait", 1.2, 103.9),
    Waypoint("natuna", 4.0, 108.0),
    Waypoint("scs", 11.0, 111.5),
    Waypoint("luzon", 19.5, 119.5),
    Waypoint("taiwan-strait", 24.2, 119.2),
    Waypoint("ecs", 28.5, 123.5),
    Waypoint("yellow-sea", 35.5, 123.0),
    Waypoint("bohai", 38.3, 119.5),
    Waypoint("korea-strait", 33.8, 128.8),
    Waypoint("japan-s", 33.3, 135.5),
    Waypoint("tokyo-app", 34.7, 139.9),
    Waypoint("japan-e", 36.0, 144.0),
    // North Pacific
    Waypoint("np-mid-w", 42.0, 165.0),
    Waypoint("np-mid", 45.0, -175.0),
    Waypoint("np-mid-e", 47.0, -155.0),
    Waypoint("gulf-alaska", 52.0, -140.0),
    Waypoint("bc-app", 50.5, -129.0),
    Waypoint("wa-app", 47.0, -125.3),
    Waypoint("or-app", 42.0, -125.5),
    Waypoint("ca-app", 36.5, -122.8),
    Waypoint("socal", 33.3, -119.5),
    Waypoint("baja", 25.0, -113.5),
    Waypoint("tehuantepec", 14.5, -94.0),
    Waypoint("cam-pac", 8.5, -86.0),
    // Panama / Caribbean / Gulf / NA East
    Waypoint("panama-pac", 7.3, -79.6),
    Waypoint("panama-canal", 9.1, -79.7),
    Waypoint("panama-atl", 9.8, -79.6),
    Waypoint("carib-w", 14.0, -78.0),
    Waypoint("carib-e", 15.5, -68.0),
    Waypoint("mona", 18.5, -67.3),
    Waypoint("yucatan", 21.8, -85.6),
    Waypoint("gom", 25.8, -89.5),
    Waypoint("florida-strait", 23.8, -80.9),
    Waypoint("bahamas", 26.5, -76.5),
    Waypoint("hatteras", 34.5, -74.5),
    Waypoint("ny-app", 40.2, -73.0),
    Waypoint("nova-scotia", 43.0, -62.0),
    Waypoint("grand-banks", 44.0, -50.0),
    Waypoint("na-mid", 48.0, -30.0),
    Waypoint("azores", 38.0, -28.0),
    // Atlantic south / Africa west
    Waypoint("canary", 27.8, -15.5),
    Waypoint("cape-verde", 16.0, -24.0),
    Waypoint("liberia", 4.5, -12.0),
    Waypoint("gulf-guinea", 2.5, 1.0),
    Waypoint("atl-eq", 0.0, -27.0),
    Waypoint("brazil-ne", -5.5, -34.0),
    Waypoint("brazil-se", -25.5, -44.0),
    Waypoint("plata", -35.8, -54.0),
    Waypoint("patagonia", -47.0, -64.0),
    Waypoint("cape-horn", -56.8, -66.5),
    Waypoint("chile-s", -44.0, -75.5),
    Waypoint("chile-c", -33.5, -73.0),
    Waypoint("peru", -13.0, -78.5),
    Waypoint("guayaquil-app", -3.0, -81.5),
    // Africa south / Indian Ocean
    Waypoint("namibia", -24.0, 13.0),
    Waypoint("cape-good-hope", -35.0, 18.5),
    Waypoint("agulhas", -36.0, 22.0),
    Waypoint("natal", -30.5, 31.5),
    Waypoint("mozambique", -17.0, 41.5),
    Waypoint("madagascar-n", -11.5, 50.5),
    Waypoint("io-mid", -8.0, 70.0),
    Waypoint("io-se", -12.0, 95.0),
    Waypoint("io-s", -32.0, 90.0),
    Waypoint("sunda", -6.5, 104.8),
    // Australia / Oceania / South Pacific
    Waypoint("aus-w", -32.5, 114.0),
    Waypoint("aus-sw", -36.5, 117.0),
    Waypoint("aus-s", -37.5, 133.0),
    Waypoint("bass", -39.8, 146.0),
    Waypoint("tasman", -36.5, 153.5),
    Waypoint("aus-ne", -25.0, 154.5),
    Waypoint("coral", -22.0, 155.5),
    Waypoint("torres", -10.3, 142.5),
    Waypoint("arafura", -9.5, 133.0),
    Waypoint("banda", -5.0, 125.5),
    Waypoint("nz-n", -35.5, 173.5),
    Waypoint("sp-mid", -30.0, -150.0),
    Waypoint("sp-e", -28.0, -100.0),
];

/// Backbone edges (waypoint name pairs + canal flag).
static EDGES: &[(&str, &str, Canal)] = &[
    ("north-sea-s", "dover", Canal::None),
    ("north-sea-s", "north-sea-n", Canal::None),
    ("north-sea-s", "skagen", Canal::None),
    ("north-sea-n", "skagen", Canal::None),
    ("skagen", "kattegat", Canal::None),
    ("kattegat", "oresund", Canal::None),
    ("oresund", "baltic-sw", Canal::None),
    ("baltic-sw", "baltic-mid", Canal::None),
    ("baltic-mid", "baltic-n", Canal::None),
    ("baltic-n", "gulf-finland", Canal::None),
    ("dover", "channel-w", Canal::None),
    ("channel-w", "ushant", Canal::None),
    ("ushant", "biscay", Canal::None),
    ("ushant", "finisterre", Canal::None),
    ("biscay", "finisterre", Canal::None),
    ("finisterre", "portugal", Canal::None),
    ("portugal", "gibraltar", Canal::None),
    ("portugal", "canary", Canal::None),
    ("portugal", "azores", Canal::None),
    ("gibraltar", "alboran", Canal::None),
    ("alboran", "med-w", Canal::None),
    ("med-w", "sardinia-s", Canal::None),
    ("sardinia-s", "sicily", Canal::None),
    ("sicily", "ionian", Canal::None),
    ("ionian", "med-e", Canal::None),
    ("ionian", "aegean-s", Canal::None),
    ("aegean-s", "med-e", Canal::None),
    ("aegean-s", "dardanelles", Canal::None),
    ("dardanelles", "marmara", Canal::None),
    ("marmara", "bosporus", Canal::None),
    ("bosporus", "black-sea", Canal::None),
    ("med-e", "port-said-app", Canal::None),
    ("port-said-app", "suez-canal", Canal::Suez),
    ("suez-canal", "gulf-suez", Canal::Suez),
    ("gulf-suez", "red-sea", Canal::None),
    ("red-sea", "bab-el-mandeb", Canal::None),
    ("bab-el-mandeb", "gulf-aden", Canal::None),
    ("gulf-aden", "socotra", Canal::None),
    ("socotra", "arabian-sea", Canal::None),
    ("socotra", "gulf-oman", Canal::None),
    ("socotra", "madagascar-n", Canal::None),
    ("gulf-oman", "hormuz", Canal::None),
    ("gulf-oman", "arabian-sea", Canal::None),
    ("arabian-sea", "lakshadweep", Canal::None),
    ("lakshadweep", "dondra", Canal::None),
    ("dondra", "bengal", Canal::None),
    ("dondra", "io-mid", Canal::None),
    ("bengal", "aceh", Canal::None),
    ("aceh", "malacca", Canal::None),
    ("malacca", "singapore-strait", Canal::None),
    ("singapore-strait", "natuna", Canal::None),
    ("singapore-strait", "sunda", Canal::None),
    ("natuna", "scs", Canal::None),
    ("scs", "luzon", Canal::None),
    ("luzon", "taiwan-strait", Canal::None),
    ("luzon", "np-mid-w", Canal::None),
    ("taiwan-strait", "ecs", Canal::None),
    ("ecs", "yellow-sea", Canal::None),
    ("ecs", "korea-strait", Canal::None),
    ("ecs", "japan-s", Canal::None),
    ("yellow-sea", "bohai", Canal::None),
    ("korea-strait", "yellow-sea", Canal::None),
    ("korea-strait", "japan-s", Canal::None),
    ("japan-s", "tokyo-app", Canal::None),
    ("tokyo-app", "japan-e", Canal::None),
    ("japan-e", "np-mid-w", Canal::None),
    ("np-mid-w", "np-mid", Canal::None),
    ("np-mid", "np-mid-e", Canal::None),
    ("np-mid-e", "gulf-alaska", Canal::None),
    ("np-mid-e", "ca-app", Canal::None),
    ("gulf-alaska", "bc-app", Canal::None),
    ("bc-app", "wa-app", Canal::None),
    ("wa-app", "or-app", Canal::None),
    ("or-app", "ca-app", Canal::None),
    ("ca-app", "socal", Canal::None),
    ("socal", "baja", Canal::None),
    ("baja", "tehuantepec", Canal::None),
    ("tehuantepec", "cam-pac", Canal::None),
    ("cam-pac", "panama-pac", Canal::None),
    ("cam-pac", "guayaquil-app", Canal::None),
    ("panama-pac", "panama-canal", Canal::Panama),
    ("panama-canal", "panama-atl", Canal::Panama),
    ("panama-atl", "carib-w", Canal::None),
    ("carib-w", "yucatan", Canal::None),
    ("carib-w", "carib-e", Canal::None),
    ("carib-e", "mona", Canal::None),
    ("mona", "bahamas", Canal::None),
    ("yucatan", "gom", Canal::None),
    ("yucatan", "florida-strait", Canal::None),
    ("florida-strait", "bahamas", Canal::None),
    ("bahamas", "hatteras", Canal::None),
    ("hatteras", "ny-app", Canal::None),
    ("hatteras", "na-mid", Canal::None),
    ("ny-app", "nova-scotia", Canal::None),
    ("nova-scotia", "grand-banks", Canal::None),
    ("grand-banks", "na-mid", Canal::None),
    ("na-mid", "channel-w", Canal::None),
    ("na-mid", "azores", Canal::None),
    ("azores", "gibraltar", Canal::None),
    ("canary", "cape-verde", Canal::None),
    ("cape-verde", "liberia", Canal::None),
    ("cape-verde", "atl-eq", Canal::None),
    ("liberia", "gulf-guinea", Canal::None),
    ("atl-eq", "gulf-guinea", Canal::None),
    ("atl-eq", "brazil-ne", Canal::None),
    ("brazil-ne", "brazil-se", Canal::None),
    ("brazil-se", "plata", Canal::None),
    ("plata", "patagonia", Canal::None),
    ("patagonia", "cape-horn", Canal::None),
    ("cape-horn", "chile-s", Canal::None),
    ("chile-s", "chile-c", Canal::None),
    ("chile-c", "peru", Canal::None),
    ("chile-c", "sp-e", Canal::None),
    ("peru", "guayaquil-app", Canal::None),
    ("gulf-guinea", "namibia", Canal::None),
    ("namibia", "cape-good-hope", Canal::None),
    ("cape-good-hope", "agulhas", Canal::None),
    ("agulhas", "natal", Canal::None),
    ("agulhas", "io-mid", Canal::None),
    ("agulhas", "io-s", Canal::None),
    ("natal", "mozambique", Canal::None),
    ("mozambique", "madagascar-n", Canal::None),
    ("madagascar-n", "io-mid", Canal::None),
    ("io-mid", "io-se", Canal::None),
    ("io-se", "sunda", Canal::None),
    ("io-se", "aus-w", Canal::None),
    ("io-s", "aus-sw", Canal::None),
    ("io-s", "io-mid", Canal::None),
    ("aus-w", "aus-sw", Canal::None),
    ("aus-sw", "aus-s", Canal::None),
    ("aus-s", "bass", Canal::None),
    ("bass", "tasman", Canal::None),
    ("tasman", "nz-n", Canal::None),
    ("tasman", "aus-ne", Canal::None),
    ("aus-ne", "coral", Canal::None),
    ("coral", "torres", Canal::None),
    ("torres", "arafura", Canal::None),
    ("arafura", "banda", Canal::None),
    ("banda", "natuna", Canal::None),
    ("nz-n", "sp-mid", Canal::None),
    ("sp-mid", "sp-e", Canal::None),
];

#[derive(Clone, Copy)]
struct Edge {
    to: usize,
    dist: f64,
    canal: Canal,
}

/// The routing graph: waypoints + ports as nodes, water legs as edges.
pub struct LaneGraph {
    positions: Vec<LatLon>,
    names: Vec<&'static str>, // "" for port nodes
    adj: Vec<Vec<Edge>>,
    port_node: Vec<usize>, // PortId.0 -> node index
}

static GRAPH: OnceLock<LaneGraph> = OnceLock::new();

impl LaneGraph {
    /// The global lane graph singleton.
    pub fn global() -> &'static LaneGraph {
        GRAPH.get_or_init(LaneGraph::build)
    }

    fn build() -> LaneGraph {
        let mut positions: Vec<LatLon> = WAYPOINTS
            .iter()
            // lint: allow(no_unwrap) — WAYPOINTS is a static table above;
            // every lanes test walks it through this constructor.
            .map(|w| LatLon::new(w.1, w.2).expect("valid waypoint"))
            .collect();
        let mut names: Vec<&'static str> = WAYPOINTS.iter().map(|w| w.0).collect();
        let n_way = positions.len();
        let mut adj: Vec<Vec<Edge>> = vec![Vec::new(); n_way];

        let idx_of = |name: &str| -> usize {
            WAYPOINTS
                .iter()
                .position(|w| w.0 == name)
                // lint: allow(no_unwrap) — EDGES only names entries of the
                // WAYPOINTS table in this file; a typo fails every test.
                .unwrap_or_else(|| panic!("unknown waypoint {name}"))
        };
        let add =
            |adj: &mut Vec<Vec<Edge>>, a: usize, b: usize, canal: Canal, positions: &[LatLon]| {
                let dist = haversine_km(positions[a], positions[b]);
                adj[a].push(Edge { to: b, dist, canal });
                adj[b].push(Edge { to: a, dist, canal });
            };
        for (a, b, canal) in EDGES {
            let (ia, ib) = (idx_of(a), idx_of(b));
            add(&mut adj, ia, ib, *canal, &positions);
        }

        // Attach each port to its two nearest backbone waypoints.
        let mut port_node = Vec::with_capacity(WORLD_PORTS.len());
        for port in WORLD_PORTS {
            let node = positions.len();
            positions.push(port.pos());
            names.push("");
            adj.push(Vec::new());
            let mut dists: Vec<(usize, f64)> = (0..n_way)
                .map(|i| (i, haversine_km(positions[node], positions[i])))
                .collect();
            // lint: allow(no_unwrap) — haversine over validated LatLons is
            // always finite, so the comparator never sees a NaN.
            dists.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
            // Always attach the nearest waypoint; attach the second only
            // when it is comparably close (a far second attachment tends to
            // cut across a landmass, e.g. a Gulf-of-Mexico port "reaching"
            // the Pacific).
            // lint: allow(no_unwrap) — `dists` has one entry per backbone
            // waypoint and the table holds well over two of them.
            add(&mut adj, node, dists[0].0, Canal::None, &positions);
            if dists[1].1 <= dists[0].1 * 1.5 {
                add(&mut adj, node, dists[1].0, Canal::None, &positions);
            }
            port_node.push(node);
        }

        // Short coastal hops between nearby ports (feeder legs).
        for i in 0..WORLD_PORTS.len() {
            for j in (i + 1)..WORLD_PORTS.len() {
                let (a, b) = (port_node[i], port_node[j]);
                if haversine_km(positions[a], positions[b]) < 400.0 {
                    add(&mut adj, a, b, Canal::None, &positions);
                }
            }
        }

        LaneGraph {
            positions,
            names,
            adj,
            port_node,
        }
    }

    /// Number of nodes (waypoints + ports).
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Shortest water route between two ports, or `None` when disconnected
    /// under the given options.
    pub fn route(&self, from: PortId, to: PortId, opts: RouteOptions) -> Option<Route> {
        let src = *self.port_node.get(from.0 as usize)?;
        let dst = *self.port_node.get(to.0 as usize)?;
        if src == dst {
            return Some(Route {
                points: vec![self.positions[src]],
                distance_km: 0.0,
                via: Vec::new(),
            });
        }
        let n = self.positions.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        dist[src] = 0.0;
        heap.push(Reverse((0, src)));
        while let Some(Reverse((d_milli, u))) = heap.pop() {
            let d = d_milli as f64 / 1000.0;
            if d > dist[u] + 1e-9 {
                continue;
            }
            if u == dst {
                break;
            }
            for e in &self.adj[u] {
                match e.canal {
                    Canal::Suez if opts.avoid_suez => continue,
                    Canal::Panama if opts.avoid_panama => continue,
                    _ => {}
                }
                let nd = dist[u] + e.dist;
                if nd + 1e-9 < dist[e.to] {
                    dist[e.to] = nd;
                    prev[e.to] = u;
                    heap.push(Reverse(((nd * 1000.0) as u64, e.to)));
                }
            }
        }
        if !dist[dst].is_finite() {
            return None;
        }
        let mut chain = vec![dst];
        let mut cur = dst;
        while cur != src {
            cur = prev[cur];
            chain.push(cur);
        }
        chain.reverse();
        let via = chain
            .iter()
            .filter_map(|&i| {
                let name = self.names[i];
                (!name.is_empty()).then_some(name)
            })
            .collect();
        Some(Route {
            points: chain.iter().map(|&i| self.positions[i]).collect(),
            distance_km: dist[dst],
            via,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ports::port_by_locode;

    fn id(code: &str) -> PortId {
        port_by_locode(code).expect("known port").0
    }

    #[test]
    fn graph_builds_and_is_connected() {
        let g = LaneGraph::global();
        assert!(g.node_count() > 200);
        // Every port reaches every other port.
        let probe = id("NLRTM");
        for i in 0..WORLD_PORTS.len() as u16 {
            let r = g.route(probe, PortId(i), RouteOptions::default());
            assert!(
                r.is_some(),
                "no route Rotterdam -> {}",
                WORLD_PORTS[i as usize].locode
            );
        }
    }

    #[test]
    fn rotterdam_singapore_goes_via_suez() {
        let g = LaneGraph::global();
        let r = g
            .route(id("NLRTM"), id("SGSIN"), RouteOptions::default())
            .unwrap();
        assert!(r.via.contains(&"suez-canal"), "via {:?}", r.via);
        // Real distance ≈ 15 500 km (8 300 nm); our polyline should be close.
        assert!(
            (14_000.0..18_000.0).contains(&r.distance_km),
            "distance {}",
            r.distance_km
        );
    }

    #[test]
    fn suez_closure_reroutes_via_cape() {
        let g = LaneGraph::global();
        let open = g
            .route(id("NLRTM"), id("SGSIN"), RouteOptions::default())
            .unwrap();
        let closed = g
            .route(
                id("NLRTM"),
                id("SGSIN"),
                RouteOptions {
                    avoid_suez: true,
                    avoid_panama: false,
                },
            )
            .unwrap();
        assert!(!closed.via.contains(&"suez-canal"));
        assert!(
            closed.via.contains(&"cape-good-hope") || closed.via.contains(&"agulhas"),
            "via {:?}",
            closed.via
        );
        // The 2021 reroute added ~7 000 nm round trip ⇒ one-way ≈ +5-8 000 km.
        let delta = closed.distance_km - open.distance_km;
        assert!((3_000.0..12_000.0).contains(&delta), "delta {delta}");
    }

    #[test]
    fn shanghai_la_is_transpacific() {
        let g = LaneGraph::global();
        let r = g
            .route(id("CNSHA"), id("USLAX"), RouteOptions::default())
            .unwrap();
        // Great-circle ≈ 10 400 km; lanes detour modestly.
        assert!(
            (9_500.0..14_000.0).contains(&r.distance_km),
            "{}",
            r.distance_km
        );
        assert!(
            r.via.iter().any(|w| w.starts_with("np-mid")),
            "via {:?}",
            r.via
        );
    }

    #[test]
    fn ny_shanghai_uses_panama_and_closure_changes_it() {
        let g = LaneGraph::global();
        let open = g
            .route(id("USNYC"), id("CNSHA"), RouteOptions::default())
            .unwrap();
        assert!(open.via.contains(&"panama-canal"), "via {:?}", open.via);
        let closed = g
            .route(
                id("USNYC"),
                id("CNSHA"),
                RouteOptions {
                    avoid_suez: false,
                    avoid_panama: true,
                },
            )
            .unwrap();
        assert!(!closed.via.contains(&"panama-canal"));
        assert!(closed.distance_km > open.distance_km);
    }

    #[test]
    fn short_feeder_route_is_direct() {
        let g = LaneGraph::global();
        let r = g
            .route(id("NLRTM"), id("BEANR"), RouteOptions::default())
            .unwrap();
        assert!(r.distance_km < 400.0, "RTM->ANR {}", r.distance_km);
    }

    #[test]
    fn baltic_route_enters_the_baltic() {
        let g = LaneGraph::global();
        let r = g
            .route(id("NLRTM"), id("EETLL"), RouteOptions::default())
            .unwrap();
        // Either around Skagen/the Sound or the implicit Kiel-canal shortcut
        // that Hamburg's Baltic attachment provides — both end up crossing
        // the central Baltic.
        assert!(
            r.via.contains(&"baltic-mid") && r.via.contains(&"baltic-n"),
            "via {:?}",
            r.via
        );
    }

    #[test]
    fn position_along_route_progresses() {
        let g = LaneGraph::global();
        let r = g
            .route(id("NLRTM"), id("SGSIN"), RouteOptions::default())
            .unwrap();
        let start = r.position_at(0.0);
        let quarter = r.position_at(r.distance_km * 0.25);
        let end = r.position_at(r.distance_km + 500.0); // clamped
        assert!(haversine_km(start, WORLD_PORTS[id("NLRTM").0 as usize].pos()) < 1.0);
        assert!(haversine_km(end, WORLD_PORTS[id("SGSIN").0 as usize].pos()) < 1.0);
        let d1 = haversine_km(start, quarter);
        assert!(d1 > 1_000.0, "quarter point moved {d1}");
        // Bearing is a real angle.
        let b = r.bearing_at(r.distance_km * 0.5);
        assert!((0.0..360.0).contains(&b));
    }

    #[test]
    fn same_port_route_is_trivial() {
        let g = LaneGraph::global();
        let r = g
            .route(id("SGSIN"), id("SGSIN"), RouteOptions::default())
            .unwrap();
        assert_eq!(r.distance_km, 0.0);
        assert_eq!(r.points.len(), 1);
    }
}
