//! Property tests for the crash-safety contract of `core::codec`
//! (ISSUE satellite): `load` on truncated, bit-flipped, zero-length or
//! arbitrary-garbage input must never panic and must always return a
//! typed [`CodecError`] — with corruption *detected*, not decoded into
//! a wrong inventory.

use pol_ais::types::{MarketSegment, Mmsi};
use pol_core::codec::{self, CodecError};
use pol_core::features::{CellStats, GroupKey};
use pol_core::inventory::Inventory;
use pol_core::records::{CellPoint, TripPoint};
use pol_geo::LatLon;
use pol_hexgrid::{cell_at, Resolution};
use pol_sketch::hash::FxHashMap;
use proptest::prelude::*;
use std::sync::OnceLock;

/// A fixed non-trivial inventory image shared across all properties.
fn clean_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let res = Resolution::new(6).unwrap();
        let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
        for i in 0..300usize {
            let pos = LatLon::new(5.0 + (i % 60) as f64, (i % 150) as f64).unwrap();
            let cell = cell_at(pos, res);
            let cp = CellPoint {
                point: TripPoint {
                    mmsi: Mmsi(200 + (i % 11) as u32),
                    timestamp: i as i64 * 30,
                    pos,
                    sog_knots: Some(4.0 + (i % 14) as f64),
                    cog_deg: Some((i * 23 % 360) as f64),
                    heading_deg: Some((i * 29 % 360) as f64),
                    segment: MarketSegment::from_id((i % 6) as u8).unwrap(),
                    trip_id: (i % 15) as u64,
                    origin: (i % 7) as u16,
                    dest: (i % 9) as u16,
                    eto_secs: i as i64 * 45,
                    ata_secs: (300 - i) as i64 * 45,
                },
                cell,
                next_cell: None,
            };
            for key in [
                GroupKey::Cell(cell),
                GroupKey::CellType(cell, cp.point.segment),
            ] {
                entries
                    .entry(key)
                    .or_insert_with(|| CellStats::new(0.02, 8))
                    .observe(&cp);
            }
        }
        codec::to_bytes(&Inventory::from_entries(res, entries, 300))
    })
}

/// Is this one of the typed corruption errors (as opposed to a panic,
/// which proptest would report as a test abort)?
fn is_typed(err: &CodecError) -> bool {
    matches!(
        err,
        CodecError::BadHeader
            | CodecError::Unsealed
            | CodecError::Checksum { .. }
            | CodecError::Wire(_)
            | CodecError::Io(_)
    )
}

#[test]
fn zero_length_file_is_typed_error() {
    match codec::from_bytes(&[]).err() {
        Some(CodecError::BadHeader) => {}
        other => panic!("expected BadHeader for empty input, got {other:?}"),
    }
}

#[test]
fn clean_image_loads() {
    assert!(codec::from_bytes(clean_bytes()).is_ok());
    assert!(codec::verify_bytes(clean_bytes()).is_ok());
}

proptest! {
    /// Every strict prefix of a valid file fails typed — no truncation
    /// point yields a wrong-but-successful load, none panics.
    #[test]
    fn truncation_never_panics_and_always_fails_typed(cut in 0usize..1_000_000) {
        let bytes = clean_bytes();
        let cut = cut % bytes.len(); // strict prefix
        let err = codec::from_bytes(&bytes[..cut])
            .err()
            .expect("truncated file must not load");
        prop_assert!(is_typed(&err), "untyped error for prefix {cut}: {err:?}");
        prop_assert!(codec::verify_bytes(&bytes[..cut]).is_err());
    }

    /// Every single-bit flip anywhere in the file is detected and fails
    /// typed. (This is the strong guarantee the per-section CRC-64 buys:
    /// without it, flips inside sketch payloads decode "successfully"
    /// into silently wrong statistics.)
    #[test]
    fn single_bit_flip_never_panics_and_always_fails_typed(
        pos in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let bytes = clean_bytes();
        let pos = pos % bytes.len();
        let mut corrupt = bytes.to_vec();
        corrupt[pos] ^= 1 << bit;
        let err = codec::from_bytes(&corrupt)
            .err()
            .expect("bit-flipped file must not load");
        prop_assert!(is_typed(&err), "untyped error for flip {pos}:{bit}: {err:?}");
        prop_assert!(codec::verify_bytes(&corrupt).is_err());
    }

    /// Arbitrary garbage never panics; a load either fails typed or (for
    /// the astronomically unlikely valid image) succeeds.
    #[test]
    fn arbitrary_garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..2048)) {
        match codec::from_bytes(&bytes) {
            Ok(_) => {}
            Err(err) => prop_assert!(is_typed(&err), "untyped error: {err:?}"),
        }
    }

    /// Garbage wearing a valid magic still never panics — this drives the
    /// parser into the section framing instead of bailing at byte 0.
    #[test]
    fn garbage_behind_valid_magic_never_panics(
        bytes in prop::collection::vec(0u8..=255, 0..2048),
    ) {
        let mut framed = codec::MAGIC.to_vec();
        framed.extend_from_slice(&bytes);
        match codec::from_bytes(&framed) {
            Ok(_) => {}
            Err(err) => prop_assert!(is_typed(&err), "untyped error: {err:?}"),
        }
    }
}
