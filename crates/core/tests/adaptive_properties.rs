//! Property tests for the density-adaptive inventory: whatever the traffic
//! shape and threshold, the result is a valid partition that conserves
//! records and answers every covered query.

use pol_ais::types::{MarketSegment, Mmsi};
use pol_core::features::{CellStats, GroupKey};
use pol_core::records::{CellPoint, TripPoint};
use pol_core::{AdaptiveConfig, AdaptiveInventory, Inventory};
use pol_geo::LatLon;
use pol_hexgrid::{cell_at, Resolution};
use pol_sketch::hash::FxHashMap;
use proptest::prelude::*;

fn inventory_from_points(points: &[(f64, f64, u16)]) -> Inventory {
    let res = Resolution::new(6).unwrap();
    let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
    for (i, (lat, lon, weight)) in points.iter().enumerate() {
        let pos = LatLon::new(*lat, *lon).unwrap();
        let cell = cell_at(pos, res);
        let stats = entries
            .entry(GroupKey::Cell(cell))
            .or_insert_with(|| CellStats::new(0.05, 4));
        for j in 0..*weight {
            stats.observe(&CellPoint {
                point: TripPoint {
                    mmsi: Mmsi(1 + j as u32),
                    timestamp: (i * 100 + j as usize) as i64,
                    pos,
                    sog_knots: Some(11.0),
                    cog_deg: Some(200.0),
                    heading_deg: Some(200.0),
                    segment: MarketSegment::Tanker,
                    trip_id: j as u64,
                    origin: 0,
                    dest: 1,
                    eto_secs: 1,
                    ata_secs: 2,
                },
                cell,
                next_cell: None,
            });
        }
    }
    let total: u64 = entries.values().map(|s| s.records).sum();
    Inventory::from_entries(res, entries, total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn partition_valid_and_conservative(
        points in prop::collection::vec((-55.0f64..65.0, -170.0f64..170.0, 1u16..40), 1..80),
        threshold in 1u64..500,
        coarsest in 2u8..6,
    ) {
        let inv = inventory_from_points(&points);
        let cfg = AdaptiveConfig {
            min_records_per_cell: threshold,
            coarsest: Resolution::new(coarsest).unwrap(),
        };
        let adaptive = AdaptiveInventory::build(&inv, &cfg);
        // Partition: no cell is an ancestor of another.
        prop_assert_eq!(adaptive.partition_violations(), 0);
        // Conservation: total records preserved exactly.
        let fine_total: u64 = inv
            .iter()
            .filter_map(|(k, s)| matches!(k, GroupKey::Cell(_)).then_some(s.records))
            .sum();
        prop_assert_eq!(adaptive.total_records(), fine_total);
        // Never more cells than the input, never fewer than one.
        let fine_cells = inv.len_of(pol_core::features::GroupingSet::Cell);
        prop_assert!(adaptive.len() <= fine_cells);
        prop_assert!(!adaptive.is_empty());
        // Resolutions stay within [coarsest, fine].
        for (r, _) in adaptive.resolution_histogram() {
            prop_assert!(r >= coarsest && r <= 6);
        }
    }

    #[test]
    fn every_observed_point_remains_covered(
        points in prop::collection::vec((-55.0f64..65.0, -170.0f64..170.0, 1u16..20), 1..50),
        threshold in 1u64..200,
    ) {
        let inv = inventory_from_points(&points);
        let adaptive = AdaptiveInventory::build(
            &inv,
            &AdaptiveConfig { min_records_per_cell: threshold, ..AdaptiveConfig::default() },
        );
        for (lat, lon, _) in &points {
            let pos = LatLon::new(*lat, *lon).unwrap();
            prop_assert!(
                adaptive.summary_at(pos).is_some(),
                "observed point ({lat},{lon}) lost coverage"
            );
        }
    }

    #[test]
    fn monotone_in_threshold(
        points in prop::collection::vec((-55.0f64..65.0, -170.0f64..170.0, 1u16..30), 1..60),
    ) {
        let inv = inventory_from_points(&points);
        let mut prev_cells = usize::MAX;
        for threshold in [1u64, 8, 64, 512, 4096] {
            let adaptive = AdaptiveInventory::build(
                &inv,
                &AdaptiveConfig { min_records_per_cell: threshold, ..AdaptiveConfig::default() },
            );
            prop_assert!(
                adaptive.len() <= prev_cells,
                "higher threshold must not increase cells"
            );
            prev_cells = adaptive.len();
        }
    }
}
