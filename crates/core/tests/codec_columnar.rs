//! Property tests for the POLINV3 columnar snapshot (ISSUE satellite):
//! the POLINV2 → POLINV3 migration must be query-identical, and
//! `columnar::from_bytes` / `Layout::parse` on truncated, bit-flipped,
//! zero-length or arbitrary-garbage input must never panic and must
//! always return a typed [`CodecError`] — mirrors the POLINV2
//! corruption suite in `codec_corruption.rs`.

use pol_ais::types::{MarketSegment, Mmsi};
use pol_core::codec::{self, columnar, CodecError};
use pol_core::features::{CellStats, GroupKey};
use pol_core::inventory::Inventory;
use pol_core::records::{CellPoint, TripPoint};
use pol_geo::{BBox, LatLon};
use pol_hexgrid::{cell_at, Resolution};
use pol_sketch::hash::FxHashMap;
use proptest::prelude::*;
use std::sync::OnceLock;

/// A fixed non-trivial inventory shared across all properties — traffic
/// in all three grouping sets so every POLINV3 section is populated.
fn sample_inventory() -> Inventory {
    let res = Resolution::new(6).unwrap();
    let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
    for i in 0..400usize {
        let pos = LatLon::new(-40.0 + (i % 90) as f64, -120.0 + (i % 240) as f64).unwrap();
        let cell = cell_at(pos, res);
        let cp = CellPoint {
            point: TripPoint {
                mmsi: Mmsi(500 + (i % 13) as u32),
                timestamp: i as i64 * 30,
                pos,
                sog_knots: Some(3.0 + (i % 17) as f64),
                cog_deg: Some((i * 19 % 360) as f64),
                heading_deg: Some((i * 31 % 360) as f64),
                segment: MarketSegment::from_id((i % 7) as u8).unwrap(),
                trip_id: (i % 21) as u64,
                origin: (i % 6) as u16,
                dest: (i % 9) as u16,
                eto_secs: i as i64 * 45,
                ata_secs: (400 - i) as i64 * 45,
            },
            cell,
            next_cell: None,
        };
        for key in [
            GroupKey::Cell(cell),
            GroupKey::CellType(cell, cp.point.segment),
            GroupKey::CellRoute(cell, cp.point.origin, cp.point.dest, cp.point.segment),
        ] {
            entries
                .entry(key)
                .or_insert_with(|| CellStats::new(0.02, 8))
                .observe(&cp);
        }
    }
    Inventory::from_entries(res, entries, 400)
}

/// The POLINV2 image of the sample inventory.
fn v2_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| codec::to_bytes(&sample_inventory()))
}

/// The migrated POLINV3 image (the corruption target).
fn v3_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| columnar::migrate_v2_bytes(v2_bytes()).expect("migration succeeds"))
}

/// CellStats has no `PartialEq`; equality is by canonical encoding.
fn stats_bytes(stats: Option<&CellStats>) -> Option<Vec<u8>> {
    stats.map(|s| {
        let mut out = Vec::new();
        codec::encode_cell_stats(s, &mut out);
        out
    })
}

fn is_typed(err: &CodecError) -> bool {
    matches!(
        err,
        CodecError::BadHeader
            | CodecError::Unsealed
            | CodecError::Checksum { .. }
            | CodecError::Wire(_)
            | CodecError::Io(_)
    )
}

#[test]
fn zero_length_file_is_typed_error() {
    match columnar::from_bytes(&[]).err() {
        Some(CodecError::BadHeader) => {}
        other => panic!("expected BadHeader for empty input, got {other:?}"),
    }
}

#[test]
fn clean_image_loads_and_verifies() {
    assert!(columnar::from_bytes(v3_bytes()).is_ok());
    let report = columnar::verify_bytes(v3_bytes()).unwrap();
    assert_eq!(report.entries, sample_inventory().len());
    assert_eq!(report.total_records, 400);
    assert_eq!(report.sections.len(), 5);
}

/// POLINV2 → POLINV3 migration is query-identical: every summary at
/// every grouping-set level, every bbox scan, and every top-destination
/// scan answers exactly as the original inventory does.
#[test]
fn migration_round_trip_is_query_identical() {
    let original = sample_inventory();
    let migrated = columnar::from_bytes(v3_bytes()).unwrap();

    assert_eq!(migrated.resolution(), original.resolution());
    assert_eq!(migrated.len(), original.len());
    assert_eq!(migrated.total_records(), original.total_records());

    for i in 0..400usize {
        let pos = LatLon::new(-40.0 + (i % 90) as f64, -120.0 + (i % 240) as f64).unwrap();
        let cell = cell_at(pos, original.resolution());
        let seg = MarketSegment::from_id((i % 7) as u8).unwrap();
        let (origin, dest) = ((i % 6) as u16, (i % 9) as u16);
        assert_eq!(
            stats_bytes(migrated.summary(cell)),
            stats_bytes(original.summary(cell)),
            "cell summary {i}"
        );
        assert_eq!(
            stats_bytes(migrated.summary_for(cell, seg)),
            stats_bytes(original.summary_for(cell, seg)),
            "segment summary {i}"
        );
        assert_eq!(
            stats_bytes(migrated.summary_route(cell, origin, dest, seg)),
            stats_bytes(original.summary_route(cell, origin, dest, seg)),
            "route summary {i}"
        );
    }

    let bbox = BBox::new(-35.0, -100.0, 30.0, 80.0).unwrap();
    assert_eq!(migrated.cells_in(&bbox), original.cells_in(&bbox));
    // Hash-map iteration order is instance-specific; compare as sorted
    // sets (the serving layer sorts before answering anyway).
    let sorted = |mut cells: Vec<pol_hexgrid::CellIndex>| {
        cells.sort_unstable_by_key(|c| c.raw());
        cells
    };
    for dest in 0..9u16 {
        assert_eq!(
            sorted(migrated.cells_with_top_destination(dest, None)),
            sorted(original.cells_with_top_destination(dest, None)),
            "top destination {dest}"
        );
    }
}

/// The columnar encoding is canonical: re-encoding a decoded image
/// reproduces the exact bytes, so migration is idempotent.
#[test]
fn columnar_encoding_is_canonical() {
    let decoded = columnar::from_bytes(v3_bytes()).unwrap();
    assert_eq!(columnar::to_bytes(&decoded), v3_bytes());
}

proptest! {
    /// Every strict prefix of a valid POLINV3 file fails typed — no
    /// truncation point yields a wrong-but-successful load, none panics.
    #[test]
    fn truncation_never_panics_and_always_fails_typed(cut in 0usize..1_000_000) {
        let bytes = v3_bytes();
        let cut = cut % bytes.len(); // strict prefix
        let err = columnar::from_bytes(&bytes[..cut])
            .err()
            .expect("truncated file must not load");
        prop_assert!(is_typed(&err), "untyped error for prefix {cut}: {err:?}");
        prop_assert!(columnar::verify_bytes(&bytes[..cut]).is_err());
    }

    /// Every single-bit flip anywhere in the file is detected and fails
    /// typed — the per-section CRC-64 covers keys, offsets, and blobs.
    #[test]
    fn single_bit_flip_never_panics_and_always_fails_typed(
        pos in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let bytes = v3_bytes();
        let pos = pos % bytes.len();
        let mut corrupt = bytes.to_vec();
        corrupt[pos] ^= 1 << bit;
        let err = columnar::from_bytes(&corrupt)
            .err()
            .expect("bit-flipped file must not load");
        prop_assert!(is_typed(&err), "untyped error for flip {pos}:{bit}: {err:?}");
        prop_assert!(columnar::verify_bytes(&corrupt).is_err());
    }

    /// Arbitrary garbage never panics; a load either fails typed or (for
    /// the astronomically unlikely valid image) succeeds.
    #[test]
    fn arbitrary_garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..2048)) {
        match columnar::from_bytes(&bytes) {
            Ok(_) => {}
            Err(err) => prop_assert!(is_typed(&err), "untyped error: {err:?}"),
        }
    }

    /// Garbage wearing a valid POLINV3 magic still never panics — this
    /// drives the parser into the directory and section framing instead
    /// of bailing at byte 0.
    #[test]
    fn garbage_behind_valid_magic_never_panics(
        bytes in prop::collection::vec(0u8..=255, 0..2048),
    ) {
        let mut framed = columnar::MAGIC_V3.to_vec();
        framed.extend_from_slice(&bytes);
        match columnar::from_bytes(&framed) {
            Ok(_) => {}
            Err(err) => prop_assert!(is_typed(&err), "untyped error: {err:?}"),
        }
    }

    /// Migration rejects corrupted POLINV2 input typed (never panics,
    /// never emits a POLINV3 file from bad data).
    #[test]
    fn migration_of_corrupt_v2_fails_typed(pos in 0usize..1_000_000, bit in 0u8..8) {
        let bytes = v2_bytes();
        let pos = pos % bytes.len();
        let mut corrupt = bytes.to_vec();
        corrupt[pos] ^= 1 << bit;
        let err = columnar::migrate_v2_bytes(&corrupt)
            .err()
            .expect("corrupt v2 must not migrate");
        prop_assert!(is_typed(&err), "untyped error for flip {pos}:{bit}: {err:?}");
    }
}
