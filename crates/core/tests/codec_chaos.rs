//! Chaos tests for the persistence path (run with
//! `cargo test -p pol-core --features chaos --test codec_chaos`):
//! injected write and rename failures must leave the destination file
//! untouched, loadable, and the directory free of temp files.

#![cfg(feature = "chaos")]

use pol_ais::types::{MarketSegment, Mmsi};
use pol_chaos::{configure, remove, stats, FaultAction, Trigger};
use pol_core::codec;
use pol_core::features::{CellStats, GroupKey};
use pol_core::inventory::Inventory;
use pol_core::records::{CellPoint, TripPoint};
use pol_geo::LatLon;
use pol_hexgrid::{cell_at, Resolution};
use pol_sketch::hash::FxHashMap;
use std::path::Path;

fn sample_inventory(n: usize) -> Inventory {
    let res = Resolution::new(6).unwrap();
    let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
    for i in 0..n {
        let pos = LatLon::new(12.0 + (i % 40) as f64, (i % 100) as f64).unwrap();
        let cell = cell_at(pos, res);
        let cp = CellPoint {
            point: TripPoint {
                mmsi: Mmsi(300 + (i % 7) as u32),
                timestamp: i as i64,
                pos,
                sog_knots: Some(6.0),
                cog_deg: Some((i % 360) as f64),
                heading_deg: None,
                segment: MarketSegment::from_id((i % 6) as u8).unwrap(),
                trip_id: (i % 5) as u64,
                origin: 1,
                dest: 2,
                eto_secs: 0,
                ata_secs: 0,
            },
            cell,
            next_cell: None,
        };
        entries
            .entry(GroupKey::Cell(cell))
            .or_insert_with(|| CellStats::new(0.02, 8))
            .observe(&cp);
    }
    Inventory::from_entries(res, entries, n as u64)
}

fn no_temp_files(dir: &Path) -> bool {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .all(|e| !e.file_name().to_string_lossy().contains(".tmp."))
}

#[test]
fn injected_write_failure_cleans_temp_and_preserves_old_file() {
    let dir = std::env::temp_dir().join("pol-codec-chaos-write");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("inv.pol");

    // A good save first, so there is an old complete file to preserve.
    codec::save(&sample_inventory(40), &path).unwrap();
    let old = std::fs::read(&path).unwrap();

    configure("codec.save.write", Trigger::OneShot(FaultAction::Err));
    let err = codec::save(&sample_inventory(200), &path);
    assert!(err.is_err(), "injected write failure must surface");
    assert_eq!(stats("codec.save.write").fired, 1);
    remove("codec.save.write");

    // The old file is byte-identical and still loads; no temp debris.
    assert_eq!(std::fs::read(&path).unwrap(), old);
    assert!(codec::load(&path).is_ok());
    assert!(
        no_temp_files(&dir),
        "temp file leaked after injected write failure"
    );

    // And a retry with the failpoint disarmed succeeds.
    codec::save(&sample_inventory(200), &path).unwrap();
    assert!(codec::load(&path).unwrap().len() > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_rename_failure_cleans_temp_and_preserves_old_file() {
    let dir = std::env::temp_dir().join("pol-codec-chaos-rename");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("inv.pol");

    codec::save(&sample_inventory(40), &path).unwrap();
    let old = std::fs::read(&path).unwrap();

    // Fail after the temp file is fully written and fsynced — the
    // worst case: a complete sibling that must still be removed.
    configure("codec.save.rename", Trigger::OneShot(FaultAction::Err));
    assert!(codec::save(&sample_inventory(200), &path).is_err());
    remove("codec.save.rename");

    assert_eq!(std::fs::read(&path).unwrap(), old);
    assert!(
        no_temp_files(&dir),
        "temp file leaked after injected rename failure"
    );
    std::fs::remove_dir_all(&dir).ok();
}
