//! Property tests for the POLWAL1 journal segment (ISSUE satellite):
//! `codec::wal::read_segment` on truncated, bit-flipped, zero-length or
//! arbitrary-garbage input must never panic and must either serve only
//! durable batches (the torn-tail tolerance) or fail with a typed
//! [`WalError`] — mirrors the POLINV3 corruption suite in
//! `codec_columnar.rs`, plus WAL-specific properties: a truncated
//! unsealed segment never serves a batch the full segment did not hold,
//! and a sealed segment admits no tolerance at all.

use pol_ais::types::{Mmsi, NavStatus};
use pol_ais::PositionReport;
use pol_core::codec::wal::{self, SegmentWriter, WalError};
use pol_geo::LatLon;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

fn report(mmsi: u32, ts: i64) -> PositionReport {
    PositionReport {
        mmsi: Mmsi(mmsi),
        timestamp: ts,
        pos: LatLon::new(
            -50.0 + (ts.rem_euclid(100)) as f64,
            -150.0 + (ts.rem_euclid(300)) as f64,
        )
        .unwrap(),
        sog_knots: (ts % 3 != 0).then_some(0.1 * (ts % 900) as f64),
        cog_deg: (ts % 4 != 0).then_some((ts % 360) as f64),
        heading_deg: (ts % 5 != 0).then_some((ts % 360) as f64),
        nav_status: NavStatus::from_raw((ts % 16) as u8),
    }
}

fn build(sealed: bool, name: &str) -> Vec<u8> {
    let dir = std::env::temp_dir().join("pol-wal-proptests");
    std::fs::create_dir_all(&dir).unwrap();
    let path: PathBuf = dir.join(name);
    let mut w = SegmentWriter::create(&path, 3).unwrap();
    for b in 0..8i64 {
        let records: Vec<PositionReport> = (0..50)
            .map(|i| report(200_000_001 + (i % 7) as u32, b * 10_000 + i))
            .collect();
        w.append_batch(&records).unwrap();
    }
    w.sync().unwrap();
    if sealed {
        w.seal().unwrap();
    }
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

/// A sealed 8-batch segment image (the zero-tolerance corruption target).
fn sealed_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| build(true, "sealed-src.polwal"))
}

/// The same segment left unsealed (the torn-tail-tolerant target).
fn unsealed_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| build(false, "unsealed-src.polwal"))
}

fn is_typed(err: &WalError) -> bool {
    matches!(
        err,
        WalError::BadHeader
            | WalError::Unsealed
            | WalError::Checksum { .. }
            | WalError::Wire(_)
            | WalError::Io(_)
            | WalError::Corrupt(_)
    )
}

#[test]
fn zero_length_file_is_typed_error() {
    match wal::read_segment(&[]).err() {
        Some(WalError::BadHeader) => {}
        other => panic!("expected BadHeader for empty input, got {other:?}"),
    }
}

#[test]
fn clean_images_load_in_full() {
    let sealed = wal::read_segment(sealed_bytes()).unwrap();
    assert!(sealed.sealed);
    assert_eq!(sealed.batches.len(), 8);
    assert_eq!(
        sealed
            .batches
            .iter()
            .map(|b| b.records.len())
            .sum::<usize>(),
        400
    );
    let unsealed = wal::read_segment(unsealed_bytes()).unwrap();
    assert!(!unsealed.sealed);
    assert_eq!(unsealed.torn_bytes, 0);
    assert_eq!(unsealed.batches.len(), 8);
}

proptest! {
    /// Every strict prefix of an *unsealed* segment either loads a
    /// prefix of the durable batches (torn tail discarded, batch
    /// contents identical to the full read) or fails typed — and never
    /// serves a record the full segment did not hold.
    #[test]
    fn truncated_unsealed_serves_only_durable_prefix(cut in 0usize..1_000_000) {
        let bytes = unsealed_bytes();
        let full = wal::read_segment(bytes).expect("full image loads");
        let cut = cut % bytes.len(); // strict prefix
        match wal::read_segment(&bytes[..cut]) {
            Ok(load) => {
                prop_assert!(!load.sealed);
                prop_assert!(load.batches.len() <= full.batches.len());
                for (got, want) in load.batches.iter().zip(&full.batches) {
                    prop_assert_eq!(got.seq, want.seq);
                    prop_assert_eq!(&got.records, &want.records);
                }
                prop_assert_eq!(load.valid_len + load.torn_bytes, cut as u64);
            }
            Err(err) => prop_assert!(is_typed(&err), "untyped error for prefix {}: {:?}", cut, err),
        }
    }

    /// Every strict prefix of a *sealed* segment read with the sealed
    /// contract fails typed — truncation can never pass for a file that
    /// claims completeness.
    #[test]
    fn truncated_sealed_always_fails_typed(cut in 0usize..1_000_000) {
        let bytes = sealed_bytes();
        let cut = cut % bytes.len();
        let err = wal::read_sealed(&bytes[..cut])
            .err()
            .expect("truncated sealed segment must not load");
        prop_assert!(is_typed(&err), "untyped error for prefix {}: {:?}", cut, err);
    }

    /// A single bit flip anywhere in a sealed segment is either detected
    /// typed, or — only when the flip lands in the final batch frame and
    /// destroys the seal itself — surfaces as a torn tail under the
    /// tolerant reader. It never panics, and the tolerant reader never
    /// serves a corrupted batch as valid.
    #[test]
    fn single_bit_flip_sealed_never_serves_bad_bytes(
        pos in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let bytes = sealed_bytes();
        let full = wal::read_segment(bytes).expect("clean image loads");
        let pos = pos % bytes.len();
        let mut corrupt = bytes.to_vec();
        corrupt[pos] ^= 1 << bit;
        // The sealed contract must always reject a flipped image.
        let err = wal::read_sealed(&corrupt)
            .err()
            .expect("bit-flipped sealed segment must not read as sealed");
        prop_assert!(is_typed(&err), "untyped error for flip {}:{}: {:?}", pos, bit, err);
        // The tolerant reader may salvage a prefix, but whatever batches
        // it serves must be byte-equal to the originals.
        if let Ok(load) = wal::read_segment(&corrupt) {
            for (got, want) in load.batches.iter().zip(&full.batches) {
                prop_assert_eq!(got.seq, want.seq);
                prop_assert_eq!(&got.records, &want.records);
            }
        }
    }

    /// Arbitrary garbage never panics; any load either fails typed or
    /// serves an (astronomically unlikely) valid parse.
    #[test]
    fn arbitrary_garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..2048)) {
        match wal::read_segment(&bytes) {
            Ok(_) => {}
            Err(err) => prop_assert!(is_typed(&err), "untyped error: {:?}", err),
        }
    }

    /// Garbage wearing a valid POLWAL1 magic still never panics — this
    /// drives the parser into header and frame framing instead of
    /// bailing at byte 0.
    #[test]
    fn garbage_behind_valid_magic_never_panics(
        bytes in prop::collection::vec(0u8..=255, 0..2048),
    ) {
        let mut framed = wal::MAGIC_WAL.to_vec();
        framed.extend_from_slice(&bytes);
        match wal::read_segment(&framed) {
            Ok(load) => prop_assert!(load.batches.is_empty() || load.sealed == false),
            Err(err) => prop_assert!(is_typed(&err), "untyped error: {:?}", err),
        }
    }

    /// Record codec round-trips for arbitrary field shapes (positions
    /// clamped to the valid LatLon domain, Options independently
    /// present or absent).
    #[test]
    fn record_round_trip(
        mmsi in 1u32..999_999_999,
        ts in -4_000_000_000i64..4_000_000_000,
        lat in -90.0f64..=90.0,
        lon in -180.0f64..180.0,
        sog in prop::option::of(0.0f64..=102.2),
        cog in prop::option::of(0.0f64..360.0),
        heading in prop::option::of(0.0f64..360.0),
        nav in 0u8..16,
    ) {
        let r = PositionReport {
            mmsi: Mmsi(mmsi),
            timestamp: ts,
            pos: LatLon::new(lat, lon).expect("in-domain position"),
            sog_knots: sog,
            cog_deg: cog,
            heading_deg: heading,
            nav_status: NavStatus::from_raw(nav),
        };
        let mut buf = Vec::new();
        wal::encode_record(&r, &mut buf);
        let mut s = &buf[..];
        let back = wal::decode_record(&mut s).expect("round trip decodes");
        prop_assert!(s.is_empty());
        prop_assert_eq!(back, r);
    }
}
