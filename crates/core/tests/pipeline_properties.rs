//! Property tests on the pipeline's §5-DESIGN.md invariants: cleaning
//! idempotence, grouping-set consistency, codec round-trips and inventory
//! merge associativity over randomly-shaped miniature worlds.

use pol_ais::types::{Mmsi, NavStatus, ShipTypeCode};
use pol_ais::{PositionReport, StaticReport};
use pol_core::features::{CellStats, GroupKey};
use pol_core::records::PortSite;
use pol_core::{codec, Inventory, PipelineConfig};
use pol_engine::{Dataset, Engine};
use pol_geo::LatLon;
use pol_hexgrid::Resolution;
use pol_sketch::hash::FxHashMap;
use proptest::prelude::*;

fn arb_report(mmsi: u32) -> impl Strategy<Value = PositionReport> {
    (
        0i64..1_000_000,
        30.0f64..60.0,
        -20.0f64..20.0,
        prop::option::of(0.0f64..30.0),
        prop::option::of(0.0f64..359.9),
        0u8..9,
    )
        .prop_map(move |(t, lat, lon, sog, cog, st)| PositionReport {
            mmsi: Mmsi(mmsi),
            timestamp: t,
            pos: LatLon::new(lat, lon).unwrap(),
            sog_knots: sog,
            cog_deg: cog,
            heading_deg: cog,
            nav_status: NavStatus::from_raw(st),
        })
}

fn statics(mmsi: u32) -> StaticReport {
    StaticReport {
        mmsi: Mmsi(mmsi),
        imo: None,
        name: "PROP VESSEL".into(),
        ship_type: ShipTypeCode(71),
        gross_tonnage: 50_000,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cleaning is idempotent: running the cleaning stage on its own
    /// output changes nothing.
    #[test]
    fn cleaning_is_idempotent(reports in prop::collection::vec(arb_report(77), 0..200)) {
        let engine = Engine::new(2);
        let cfg = PipelineConfig::default();
        let st = vec![statics(77)];
        let (once, _) = pol_core::clean::clean_and_enrich(
            &engine,
            Dataset::from_vec(reports, 3),
            &st,
            &cfg,
        )
        .unwrap();
        let once_rows: Vec<_> = once.clone().collect();
        // Re-feed the cleaned output (as raw reports again).
        let raw_again: Vec<PositionReport> = once_rows
            .iter()
            .map(|e| PositionReport {
                mmsi: e.mmsi,
                timestamp: e.timestamp,
                pos: e.pos,
                sog_knots: e.sog_knots,
                cog_deg: e.cog_deg,
                heading_deg: e.heading_deg,
                nav_status: e.nav_status,
            })
            .collect();
        let (twice, report2) = pol_core::clean::clean_and_enrich(
            &engine,
            Dataset::from_vec(raw_again, 2),
            &st,
            &cfg,
        )
        .unwrap();
        let twice_rows: Vec<_> = twice.collect();
        prop_assert_eq!(once_rows, twice_rows);
        prop_assert_eq!(report2.out_of_range + report2.infeasible + report2.non_commercial, 0);
    }

    /// Inventory merge is associative and order-insensitive on the
    /// observable statistics.
    #[test]
    fn inventory_merge_associative(
        xs in prop::collection::vec((30.0f64..60.0, -20.0f64..20.0, 0u64..5), 1..60),
        ys in prop::collection::vec((30.0f64..60.0, -20.0f64..20.0, 0u64..5), 1..60),
        zs in prop::collection::vec((30.0f64..60.0, -20.0f64..20.0, 0u64..5), 1..60),
    ) {
        let res = Resolution::new(5).unwrap();
        let build = |pts: &[(f64, f64, u64)]| -> Inventory {
            let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
            for (lat, lon, trip) in pts {
                let pos = LatLon::new(*lat, *lon).unwrap();
                let cell = pol_hexgrid::cell_at(pos, res);
                let cp = pol_core::records::CellPoint {
                    point: pol_core::records::TripPoint {
                        mmsi: Mmsi(9),
                        timestamp: 0,
                        pos,
                        sog_knots: Some(12.0),
                        cog_deg: Some(45.0),
                        heading_deg: Some(45.0),
                        segment: pol_ais::types::MarketSegment::Container,
                        trip_id: *trip,
                        origin: 1,
                        dest: 2,
                        eto_secs: 10,
                        ata_secs: 20,
                    },
                    cell,
                    next_cell: None,
                };
                entries
                    .entry(GroupKey::Cell(cell))
                    .or_insert_with(|| CellStats::new(0.05, 4))
                    .observe(&cp);
            }
            Inventory::from_entries(res, entries, pts.len() as u64)
        };
        let (a, b, c) = (build(&xs), build(&ys), build(&zs));
        // (a ⊕ b) ⊕ c
        let mut left = build(&xs);
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = build(&ys);
        bc.merge(&c);
        let mut right = build(&xs);
        right.merge(&bc);
        prop_assert_eq!(left.len(), right.len());
        prop_assert_eq!(left.total_records(), right.total_records());
        for (key, ls) in left.iter() {
            let rs = right.get(key).expect("same key space");
            prop_assert_eq!(ls.records, rs.records);
            prop_assert_eq!(ls.trips.estimate(), rs.trips.estimate());
            match (ls.speed.mean(), rs.speed.mean()) {
                (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9),
                (None, None) => {}
                other => prop_assert!(false, "{other:?}"),
            }
        }
        let _ = a; // silence: a is reconstructed as `left`'s base
        // And the merged total equals the sum of the parts.
        prop_assert_eq!(
            left.total_records(),
            (xs.len() + ys.len() + zs.len()) as u64
        );
    }

    /// Codec round-trips arbitrary inventories byte-exactly.
    #[test]
    fn codec_round_trip(
        pts in prop::collection::vec((-60.0f64..60.0, -179.0f64..179.0, 0u64..6, 0u8..6), 0..120),
    ) {
        let res = Resolution::new(6).unwrap();
        let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
        for (lat, lon, trip, seg) in &pts {
            let pos = LatLon::new(*lat, *lon).unwrap();
            let cell = pol_hexgrid::cell_at(pos, res);
            let segment = pol_ais::types::MarketSegment::from_id(*seg).unwrap();
            let cp = pol_core::records::CellPoint {
                point: pol_core::records::TripPoint {
                    mmsi: Mmsi(1 + *trip as u32),
                    timestamp: 0,
                    pos,
                    sog_knots: Some(10.0),
                    cog_deg: Some(180.0),
                    heading_deg: None,
                    segment,
                    trip_id: *trip,
                    origin: (*trip % 3) as u16,
                    dest: (*trip % 4) as u16,
                    eto_secs: 5,
                    ata_secs: 7,
                },
                cell,
                next_cell: None,
            };
            for key in [
                GroupKey::Cell(cell),
                GroupKey::CellType(cell, segment),
                GroupKey::CellRoute(cell, cp.point.origin, cp.point.dest, segment),
            ] {
                entries
                    .entry(key)
                    .or_insert_with(|| CellStats::new(0.05, 4))
                    .observe(&cp);
            }
        }
        let inv = Inventory::from_entries(res, entries, pts.len() as u64);
        let bytes = codec::to_bytes(&inv);
        let back = codec::from_bytes(&bytes).expect("round trip");
        prop_assert_eq!(codec::to_bytes(&back), bytes, "canonical fixed point");
        prop_assert_eq!(back.len(), inv.len());
    }

    /// The fused single-pass executor is bit-identical to the staged
    /// pipeline — same inventory bytes, stage counts and clean report —
    /// over arbitrary multi-vessel inputs at 1, 2 and 8 threads.
    #[test]
    fn fused_equals_staged(
        a in prop::collection::vec(arb_report(501), 0..120),
        b in prop::collection::vec(arb_report(502), 0..120),
        c in prop::collection::vec(arb_report(503), 0..120),
        unknown in prop::collection::vec(arb_report(504), 0..40),
    ) {
        let cfg = PipelineConfig::default();
        // Synthetic ports inside the generator's coordinate window, so
        // random tracks occasionally complete port-to-port trips.
        let ports = vec![
            PortSite {
                id: 0,
                name: "PropPortA".into(),
                pos: LatLon::new(45.0, -5.0).unwrap(),
                radius_km: 60.0,
            },
            PortSite {
                id: 1,
                name: "PropPortB".into(),
                pos: LatLon::new(50.0, 10.0).unwrap(),
                radius_km: 60.0,
            },
        ];
        // Vessel 504 has no static record: exercises the non-commercial
        // accounting in both executors.
        let st = vec![statics(501), statics(502), statics(503)];
        let mut p0 = a;
        p0.extend(unknown);
        let positions = vec![p0, b, c];
        let staged = pol_core::run(
            &Engine::new(2),
            positions.clone(),
            &st,
            &ports,
            &cfg,
        ).unwrap();
        let reference = codec::to_bytes(&staged.inventory);
        for threads in [1usize, 2, 8, 16] {
            let engine = Engine::new(threads);
            let fused = pol_core::run_fused(
                &engine,
                positions.clone(),
                &st,
                &ports,
                &cfg,
            ).unwrap();
            prop_assert_eq!(&staged.counts, &fused.counts, "counts at {} threads", threads);
            prop_assert_eq!(
                &staged.clean_report,
                &fused.clean_report,
                "clean report at {} threads",
                threads
            );
            prop_assert_eq!(
                &reference,
                &codec::to_bytes(&fused.inventory),
                "inventory bytes at {} threads",
                threads
            );
            // Second run on the SAME engine: the per-worker scratch
            // arenas are now warm, so this exercises the buffer-reuse
            // path (stale capacity, retained trip trackers) rather than
            // the cold-allocation path.
            let warm = pol_core::run_fused(
                &engine,
                positions.clone(),
                &st,
                &ports,
                &cfg,
            ).unwrap();
            prop_assert_eq!(
                &reference,
                &codec::to_bytes(&warm.inventory),
                "warm-scratch inventory bytes at {} threads",
                threads
            );
        }
    }

    /// Geofence coverage: a point within 70% of a port's radius is always
    /// attributed to some port; a point 3 radii away to none (other ports
    /// permitting).
    #[test]
    fn geofence_coverage(port_idx in 0usize..10, bearing in 0.0f64..360.0, f in 0.0f64..0.7) {
        let ports: Vec<PortSite> = (0..10)
            .map(|i| PortSite {
                id: i as u16,
                name: format!("P{i}"),
                pos: LatLon::new(10.0 + i as f64 * 5.0, -30.0 + i as f64 * 7.0).unwrap(),
                radius_km: 12.0,
            })
            .collect();
        let g = pol_core::trips::Geofence::build(&ports, Resolution::new(6).unwrap());
        let port = &ports[port_idx];
        let inside = pol_geo::destination(port.pos, bearing, port.radius_km * f);
        prop_assert!(g.port_at(inside).is_some(), "point at {f:.2}R uncovered");
        let outside = pol_geo::destination(port.pos, bearing, port.radius_km * 5.0);
        if let Some(hit) = g.port_at(outside) {
            // May legitimately hit a *different* port's fence.
            prop_assert_ne!(hit, port.id);
        }
    }
}
