//! # pol-core — the Patterns-of-Life global inventory
//!
//! The paper's primary contribution: a multi-step methodology transforming
//! raw AIS positional reports into a compact global inventory of per-cell
//! statistical summaries, keyed by grouping sets (Table 2), holding the
//! Table-3 feature statistics, and queryable for the §4 use cases.
//!
//! Pipeline stages (Figures 2 & 3 of the paper):
//!
//! 1. [`clean`] — §3.3.1: protocol-range validation, per-vessel
//!    partitioning, timestamp ordering and de-duplication, infeasible-
//!    transition rejection (> 50 kn implied speed), commercial-fleet
//!    enrichment/filter via the static inventory.
//! 2. [`trips`] — §3.3.2: port geofencing on the hexagonal grid, trip
//!    segmentation between consecutive port stops, ETO/ATA enrichment.
//! 3. [`project`] — §3.3.3: assignment of every record to its grid cell,
//!    plus per-trip next-cell transition extraction.
//! 4. [`features`] — §3.3.4: the grouping-set map phase and the mergeable
//!    per-key statistics ([`features::CellStats`]) reduce phase.
//! 5. [`inventory`] — the queryable global inventory with its coverage /
//!    compression accounting (Table 4) and [`codec`] for persistence.
//!
//! [`pipeline::run`] wires all stages over the `pol-engine` executor and
//! reports per-stage record counts — the machine-checkable analogue of the
//! paper's Figure 2 walkthrough. [`fused::run_fused`] executes the same
//! methodology as a single morsel-driven pass per vessel partition —
//! bit-identical output, a fraction of the intermediate materialization.

#![deny(missing_docs)]

pub mod adaptive;
pub mod clean;
pub mod codec;
pub mod config;
pub mod error;
pub mod features;
pub mod fused;
pub mod inventory;
pub mod pipeline;
pub mod project;
pub mod records;
pub mod trips;

pub use adaptive::{AdaptiveConfig, AdaptiveInventory};
pub use config::PipelineConfig;
pub use error::PipelineError;
pub use features::{CellStats, GroupKey, GroupingSet};
pub use fused::run_fused;
pub use inventory::{CoverageReport, Inventory, InventoryQuery};
pub use pipeline::{run, PipelineOutput, StageCounts};
pub use records::{CellPoint, PortSite, TripPoint};
