//! The global inventory: the compact, queryable data model the paper
//! delivers, with the Table-4 coverage/compression accounting.

use crate::features::{CellStats, GroupKey, GroupingSet};
use pol_ais::types::MarketSegment;
use pol_engine::Dataset;
use pol_geo::BBox;
use pol_hexgrid::{cell_center, num_cells, CellIndex, Resolution};
use pol_sketch::hash::FxHashMap;
use pol_sketch::MergeSketch;
use std::borrow::Cow;

/// Coverage and compression figures — one row of the paper's Table 4.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoverageReport {
    /// Grid resolution.
    pub resolution: u8,
    /// Cells with at least one record (the `#Cells` column).
    pub occupied_cells: u64,
    /// All grid cells at this resolution globally.
    pub total_cells: u64,
    /// Input records summarised.
    pub total_records: u64,
    /// `1 − cells/records` (the `Compression` column).
    pub compression: f64,
    /// `cells / total cells` (the `H3 Utilization` column).
    pub utilization: f64,
}

/// The point-lookup query surface shared by every inventory-shaped store.
///
/// The §4 use cases (ETA estimation, destination prediction) only need
/// cell-keyed lookups at the three grouping-set levels plus the grid
/// resolution. Abstracting that surface lets the same estimators run
/// against the in-memory [`Inventory`] *and* against serving-side stores
/// (e.g. `pol-serve`'s sharded read-only store, or its mmap-backed
/// columnar store).
///
/// Lookups return [`Cow`] so heap stores stay zero-copy
/// (`Cow::Borrowed` straight out of their maps) while zero-*deserialize*
/// stores — which decode a summary on demand from mapped file bytes —
/// can hand back `Cow::Owned` through the same surface.
pub trait InventoryQuery {
    /// The store's grid resolution.
    fn resolution(&self) -> Resolution;
    /// The all-traffic summary of a cell.
    fn summary(&self, cell: CellIndex) -> Option<Cow<'_, CellStats>>;
    /// The per-vessel-type summary of a cell.
    fn summary_for(&self, cell: CellIndex, segment: MarketSegment) -> Option<Cow<'_, CellStats>>;
    /// The per-route summary of a cell.
    fn summary_route(
        &self,
        cell: CellIndex,
        origin: u16,
        dest: u16,
        segment: MarketSegment,
    ) -> Option<Cow<'_, CellStats>>;
}

impl InventoryQuery for Inventory {
    fn resolution(&self) -> Resolution {
        Inventory::resolution(self)
    }

    fn summary(&self, cell: CellIndex) -> Option<Cow<'_, CellStats>> {
        Inventory::summary(self, cell).map(Cow::Borrowed)
    }

    fn summary_for(&self, cell: CellIndex, segment: MarketSegment) -> Option<Cow<'_, CellStats>> {
        Inventory::summary_for(self, cell, segment).map(Cow::Borrowed)
    }

    fn summary_route(
        &self,
        cell: CellIndex,
        origin: u16,
        dest: u16,
        segment: MarketSegment,
    ) -> Option<Cow<'_, CellStats>> {
        Inventory::summary_route(self, cell, origin, dest, segment).map(Cow::Borrowed)
    }
}

/// The queryable global inventory of per-cell statistical summaries.
pub struct Inventory {
    resolution: Resolution,
    entries: FxHashMap<GroupKey, CellStats>,
    total_records: u64,
    /// Occupied `(cell)`-grouping-set cells with their centres, sorted by
    /// centre latitude — built once at construction so bbox queries
    /// binary-search a latitude band instead of scanning every entry.
    cell_index: Vec<(pol_geo::LatLon, CellIndex)>,
}

/// The latitude-sorted cell index backing [`Inventory::cells_in`].
fn build_cell_index(entries: &FxHashMap<GroupKey, CellStats>) -> Vec<(pol_geo::LatLon, CellIndex)> {
    let mut index: Vec<(pol_geo::LatLon, CellIndex)> = entries
        .keys()
        .filter_map(|k| match k {
            GroupKey::Cell(c) => Some((cell_center(*c), *c)),
            _ => None,
        })
        .collect();
    index.sort_by(|a, b| {
        a.0.lat()
            .total_cmp(&b.0.lat())
            .then_with(|| a.1.raw().cmp(&b.1.raw()))
    });
    index
}

impl Inventory {
    /// Assembles an inventory from the aggregation output.
    pub fn from_dataset(
        resolution: Resolution,
        stats: Dataset<(GroupKey, CellStats)>,
        total_records: u64,
    ) -> Inventory {
        Inventory::from_entries(
            resolution,
            stats.collect().into_iter().collect(),
            total_records,
        )
    }

    /// Builds directly from a key→stats map (deserialization path).
    pub fn from_entries(
        resolution: Resolution,
        entries: FxHashMap<GroupKey, CellStats>,
        total_records: u64,
    ) -> Inventory {
        let cell_index = build_cell_index(&entries);
        Inventory {
            resolution,
            entries,
            total_records,
            cell_index,
        }
    }

    /// The inventory's grid resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Records summarised.
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Total group-identifier entries across all grouping sets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the inventory is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries belonging to one grouping set.
    pub fn len_of(&self, gs: GroupingSet) -> usize {
        self.entries
            .keys()
            .filter(|k| k.grouping_set() == gs)
            .count()
    }

    /// The all-traffic summary of a cell (GI = `(H3-index)`).
    pub fn summary(&self, cell: CellIndex) -> Option<&CellStats> {
        self.entries.get(&GroupKey::Cell(cell))
    }

    /// The per-vessel-type summary of a cell.
    pub fn summary_for(&self, cell: CellIndex, segment: MarketSegment) -> Option<&CellStats> {
        self.entries.get(&GroupKey::CellType(cell, segment))
    }

    /// The per-route summary of a cell (GI = cell, origin, destination,
    /// vessel-type) — the key the route-forecasting use case queries.
    pub fn summary_route(
        &self,
        cell: CellIndex,
        origin: u16,
        dest: u16,
        segment: MarketSegment,
    ) -> Option<&CellStats> {
        self.entries
            .get(&GroupKey::CellRoute(cell, origin, dest, segment))
    }

    /// Raw access to an arbitrary group key.
    pub fn get(&self, key: &GroupKey) -> Option<&CellStats> {
        self.entries.get(key)
    }

    /// Iterates all entries.
    pub fn iter(&self) -> impl Iterator<Item = (&GroupKey, &CellStats)> {
        self.entries.iter()
    }

    /// Decomposes the inventory into its parts — the inverse of
    /// [`Inventory::from_entries`]. Serving-side stores use this to
    /// repartition the entry map (e.g. into hash shards) without cloning
    /// every sketch.
    pub fn into_entries(self) -> (Resolution, FxHashMap<GroupKey, CellStats>, u64) {
        (self.resolution, self.entries, self.total_records)
    }

    /// All occupied cells (the `(H3-index)` grouping set's key space).
    pub fn cells(&self) -> impl Iterator<Item = CellIndex> + '_ {
        self.entries.keys().filter_map(|k| match k {
            GroupKey::Cell(c) => Some(*c),
            _ => None,
        })
    }

    /// All cells whose `(cell, origin, dest, segment)` entry exists — the
    /// full set of transition locations for a route key (§4.1.3's route
    /// forecasting retrieves exactly this).
    pub fn route_cells(&self, origin: u16, dest: u16, segment: MarketSegment) -> Vec<CellIndex> {
        self.entries
            .keys()
            .filter_map(|k| match k {
                GroupKey::CellRoute(c, o, d, s) if *o == origin && *d == dest && *s == segment => {
                    Some(*c)
                }
                _ => None,
            })
            .collect()
    }

    /// Occupied cells whose most frequent destination is `dest`
    /// (the paper's Figure 6 filter), optionally per segment.
    pub fn cells_with_top_destination(
        &self,
        dest: u16,
        segment: Option<MarketSegment>,
    ) -> Vec<CellIndex> {
        self.entries
            .iter()
            .filter_map(|(k, stats)| {
                let cell = match (k, segment) {
                    (GroupKey::Cell(c), None) => *c,
                    (GroupKey::CellType(c, s), Some(want)) if *s == want => *c,
                    _ => return None,
                };
                let top = stats.top_destinations(1);
                (top.first().map(|(d, _)| *d) == Some(dest)).then_some(cell)
            })
            .collect()
    }

    /// Occupied cells whose centre falls inside a bounding box — the
    /// regional views of Figure 4. Binary-searches the latitude-sorted
    /// cell index to scan only the `[min_lat, max_lat]` band instead of
    /// every occupied cell. Results come back in index (latitude) order.
    pub fn cells_in(&self, bbox: &BBox) -> Vec<CellIndex> {
        let lo = self
            .cell_index
            .partition_point(|(center, _)| center.lat() < bbox.min_lat);
        self.cell_index[lo..]
            .iter()
            .take_while(|(center, _)| center.lat() <= bbox.max_lat)
            .filter(|(center, _)| bbox.contains(*center))
            .map(|(_, cell)| *cell)
            .collect()
    }

    /// The Table-4 row for this inventory.
    pub fn coverage(&self) -> CoverageReport {
        let occupied = self.len_of(GroupingSet::Cell) as u64;
        let total_cells = num_cells(self.resolution);
        let compression = if self.total_records > 0 {
            1.0 - occupied as f64 / self.total_records as f64
        } else {
            0.0
        };
        CoverageReport {
            resolution: self.resolution.level(),
            occupied_cells: occupied,
            total_cells,
            total_records: self.total_records,
            compression: compression.max(0.0),
            utilization: occupied as f64 / total_cells as f64,
        }
    }

    /// Merges another inventory (same resolution) into this one — e.g.
    /// month-by-month builds folded into the year.
    ///
    /// # Panics
    /// When resolutions differ.
    pub fn merge(&mut self, other: &Inventory) {
        assert_eq!(
            self.resolution, other.resolution,
            "cannot merge inventories at different resolutions"
        );
        self.total_records += other.total_records;
        for (k, v) in &other.entries {
            match self.entries.get_mut(k) {
                Some(mine) => mine.merge(v),
                None => {
                    self.entries.insert(*k, v.clone());
                }
            }
        }
        // New cells may have appeared: rebuild the bbox-query index.
        self.cell_index = build_cell_index(&self.entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{CellPoint, TripPoint};
    use pol_ais::types::Mmsi;
    use pol_geo::LatLon;
    use pol_hexgrid::cell_at;

    fn res() -> Resolution {
        Resolution::new(6).unwrap()
    }

    fn point_at(lat: f64, lon: f64, dest: u16, segment: MarketSegment) -> CellPoint {
        let pos = LatLon::new(lat, lon).unwrap();
        CellPoint {
            point: TripPoint {
                mmsi: Mmsi(5),
                timestamp: 0,
                pos,
                sog_knots: Some(10.0),
                cog_deg: Some(45.0),
                heading_deg: Some(45.0),
                segment,
                trip_id: 1,
                origin: 0,
                dest,
                eto_secs: 100,
                ata_secs: 200,
            },
            cell: cell_at(pos, res()),
            next_cell: None,
        }
    }

    fn build(points: &[CellPoint]) -> Inventory {
        let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
        for cp in points {
            for key in [
                GroupKey::Cell(cp.cell),
                GroupKey::CellType(cp.cell, cp.point.segment),
                GroupKey::CellRoute(cp.cell, cp.point.origin, cp.point.dest, cp.point.segment),
            ] {
                entries
                    .entry(key)
                    .or_insert_with(|| CellStats::new(0.02, 8))
                    .observe(cp);
            }
        }
        Inventory::from_entries(res(), entries, points.len() as u64)
    }

    #[test]
    fn query_paths() {
        let seg = MarketSegment::Container;
        let points = vec![
            point_at(50.0, -10.0, 3, seg),
            point_at(50.0, -10.0, 3, seg),
            point_at(20.0, 60.0, 4, MarketSegment::Tanker),
        ];
        let inv = build(&points);
        let cell = points[0].cell;
        assert_eq!(inv.summary(cell).unwrap().records, 2);
        assert_eq!(inv.summary_for(cell, seg).unwrap().records, 2);
        assert!(inv.summary_for(cell, MarketSegment::Gas).is_none());
        assert_eq!(inv.summary_route(cell, 0, 3, seg).unwrap().records, 2);
        assert!(inv.summary_route(cell, 0, 9, seg).is_none());
        assert_eq!(inv.len_of(GroupingSet::Cell), 2);
        assert_eq!(inv.route_cells(0, 3, seg), vec![cell]);
    }

    #[test]
    fn top_destination_filter() {
        let seg = MarketSegment::Container;
        let points = vec![
            point_at(50.0, -10.0, 3, seg),
            point_at(50.0, -10.0, 3, seg),
            point_at(50.0, -10.0, 7, seg),
            point_at(20.0, 60.0, 7, seg),
        ];
        let inv = build(&points);
        let to3 = inv.cells_with_top_destination(3, None);
        assert_eq!(to3, vec![points[0].cell]);
        let to7 = inv.cells_with_top_destination(7, None);
        assert_eq!(to7, vec![points[3].cell]);
        let to7_seg = inv.cells_with_top_destination(7, Some(seg));
        assert_eq!(to7_seg, vec![points[3].cell]);
    }

    #[test]
    fn regional_filter() {
        let points = vec![
            point_at(60.0, 20.0, 1, MarketSegment::Tanker), // Baltic
            point_at(-30.0, -40.0, 1, MarketSegment::Tanker), // South Atlantic
        ];
        let inv = build(&points);
        let baltic = inv.cells_in(&BBox::baltic());
        assert_eq!(baltic, vec![points[0].cell]);
    }

    #[test]
    fn cells_in_matches_full_scan_and_survives_merge() {
        let seg = MarketSegment::Tanker;
        // A latitude ladder spanning the Baltic box boundary plus cells
        // inside the latitude band but outside the longitude range.
        let points: Vec<_> = (0..20)
            .map(|i| point_at(40.0 + i as f64, 20.0, 1, seg))
            .chain((0..5).map(|i| point_at(56.0 + i as f64, -40.0, 1, seg)))
            .collect();
        let mut inv = build(&points);
        let bbox = BBox::baltic();
        let brute: std::collections::BTreeSet<CellIndex> = inv
            .cells()
            .filter(|c| bbox.contains(cell_center(*c)))
            .collect();
        assert!(!brute.is_empty());
        let indexed: std::collections::BTreeSet<CellIndex> =
            inv.cells_in(&bbox).into_iter().collect();
        assert_eq!(indexed, brute);
        // Latitude ordering from the index.
        let lats: Vec<f64> = inv
            .cells_in(&bbox)
            .iter()
            .map(|c| cell_center(*c).lat())
            .collect();
        assert!(lats.windows(2).all(|w| w[0] <= w[1]));
        // Merging in new cells must refresh the index.
        let far = build(&[point_at(58.0, 21.0, 2, seg)]);
        inv.merge(&far);
        let brute2: std::collections::BTreeSet<CellIndex> = inv
            .cells()
            .filter(|c| bbox.contains(cell_center(*c)))
            .collect();
        let indexed2: std::collections::BTreeSet<CellIndex> =
            inv.cells_in(&bbox).into_iter().collect();
        assert_eq!(indexed2, brute2);
        assert!(brute2.len() >= brute.len());
    }

    #[test]
    fn coverage_report_arithmetic() {
        let points: Vec<_> = (0..100)
            .map(|i| point_at(50.0 + (i % 10) as f64, -10.0, 1, MarketSegment::DryBulk))
            .collect();
        let inv = build(&points);
        let cov = inv.coverage();
        assert_eq!(cov.resolution, 6);
        assert_eq!(cov.total_records, 100);
        assert_eq!(cov.occupied_cells, 10);
        assert!((cov.compression - 0.9).abs() < 1e-9);
        assert!(cov.utilization > 0.0 && cov.utilization < 1e-4);
        assert_eq!(cov.total_cells, num_cells(res()));
    }

    #[test]
    fn empty_inventory() {
        let inv = Inventory::from_entries(res(), FxHashMap::default(), 0);
        assert!(inv.is_empty());
        let cov = inv.coverage();
        assert_eq!(cov.compression, 0.0);
        assert_eq!(cov.utilization, 0.0);
    }

    #[test]
    fn merge_folds_entries() {
        let seg = MarketSegment::Container;
        let a = build(&[point_at(50.0, -10.0, 3, seg)]);
        let b = build(&[point_at(50.0, -10.0, 3, seg), point_at(20.0, 60.0, 4, seg)]);
        let mut m = build(&[point_at(50.0, -10.0, 3, seg)]);
        m.merge(&b);
        assert_eq!(m.total_records, a.total_records + b.total_records);
        let cell = cell_at(LatLon::new(50.0, -10.0).unwrap(), res());
        assert_eq!(m.summary(cell).unwrap().records, 2);
        assert_eq!(m.len_of(GroupingSet::Cell), 2);
    }

    #[test]
    #[should_panic(expected = "different resolutions")]
    fn merge_rejects_resolution_mismatch() {
        let mut a = Inventory::from_entries(res(), FxHashMap::default(), 0);
        let b = Inventory::from_entries(Resolution::new(7).unwrap(), FxHashMap::default(), 0);
        a.merge(&b);
    }
}
