//! Density-adaptive hierarchical inventory — the paper's §5 future work:
//! *"further explore hierarchical capabilities of the selected spatial
//! index (H3) to provide non-uniform inventories … using larger cells in
//! open sea areas which are known to have low vessel traffic density,
//! preserving at the same time high resolution in dense areas, such as the
//! ones near the ports."*
//!
//! The construction exploits the grid's exact aperture-7 hierarchy: start
//! from the fine all-traffic summaries (grouping set `(cell)`), then
//! bottom-up coalesce any group of seven siblings whose combined record
//! count stays below a threshold into their parent cell — repeatedly, up
//! to a configurable coarsest resolution. Because every `CellStats` is a
//! mergeable sketch, coalescing loses no statistical machinery, only
//! spatial granularity where there was nothing to resolve.

use crate::features::{CellStats, GroupKey};
use crate::inventory::Inventory;
use pol_geo::LatLon;
use pol_hexgrid::{cell_at, children, parent, CellIndex, Resolution};
use pol_sketch::hash::FxHashMap;
use pol_sketch::MergeSketch;

/// Tuning for the adaptive coarsening.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// Sibling groups whose combined record count is below this coalesce
    /// into their parent.
    pub min_records_per_cell: u64,
    /// Do not coarsen beyond this resolution (inclusive).
    pub coarsest: Resolution,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min_records_per_cell: 64,
            coarsest: Resolution::new_static(3),
        }
    }
}

/// A non-uniform inventory: cells of mixed resolutions partitioning the
/// observed ocean, fine near ports/lanes, coarse in the empty blue.
pub struct AdaptiveInventory {
    /// Finest (input) resolution.
    fine: Resolution,
    coarsest: Resolution,
    cells: FxHashMap<CellIndex, CellStats>,
}

impl AdaptiveInventory {
    /// Builds the adaptive inventory from a uniform one (uses its
    /// all-traffic `(cell)` grouping set).
    pub fn build(inventory: &Inventory, cfg: &AdaptiveConfig) -> AdaptiveInventory {
        let fine = inventory.resolution();
        assert!(
            cfg.coarsest <= fine,
            "coarsest {} must not be finer than the inventory ({})",
            cfg.coarsest.level(),
            fine.level()
        );
        // Current working level, starting at the fine cells.
        let mut level: FxHashMap<CellIndex, CellStats> = inventory
            .iter()
            .filter_map(|(k, s)| match k {
                GroupKey::Cell(c) => Some((*c, s.clone())),
                _ => None,
            })
            .collect();
        let mut done: FxHashMap<CellIndex, CellStats> = FxHashMap::default();
        // Parents that must never be created because some descendant was
        // already finalized at a finer resolution: creating them would put
        // an ancestor and a descendant in the partition simultaneously.
        let mut blocked: pol_sketch::hash::FxHashSet<CellIndex> =
            pol_sketch::hash::FxHashSet::default();

        let mut res = fine;
        while res > cfg.coarsest {
            // Group the current level by parent, moving the stats along.
            let mut by_parent: FxHashMap<CellIndex, Vec<(CellIndex, CellStats)>> =
                FxHashMap::default();
            for (cell, stats) in level.drain() {
                match parent(cell) {
                    Some(p) => by_parent.entry(p).or_default().push((cell, stats)),
                    // res > coarsest ≥ 0, so a parent always exists; a
                    // hypothetical res-0 cell is simply final as-is.
                    None => {
                        done.insert(cell, stats);
                    }
                }
            }
            let mut next: FxHashMap<CellIndex, CellStats> = FxHashMap::default();
            let mut next_blocked: pol_sketch::hash::FxHashSet<CellIndex> =
                pol_sketch::hash::FxHashSet::default();
            let block_upward = |p: CellIndex, nb: &mut pol_sketch::hash::FxHashSet<CellIndex>| {
                if let Some(gp) = parent(p) {
                    nb.insert(gp);
                }
            };
            for (p, kids) in by_parent {
                let total: u64 = kids.iter().map(|(_, s)| s.records).sum();
                if total < cfg.min_records_per_cell && !blocked.contains(&p) {
                    // Sparse and unobstructed: coalesce all siblings into
                    // the parent. Groups are built non-empty, so the fold
                    // always yields an accumulator.
                    let mut kids = kids.into_iter();
                    if let Some((_, mut acc)) = kids.next() {
                        for (_, s) in kids {
                            acc.merge(&s);
                        }
                        next.insert(p, acc);
                    }
                } else {
                    // Dense (or the parent shadows finer finalized cells):
                    // the children are final at this resolution.
                    for (c, s) in kids {
                        done.insert(c, s);
                    }
                    block_upward(p, &mut next_blocked);
                }
            }
            // Blocked parents with no surviving children still shadow their
            // own ancestors.
            for b in &blocked {
                block_upward(*b, &mut next_blocked);
            }
            blocked = next_blocked;
            level = next;
            // res > coarsest ≥ 0, so there is always a coarser level.
            let Some(up) = res.coarser() else { break };
            res = up;
        }
        // Whatever remains at the coarsest level is final.
        done.extend(level);
        AdaptiveInventory {
            fine,
            coarsest: cfg.coarsest,
            cells: done,
        }
    }

    /// Number of cells in the non-uniform partition.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the inventory is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Finest resolution present.
    pub fn fine_resolution(&self) -> Resolution {
        self.fine
    }

    /// The summary covering a position: the finest cell of the partition
    /// containing it (fine first, walking up to the coarsest).
    pub fn summary_at(&self, pos: LatLon) -> Option<(CellIndex, &CellStats)> {
        let mut cell = cell_at(pos, self.fine);
        loop {
            if let Some(s) = self.cells.get(&cell) {
                return Some((cell, s));
            }
            if cell.resolution() <= self.coarsest {
                return None;
            }
            cell = parent(cell)?;
        }
    }

    /// Iterates the mixed-resolution cells.
    pub fn iter(&self) -> impl Iterator<Item = (&CellIndex, &CellStats)> {
        self.cells.iter()
    }

    /// Histogram of cell counts per resolution level (diagnostics: how
    /// adaptive did the partition get).
    pub fn resolution_histogram(&self) -> Vec<(u8, usize)> {
        let mut counts: std::collections::BTreeMap<u8, usize> = Default::default();
        for c in self.cells.keys() {
            *counts.entry(c.resolution().level()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Verifies the partition property: no cell is an ancestor of another
    /// (every position has exactly one covering cell). Returns the number
    /// of violations (0 = valid).
    pub fn partition_violations(&self) -> usize {
        let mut violations = 0;
        for cell in self.cells.keys() {
            let mut cur = *cell;
            while cur.resolution() > self.coarsest {
                let Some(p) = parent(cur) else { break };
                if self.cells.contains_key(&p) {
                    violations += 1;
                    break;
                }
                cur = p;
            }
        }
        violations
    }

    /// Total records across the partition (must equal the source
    /// inventory's `(cell)` records).
    pub fn total_records(&self) -> u64 {
        self.cells.values().map(|s| s.records).sum()
    }
}

/// Expands a mixed-resolution cell back to its constituent fine cells
/// (for rendering an adaptive inventory on a uniform map).
pub fn descendants_at(cell: CellIndex, res: Resolution) -> Vec<CellIndex> {
    if cell.resolution() == res {
        return vec![cell];
    }
    if cell.resolution() > res {
        return Vec::new();
    }
    let mut frontier = vec![cell];
    while frontier.first().is_some_and(|c| c.resolution() < res) {
        frontier = frontier
            .into_iter()
            .flat_map(|c| children(c).into_iter().flatten())
            .collect();
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{CellPoint, TripPoint};
    use pol_ais::types::{MarketSegment, Mmsi};

    /// A uniform res-6 inventory with one dense area (many records per
    /// cell) and a long sparse trail (one record per cell).
    fn mixed_density_inventory() -> Inventory {
        let res = Resolution::new(6).unwrap();
        let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
        let mut add = |lat: f64, lon: f64, n: usize| {
            let pos = LatLon::new(lat, lon).unwrap();
            let cell = cell_at(pos, res);
            let stats = entries
                .entry(GroupKey::Cell(cell))
                .or_insert_with(|| CellStats::new(0.02, 8));
            for i in 0..n {
                stats.observe(&CellPoint {
                    point: TripPoint {
                        mmsi: Mmsi(1 + i as u32),
                        timestamp: i as i64,
                        pos,
                        sog_knots: Some(14.0),
                        cog_deg: Some(90.0),
                        heading_deg: Some(90.0),
                        segment: MarketSegment::Container,
                        trip_id: i as u64,
                        origin: 0,
                        dest: 1,
                        eto_secs: 100,
                        ata_secs: 200,
                    },
                    cell,
                    next_cell: None,
                });
            }
        };
        // Dense cluster near a "port" (500 records spread over a few cells).
        for i in 0..10 {
            add(51.0 + i as f64 * 0.02, 1.5, 50);
        }
        // Sparse mid-ocean trail: 1 record per cell over 30 degrees.
        for i in 0..60 {
            add(-20.0, -40.0 + i as f64 * 0.5, 1);
        }
        let total: u64 = entries.values().map(|s| s.records).sum();
        Inventory::from_entries(res, entries, total)
    }

    #[test]
    fn coalesces_sparse_keeps_dense() {
        let inv = mixed_density_inventory();
        let fine_cells = inv.len_of(crate::features::GroupingSet::Cell);
        let adaptive = AdaptiveInventory::build(&inv, &AdaptiveConfig::default());
        assert!(
            adaptive.len() < fine_cells,
            "{} !< {fine_cells}",
            adaptive.len()
        );
        // Mixed resolutions present.
        let hist = adaptive.resolution_histogram();
        assert!(hist.len() >= 2, "partition not adaptive: {hist:?}");
        // Dense cells stayed at res 6.
        assert!(hist.iter().any(|(r, _)| *r == 6), "{hist:?}");
        // Sparse trail coarsened below 6.
        assert!(hist.iter().any(|(r, _)| *r < 6), "{hist:?}");
    }

    #[test]
    fn preserves_total_records() {
        let inv = mixed_density_inventory();
        let adaptive = AdaptiveInventory::build(&inv, &AdaptiveConfig::default());
        let fine_total: u64 = inv
            .iter()
            .filter_map(|(k, s)| matches!(k, GroupKey::Cell(_)).then_some(s.records))
            .sum();
        assert_eq!(adaptive.total_records(), fine_total);
    }

    #[test]
    fn partition_is_valid() {
        let inv = mixed_density_inventory();
        let adaptive = AdaptiveInventory::build(&inv, &AdaptiveConfig::default());
        assert_eq!(adaptive.partition_violations(), 0);
    }

    #[test]
    fn query_resolves_fine_and_coarse() {
        let inv = mixed_density_inventory();
        let adaptive = AdaptiveInventory::build(&inv, &AdaptiveConfig::default());
        // Dense area: answered at fine resolution with high counts.
        let (cell, stats) = adaptive
            .summary_at(LatLon::new(51.0, 1.5).unwrap())
            .expect("dense area covered");
        assert_eq!(cell.resolution().level(), 6);
        assert!(stats.records >= 50);
        // Sparse trail: answered at a coarser cell that pooled neighbours.
        let (cell, stats) = adaptive
            .summary_at(LatLon::new(-20.0, -35.0).unwrap())
            .expect("sparse trail covered");
        assert!(cell.resolution().level() < 6);
        assert!(stats.records >= 1);
        // Untouched ocean: nothing.
        assert!(adaptive
            .summary_at(LatLon::new(70.0, -160.0).unwrap())
            .is_none());
    }

    #[test]
    fn merged_statistics_survive_coalescing() {
        let inv = mixed_density_inventory();
        let adaptive = AdaptiveInventory::build(&inv, &AdaptiveConfig::default());
        let (_, stats) = adaptive
            .summary_at(LatLon::new(-20.0, -35.0).unwrap())
            .unwrap();
        // The pooled sparse cell still knows speed and destination stats.
        assert!(stats.speed.mean().is_some());
        assert_eq!(stats.top_destinations(1)[0].0, 1);
    }

    #[test]
    fn threshold_extremes() {
        let inv = mixed_density_inventory();
        // Threshold 0/1: nothing coalesces (every group total ≥ 1 record
        // except empty groups, which don't exist).
        let none = AdaptiveInventory::build(
            &inv,
            &AdaptiveConfig {
                min_records_per_cell: 1,
                ..AdaptiveConfig::default()
            },
        );
        assert_eq!(none.len(), inv.len_of(crate::features::GroupingSet::Cell));
        // Huge threshold: everything pools down to the coarsest level.
        let all = AdaptiveInventory::build(
            &inv,
            &AdaptiveConfig {
                min_records_per_cell: u64::MAX,
                ..AdaptiveConfig::default()
            },
        );
        assert!(all
            .resolution_histogram()
            .iter()
            .all(|(r, _)| *r == AdaptiveConfig::default().coarsest.level()));
        assert_eq!(all.total_records(), none.total_records());
        assert_eq!(all.partition_violations(), 0);
    }

    #[test]
    fn descendants_expand_correctly() {
        let cell = cell_at(
            LatLon::new(10.0, 10.0).unwrap(),
            Resolution::new(4).unwrap(),
        );
        let res6 = Resolution::new(6).unwrap();
        let fine = descendants_at(cell, res6);
        assert_eq!(fine.len(), 49, "two levels of aperture 7");
        for f in &fine {
            assert_eq!(f.resolution(), res6);
            assert_eq!(
                pol_hexgrid::parent_at(*f, Resolution::new(4).unwrap()),
                Some(cell)
            );
        }
        // Identity and degenerate cases.
        assert_eq!(
            descendants_at(cell, Resolution::new(4).unwrap()),
            vec![cell]
        );
        assert!(descendants_at(cell, Resolution::new(3).unwrap()).is_empty());
    }
}
