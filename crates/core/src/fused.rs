//! The fused morsel-driven build executor.
//!
//! [`crate::pipeline::run`] materializes a full `Dataset` between every
//! stage: clean → trips → project → group-keys are four barrier-separated
//! passes, each allocating a complete intermediate copy of the data. At
//! paper scale (§3.3, 2.7 B reports) those intermediates dominate the
//! build. [`run_fused`] executes the same methodology as **one pass per
//! vessel partition**: after a single scan-enrich-shuffle, each partition
//! task walks its vessels as morsels — clean, trip-extract, project and
//! fold into the per-key accumulators with scratch buffers reused across
//! morsels — then hands radix-partitioned combiners to the engine's
//! parallel shard merge.
//!
//! ## Bit-identity with the staged path
//!
//! The fused executor is not "approximately" the staged pipeline — it
//! produces a byte-identical inventory (tested in
//! `tests/pipeline_properties.rs` and in `crate::pipeline`'s
//! thread-invariance test). That holds because every ordering decision
//! the staged path makes is replicated:
//!
//! * records scatter to `engine.default_partitions()` buckets by
//!   `hash64(mmsi) % num` — the same hash, count and input-partition
//!   concatenation order as `partition_by_key`. The scatter is two-pass
//!   (count, then write into exactly-sized per-worker buckets) and the
//!   driver moves whole chunk vectors, never records, so workers share
//!   nothing;
//! * within a partition, one unstable sort over `(mmsi, timestamp,
//!   arrival index)` replaces per-vessel grouping + per-vessel stable
//!   timestamp sort: the arrival index makes the key total (no equal
//!   keys), so the order is exactly ascending-MMSI vessels, each stably
//!   time-sorted — what [`crate::clean::order_and_filter_vessel`]
//!   produces vessel by vessel;
//! * the per-vessel machinery is literally shared: cleaning folds the
//!   same [`crate::clean::VesselCleaner`] state machine, trip extraction
//!   folds the same [`crate::trips::TripTracker`] (via
//!   [`crate::trips::extract_for_vessel_with`], reusing one tracker
//!   across morsels), projection is [`crate::project::project_trip`];
//! * trip ids are monotone in (mmsi, seq), so per-vessel emission order
//!   equals the staged path's whole-partition sort by trip id;
//! * group keys fan out `[Cell, CellType, CellRoute]` per record, giving
//!   identical accumulator insertion order, and the reduce half is the
//!   same [`pol_engine::merge_combiner_shards`] the staged
//!   `aggregate_by_key` uses.

use crate::clean::{enrich_one, segment_lookup, CleanReport, VesselCleaner};
use crate::config::PipelineConfig;
use crate::error::PipelineError;
use crate::features::{CellStats, GroupKey};
use crate::inventory::Inventory;
use crate::pipeline::{PipelineOutput, StageCounts};
use crate::project::project_trip;
use crate::records::{CellPoint, EnrichedReport, PortSite, TripPoint};
use crate::trips::{extract_for_vessel_with, Geofence, TripTracker};
use pol_ais::{PositionReport, StaticReport};
use pol_engine::{merge_combiner_shards, radix_partition, Engine, StageReport};
use pol_hexgrid::CellIndex;
use pol_sketch::hash::{hash64, FxHashMap};
use pol_sketch::MergeSketch;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

/// Per-worker scratch for the fused build phase, held in a `thread_local`
/// so each pool worker allocates its large transient buffers once and
/// reuses them for every task it runs. This matters beyond the allocation
/// *count*: the buffers are hundreds of KB each, which the system
/// allocator services with `mmap`/`munmap` — and concurrent unmapping
/// serializes workers on the process memory-map lock. Reuse only changes
/// where the bytes live, never what they are, so bit-identity is
/// untouched.
#[derive(Default)]
struct BuildScratch {
    /// Concatenated shuffle chunks for the current bucket.
    records: Vec<EnrichedReport>,
    /// `(mmsi, timestamp, arrival index)` sort keys over `records`.
    keys: Vec<(u32, i64, u32)>,
    /// Per-vessel cleaned reports.
    cleaned: Vec<EnrichedReport>,
    /// Per-vessel trip points.
    trips: Vec<TripPoint>,
    /// Per-trip projected cell points.
    cells: Vec<CellPoint>,
    /// `project_trip`'s cell-index working set.
    cell_scratch: Vec<CellIndex>,
    /// The shared trip state machine (its in-progress buffer grows to the
    /// largest vessel, so it is worth keeping warm too). `None` until the
    /// worker's first task; `TripTracker::reset` re-arms it per morsel.
    tracker: Option<TripTracker>,
}

thread_local! {
    static BUILD_SCRATCH: RefCell<BuildScratch> = RefCell::new(BuildScratch::default());
    /// Scan-phase scratch: the enrich pass's survivor buffer.
    static SCAN_SCRATCH: RefCell<Vec<EnrichedReport>> = const { RefCell::new(Vec::new()) };
}

/// Per-task output of the scan-enrich phase.
struct ScanOut {
    /// Enriched records, bucketed by `hash64(mmsi) % num`.
    buckets: Vec<Vec<EnrichedReport>>,
    raw: u64,
    out_of_range: u64,
}

/// Per-task output of the fused build phase.
struct BuildOut {
    /// Radix-partitioned per-key combiners for the parallel shard merge.
    shards: Vec<Vec<(GroupKey, CellStats)>>,
    cleaned: u64,
    with_trips: u64,
    morsels: u64,
}

/// Runs the full methodology as a fused single pass per vessel partition.
/// Same inputs, same outputs — bit-identical inventory, [`StageCounts`]
/// and [`CleanReport`] — as [`crate::pipeline::run`], with two parallel
/// phases instead of six barrier-separated stages.
pub fn run_fused(
    engine: &Engine,
    positions: Vec<Vec<PositionReport>>,
    statics: &[StaticReport],
    ports: &[PortSite],
    cfg: &PipelineConfig,
) -> Result<PipelineOutput, PipelineError> {
    let num = engine.default_partitions();

    // Phase 1: scan + range-check + enrich + scatter by vessel, one task
    // per input partition. Replicates `clean:ranges` → `clean:enrich` →
    // `clean:shuffle-by-mmsi` of the staged path in a single pass.
    let started = Instant::now();
    let lookup = Arc::new(segment_lookup(statics));
    let commercial_only = cfg.commercial_only;
    let scanned: Vec<ScanOut> =
        engine.run_tasks("fused:scan-enrich", positions, move |_, part| {
            let raw = part.len() as u64;
            let mut out_of_range = 0u64;
            SCAN_SCRATCH.with(|scratch| {
                // Pass 1: enrich into the worker's reusable buffer,
                // counting each survivor's destination bucket.
                let mut enriched = scratch.borrow_mut();
                enriched.clear();
                enriched.reserve(part.len());
                let mut counts = vec![0usize; num];
                for r in part {
                    if !r.in_protocol_ranges() {
                        out_of_range += 1;
                        continue;
                    }
                    if let Some(e) = enrich_one(&lookup, commercial_only, r) {
                        // Same scatter as `partition_by_key` keyed by mmsi.
                        counts[(hash64(&e.mmsi.0) % num as u64) as usize] += 1;
                        enriched.push(e);
                    }
                }
                // Pass 2: scatter into exactly-sized worker-local buckets —
                // same record order, no growth reallocation, nothing shared
                // across workers.
                let mut buckets: Vec<Vec<EnrichedReport>> =
                    counts.iter().map(|&c| Vec::with_capacity(c)).collect();
                for e in enriched.drain(..) {
                    let b = (hash64(&e.mmsi.0) % num as u64) as usize;
                    buckets[b].push(e);
                }
                ScanOut {
                    buckets,
                    raw,
                    out_of_range,
                }
            })
        })?;
    let raw_count: u64 = scanned.iter().map(|s| s.raw).sum();
    let out_of_range: u64 = scanned.iter().map(|s| s.out_of_range).sum();

    // Driver-side transpose: gather bucket b of every task in input order
    // — the shuffle's reduce side. The driver moves chunk *vectors*, never
    // records; each build task concatenates its own chunks, so the copy
    // work parallelizes instead of serializing on the driver.
    let tasks = scanned.len();
    let mut partitions: Vec<Vec<Vec<EnrichedReport>>> =
        (0..num).map(|_| Vec::with_capacity(tasks)).collect();
    for scan in scanned {
        for (b, bucket) in scan.buckets.into_iter().enumerate() {
            partitions[b].push(bucket);
        }
    }
    let enriched_count: u64 = partitions
        .iter()
        .flat_map(|p| p.iter())
        .map(|c| c.len() as u64)
        .sum();
    engine.metrics().record(StageReport {
        name: "fused:scan-enrich".to_string(),
        input_records: raw_count,
        output_records: enriched_count,
        shuffled_records: enriched_count,
        wall: started.elapsed(),
    });

    // Phase 2: the fused morsel loop — clean, trip-extract, project and
    // fold into per-key combiners, one task per vessel partition, scratch
    // buffers reused across morsels.
    let started = Instant::now();
    let geofence = Arc::new(Geofence::build(ports, cfg.resolution));
    let max_kn = cfg.max_feasible_speed_kn;
    let min_points = cfg.min_trip_points;
    let res = cfg.resolution;
    let eps = cfg.quantile_epsilon;
    let cap = cfg.top_n_capacity;
    let built: Vec<BuildOut> = engine.run_tasks("fused:build", partitions, move |_, chunks| {
        BUILD_SCRATCH.with(|scratch| {
            let s = &mut *scratch.borrow_mut();
            // Concatenate the shuffle chunks once (task order = the staged
            // shuffle's input-partition concatenation order) into the
            // worker's reusable buffer.
            let total: usize = chunks.iter().map(Vec::len).sum();
            let records = &mut s.records;
            records.clear();
            records.reserve(total);
            for chunk in chunks {
                records.extend(chunk);
            }
            // One unstable sort over (mmsi, timestamp, arrival index)
            // replaces the per-vessel hash grouping + per-vessel stable
            // timestamp sort: the arrival index makes the key total (no
            // equal keys, so instability is unobservable), and within a
            // vessel (timestamp, arrival) order is exactly the stable time
            // sort of its arrival-ordered records — what
            // `order_and_filter_vessel` feeds the cleaner vessel by vessel.
            let keys = &mut s.keys;
            keys.clear();
            keys.extend(
                records
                    .iter()
                    .enumerate()
                    .map(|(i, r)| (r.mmsi.0, r.timestamp, i as u32)),
            );
            keys.sort_unstable();
            let mut acc: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
            let cleaned_buf = &mut s.cleaned;
            let trip_buf = &mut s.trips;
            let cell_buf = &mut s.cells;
            let cell_scratch = &mut s.cell_scratch;
            let tracker = s
                .tracker
                .get_or_insert_with(|| TripTracker::new(min_points));
            let mut counts = BuildOut {
                shards: Vec::new(),
                cleaned: 0,
                with_trips: 0,
                morsels: 0,
            };
            // Walk vessels as runs of equal MMSI — ascending-MMSI morsel
            // order, every scratch buffer reused across morsels.
            let mut i = 0;
            while i < keys.len() {
                let mmsi = keys[i].0;
                let mut j = i + 1;
                while j < keys.len() && keys[j].0 == mmsi {
                    j += 1;
                }
                counts.morsels += 1;
                cleaned_buf.clear();
                trip_buf.clear();
                // Clean: fold the shared VesselCleaner state machine over
                // the time-sorted run (identical to
                // `order_and_filter_vessel`).
                let mut cleaner = VesselCleaner::new(max_kn);
                for k in &keys[i..j] {
                    if let Some(kept) = cleaner.push(records[k.2 as usize]) {
                        cleaned_buf.push(kept);
                    }
                }
                counts.cleaned += cleaned_buf.len() as u64;
                tracker.reset(min_points);
                extract_for_vessel_with(tracker, &geofence, cleaned_buf, trip_buf);
                counts.with_trips += trip_buf.len() as u64;
                // Trips emit contiguously in (mmsi, seq) order: project one
                // trip run at a time and fold straight into the combiners.
                let mut ti = 0;
                while ti < trip_buf.len() {
                    let mut tj = ti + 1;
                    while tj < trip_buf.len() && trip_buf[tj].trip_id == trip_buf[ti].trip_id {
                        tj += 1;
                    }
                    cell_buf.clear();
                    project_trip(&trip_buf[ti..tj], res, cell_scratch, cell_buf);
                    for cp in cell_buf.iter() {
                        let p = &cp.point;
                        // Same fan-out order as the staged `features` stage.
                        for key in [
                            GroupKey::Cell(cp.cell),
                            GroupKey::CellType(cp.cell, p.segment),
                            GroupKey::CellRoute(cp.cell, p.origin, p.dest, p.segment),
                        ] {
                            acc.entry(key)
                                .or_insert_with(|| CellStats::new(eps, cap))
                                .observe(cp);
                        }
                    }
                    ti = tj;
                }
                i = j;
            }
            counts.shards = radix_partition(acc, num);
            counts
        })
    })?;
    let cleaned_count: u64 = built.iter().map(|b| b.cleaned).sum();
    let with_trips: u64 = built.iter().map(|b| b.with_trips).sum();
    let morsels: u64 = built.iter().map(|b| b.morsels).sum();
    let projected_count = with_trips; // projection is total
    engine.metrics().record(StageReport {
        name: "fused:build".to_string(),
        input_records: enriched_count,
        output_records: projected_count,
        shuffled_records: 0,
        wall: started.elapsed(),
    });
    engine.metrics().add_counter("fused.morsels", morsels);

    // Phase 3: parallel radix shard merge — the same reduce half the
    // staged `aggregate_by_key` uses, so per-key merge order matches.
    let started = Instant::now();
    let sharded: Vec<Vec<Vec<(GroupKey, CellStats)>>> =
        built.into_iter().map(|b| b.shards).collect();
    let combiner_entries: u64 = sharded
        .iter()
        .flat_map(|w| w.iter())
        .map(|s| s.len() as u64)
        .sum();
    let stats = merge_combiner_shards(
        engine,
        "fused:aggregate",
        sharded,
        |a: &mut CellStats, o| a.merge(&o),
    )?;
    let group_entries = stats.count() as u64;
    engine.metrics().record(StageReport {
        name: "fused:aggregate".to_string(),
        input_records: projected_count * 3,
        output_records: group_entries,
        shuffled_records: combiner_entries,
        wall: started.elapsed(),
    });

    let inventory = Inventory::from_dataset(cfg.resolution, stats, projected_count);
    let output = cleaned_count;
    Ok(PipelineOutput {
        inventory,
        counts: StageCounts {
            raw: raw_count,
            cleaned: cleaned_count,
            with_trips,
            projected: projected_count,
            group_entries,
        },
        clean_report: CleanReport {
            input: raw_count,
            out_of_range,
            duplicates: 0,
            // Same accounting as the staged path: the per-vessel pass
            // removes both defect classes in one sweep, reported under
            // `infeasible`.
            infeasible: enriched_count - output,
            non_commercial: raw_count - out_of_range - enriched_count,
            output,
        },
    })
}

/// Folds per-vessel projected cell points into an [`Inventory`], replaying
/// the fused executor's phase 2–3 ordering exactly: vessels scatter to
/// `engine.default_partitions()` buckets by `hash64(mmsi) % num`, each
/// bucket observes its vessels in ascending-MMSI order with the same
/// `[Cell, CellType, CellRoute]` fan-out per point, and the reduce half is
/// the same [`pol_engine::merge_combiner_shards`] radix merge.
///
/// This is the streaming session layer's (pol-stream) close path: sessions
/// clean/extract/project incrementally, retain each vessel's cell points
/// in emission order, and hand them here — producing an inventory
/// byte-identical to [`run_fused`] over the same records (pinned by
/// `fold_projected_matches_run_fused` below). `projected_count` is the
/// total cell-point count recorded as the inventory's record total.
pub fn fold_projected(
    engine: &Engine,
    cfg: &PipelineConfig,
    per_vessel: Vec<(u32, Vec<CellPoint>)>,
    projected_count: u64,
) -> Result<Inventory, PipelineError> {
    let num = engine.default_partitions();
    // Same scatter as `run_fused` phase 1: a vessel's bucket depends only
    // on its MMSI hash, so bucket composition matches the batch shuffle.
    let mut partitions: Vec<Vec<(u32, Vec<CellPoint>)>> = (0..num).map(|_| Vec::new()).collect();
    for (mmsi, points) in per_vessel {
        let b = (hash64(&mmsi) % num as u64) as usize;
        partitions[b].push((mmsi, points));
    }
    let eps = cfg.quantile_epsilon;
    let cap = cfg.top_n_capacity;
    let started = Instant::now();
    let sharded: Vec<Vec<Vec<(GroupKey, CellStats)>>> =
        engine.run_tasks("stream:fold", partitions, move |_, mut part| {
            // Deterministic morsel order, as in the fused build phase.
            part.sort_by_key(|(m, _)| *m);
            let mut acc: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
            for (_, points) in part {
                for cp in &points {
                    let p = &cp.point;
                    // Same fan-out order as the staged `features` stage.
                    for key in [
                        GroupKey::Cell(cp.cell),
                        GroupKey::CellType(cp.cell, p.segment),
                        GroupKey::CellRoute(cp.cell, p.origin, p.dest, p.segment),
                    ] {
                        acc.entry(key)
                            .or_insert_with(|| CellStats::new(eps, cap))
                            .observe(cp);
                    }
                }
            }
            radix_partition(acc, num)
        })?;
    let combiner_entries: u64 = sharded
        .iter()
        .flat_map(|w| w.iter())
        .map(|s| s.len() as u64)
        .sum();
    let stats = merge_combiner_shards(
        engine,
        "stream:aggregate",
        sharded,
        |a: &mut CellStats, o| a.merge(&o),
    )?;
    engine.metrics().record(StageReport {
        name: "stream:fold".to_string(),
        input_records: projected_count,
        output_records: stats.count() as u64,
        shuffled_records: combiner_entries,
        wall: started.elapsed(),
    });
    Ok(Inventory::from_dataset(
        cfg.resolution,
        stats,
        projected_count,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clean::order_and_filter_vessel;
    use crate::codec;
    use crate::pipeline::run;
    use crate::trips::extract_for_vessel;
    use pol_fleetsim::scenario::{generate, ScenarioConfig};
    use pol_fleetsim::WORLD_PORTS;

    fn port_sites(radius_km: f64) -> Vec<PortSite> {
        WORLD_PORTS
            .iter()
            .enumerate()
            .map(|(i, p)| PortSite {
                id: i as u16,
                name: p.name.to_string(),
                pos: p.pos(),
                radius_km,
            })
            .collect()
    }

    #[test]
    fn fused_matches_staged_on_tiny_scenario() {
        let ds = generate(&ScenarioConfig::tiny());
        let cfg = PipelineConfig::default();
        let ports = port_sites(cfg.port_radius_km);
        let staged = run(
            &Engine::new(2),
            ds.positions.clone(),
            &ds.statics,
            &ports,
            &cfg,
        )
        .unwrap();
        let fused = run_fused(&Engine::new(2), ds.positions, &ds.statics, &ports, &cfg).unwrap();
        assert_eq!(staged.counts, fused.counts);
        assert_eq!(staged.clean_report, fused.clean_report);
        assert_eq!(
            codec::to_bytes(&staged.inventory),
            codec::to_bytes(&fused.inventory),
            "fused inventory must be byte-identical to staged"
        );
    }

    #[test]
    fn fused_records_radix_merge_stage_and_morsel_counter() {
        let ds = generate(&ScenarioConfig::tiny());
        let cfg = PipelineConfig::default();
        let ports = port_sites(cfg.port_radius_km);
        let engine = Engine::new(2);
        let out = run_fused(&engine, ds.positions, &ds.statics, &ports, &cfg).unwrap();
        assert!(!out.inventory.is_empty());
        let stages = engine.metrics().report();
        for name in ["fused:scan-enrich", "fused:build", "fused:aggregate"] {
            assert!(stages.iter().any(|s| s.name == name), "{name} missing");
        }
        assert!(
            stages
                .iter()
                .any(|s| s.name == "fused:aggregate:radix-merge"),
            "parallel shard merge must be visible in stage timings"
        );
        assert!(engine.metrics().counter("fused.morsels") > 0);
    }

    /// The contract pol-stream's close path rests on: collecting each
    /// vessel's projected cell points (via the shared incremental helpers,
    /// in batch order) and handing them to `fold_projected` reproduces the
    /// fused build byte-for-byte.
    #[test]
    fn fold_projected_matches_run_fused() {
        let ds = generate(&ScenarioConfig::tiny());
        let cfg = PipelineConfig::default();
        let ports = port_sites(cfg.port_radius_km);
        let fused = run_fused(
            &Engine::new(2),
            ds.positions.clone(),
            &ds.statics,
            &ports,
            &cfg,
        )
        .unwrap();

        // Collect per-vessel cell points exactly as a streaming session
        // would retain them: per-vessel input order, clean → extract →
        // project per contiguous trip run.
        let lookup = segment_lookup(&ds.statics);
        let mut per_vessel_reports: FxHashMap<u32, Vec<EnrichedReport>> = FxHashMap::default();
        let mut vessel_order: Vec<u32> = Vec::new();
        for part in &ds.positions {
            for r in part {
                if !r.in_protocol_ranges() {
                    continue;
                }
                if let Some(e) = enrich_one(&lookup, cfg.commercial_only, r.clone()) {
                    per_vessel_reports
                        .entry(e.mmsi.0)
                        .or_insert_with(|| {
                            vessel_order.push(e.mmsi.0);
                            Vec::new()
                        })
                        .push(e);
                }
            }
        }
        let geofence = Geofence::build(&ports, cfg.resolution);
        let mut per_vessel: Vec<(u32, Vec<CellPoint>)> = Vec::new();
        let mut projected_count = 0u64;
        for mmsi in vessel_order {
            let reports = per_vessel_reports.remove(&mmsi).unwrap();
            let mut cleaned = Vec::new();
            order_and_filter_vessel(reports, cfg.max_feasible_speed_kn, &mut cleaned);
            let mut trips = Vec::new();
            extract_for_vessel(&geofence, &cleaned, cfg.min_trip_points, &mut trips);
            let mut cells = Vec::new();
            let mut scratch = Vec::new();
            let mut i = 0;
            while i < trips.len() {
                let mut j = i + 1;
                while j < trips.len() && trips[j].trip_id == trips[i].trip_id {
                    j += 1;
                }
                project_trip(&trips[i..j], cfg.resolution, &mut scratch, &mut cells);
                i = j;
            }
            projected_count += trips.len() as u64;
            per_vessel.push((mmsi, cells));
        }
        assert_eq!(projected_count, fused.counts.projected);

        let folded = fold_projected(&Engine::new(1), &cfg, per_vessel, projected_count).unwrap();
        assert_eq!(
            codec::to_bytes(&fused.inventory),
            codec::to_bytes(&folded),
            "fold_projected must reproduce the fused build byte-for-byte"
        );
    }

    #[test]
    fn fused_empty_input_matches_staged() {
        let cfg = PipelineConfig::default();
        let ports = port_sites(cfg.port_radius_km);
        let staged = run(&Engine::new(2), vec![], &[], &ports, &cfg).unwrap();
        let fused = run_fused(&Engine::new(2), vec![], &[], &ports, &cfg).unwrap();
        assert_eq!(staged.counts, fused.counts);
        assert_eq!(staged.clean_report, fused.clean_report);
        assert_eq!(
            codec::to_bytes(&staged.inventory),
            codec::to_bytes(&fused.inventory)
        );
        assert!(fused.inventory.is_empty());
    }
}
