//! §3.3.4 — feature extraction over grouping sets.
//!
//! The grouping set (Table 2) defines the map phase: every projected
//! record fans out to one key per enabled group identifier. The feature
//! set (Table 3) defines the reduce phase: a [`CellStats`] accumulator per
//! key, built from the crate's mergeable sketches, combined by the
//! engine's `aggregate_by_key`.

use crate::config::PipelineConfig;
use crate::records::CellPoint;
use pol_ais::types::MarketSegment;
use pol_engine::{Dataset, Engine, EngineError};
use pol_hexgrid::CellIndex;
use pol_sketch::{AngleHistogram, Circular, Distinct, GkSketch, MergeSketch, SpaceSaving, Welford};

/// Which group identifiers (Table 2) the inventory materialises.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GroupingSet {
    /// `(H3-index)` — all traffic crossing each cell.
    Cell,
    /// `(H3-index, vessel-type)`.
    CellType,
    /// `(H3-index, origin, destination, vessel-type)`.
    CellRoute,
}

impl GroupingSet {
    /// All three grouping sets of the paper's Table 2.
    pub const ALL: [GroupingSet; 3] = [Self::Cell, Self::CellType, Self::CellRoute];
}

/// A concrete group identifier: one value combination of a grouping set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GroupKey {
    /// All traffic in a cell.
    Cell(CellIndex),
    /// Per cell and market segment.
    CellType(CellIndex, MarketSegment),
    /// Per cell, origin port, destination port and market segment.
    CellRoute(CellIndex, u16, u16, MarketSegment),
}

impl GroupKey {
    /// The cell component every key carries.
    pub fn cell(&self) -> CellIndex {
        match self {
            GroupKey::Cell(c) | GroupKey::CellType(c, _) | GroupKey::CellRoute(c, _, _, _) => *c,
        }
    }

    /// Which grouping set this key belongs to.
    pub fn grouping_set(&self) -> GroupingSet {
        match self {
            GroupKey::Cell(_) => GroupingSet::Cell,
            GroupKey::CellType(_, _) => GroupingSet::CellType,
            GroupKey::CellRoute(_, _, _, _) => GroupingSet::CellRoute,
        }
    }
}

/// The Table-3 feature statistics for one group identifier.
///
/// | Feature     | Statistics here                              |
/// |-------------|----------------------------------------------|
/// | Records     | `records` count                              |
/// | Ships       | `ships` distinct count                       |
/// | Course      | circular mean + 30° bins                     |
/// | Heading     | circular mean + 30° bins                     |
/// | Speed       | mean/std/min/max + p10/p50/p90               |
/// | Trips       | `trips` distinct count                       |
/// | ETO         | mean/std + percentiles (seconds)             |
/// | ATA         | mean/std + percentiles (seconds)             |
/// | Origin      | Top-N port ids                               |
/// | Destination | Top-N port ids                               |
/// | Transitions | Top-N next-cell indices                      |
#[derive(Clone, Debug)]
pub struct CellStats {
    /// Raw record count.
    pub records: u64,
    /// Distinct vessels.
    pub ships: Distinct,
    /// Distinct trips.
    pub trips: Distinct,
    /// Speed over ground, knots.
    pub speed: Welford,
    /// Speed percentiles.
    pub speed_q: GkSketch,
    /// Course over ground (circular).
    pub course: Circular,
    /// Course 30°-bins.
    pub course_bins: AngleHistogram,
    /// True heading (circular).
    pub heading: Circular,
    /// Heading 30°-bins.
    pub heading_bins: AngleHistogram,
    /// Elapsed time from origin, seconds.
    pub eto: Welford,
    /// ETO percentiles.
    pub eto_q: GkSketch,
    /// Actual time to arrival, seconds.
    pub ata: Welford,
    /// ATA percentiles.
    pub ata_q: GkSketch,
    /// Most frequent origin ports.
    pub origins: SpaceSaving<u64>,
    /// Most frequent destination ports.
    pub destinations: SpaceSaving<u64>,
    /// Most frequent next-cell transitions (raw cell indices).
    pub transitions: SpaceSaving<u64>,
}

impl CellStats {
    /// An empty accumulator with the configured sketch parameters.
    pub fn new(quantile_epsilon: f64, top_n_capacity: usize) -> CellStats {
        CellStats {
            records: 0,
            ships: Distinct::new(),
            trips: Distinct::new(),
            speed: Welford::new(),
            speed_q: GkSketch::new(quantile_epsilon),
            course: Circular::new(),
            course_bins: AngleHistogram::new(),
            heading: Circular::new(),
            heading_bins: AngleHistogram::new(),
            eto: Welford::new(),
            eto_q: GkSketch::new(quantile_epsilon),
            ata: Welford::new(),
            ata_q: GkSketch::new(quantile_epsilon),
            origins: SpaceSaving::new(top_n_capacity),
            destinations: SpaceSaving::new(top_n_capacity),
            transitions: SpaceSaving::new(top_n_capacity),
        }
    }

    /// Folds one projected record into the accumulator.
    pub fn observe(&mut self, cp: &CellPoint) {
        let p = &cp.point;
        self.records += 1;
        self.ships.add(&p.mmsi.0);
        self.trips.add(&p.trip_id);
        if let Some(s) = p.sog_knots {
            self.speed.add(s);
            self.speed_q.add(s);
        }
        if let Some(c) = p.cog_deg {
            self.course.add(c);
            self.course_bins.add(c);
        }
        if let Some(h) = p.heading_deg {
            self.heading.add(h);
            self.heading_bins.add(h);
        }
        self.eto.add(p.eto_secs as f64);
        self.eto_q.add(p.eto_secs as f64);
        self.ata.add(p.ata_secs as f64);
        self.ata_q.add(p.ata_secs as f64);
        self.origins.add(p.origin as u64);
        self.destinations.add(p.dest as u64);
        if let Some(next) = cp.next_cell {
            self.transitions.add(next.raw());
        }
    }

    /// Most frequent destination ports, `(port id, estimated count)`.
    pub fn top_destinations(&self, n: usize) -> Vec<(u16, u64)> {
        self.destinations
            .top(n)
            .into_iter()
            .map(|(k, c)| (k as u16, c.count))
            .collect()
    }

    /// Most frequent origin ports.
    pub fn top_origins(&self, n: usize) -> Vec<(u16, u64)> {
        self.origins
            .top(n)
            .into_iter()
            .map(|(k, c)| (k as u16, c.count))
            .collect()
    }

    /// Most frequent outgoing transitions, `(cell, estimated count)`.
    /// Invalid raw values (cannot occur from `observe`) are skipped.
    pub fn top_transitions(&self, n: usize) -> Vec<(CellIndex, u64)> {
        self.transitions
            .top(n)
            .into_iter()
            .filter_map(|(raw, c)| CellIndex::from_raw(raw).ok().map(|cell| (cell, c.count)))
            .collect()
    }
}

impl MergeSketch for CellStats {
    fn merge(&mut self, other: &Self) {
        self.records += other.records;
        self.ships.merge(&other.ships);
        self.trips.merge(&other.trips);
        self.speed.merge(&other.speed);
        self.speed_q.merge(&other.speed_q);
        self.course.merge(&other.course);
        self.course_bins.merge(&other.course_bins);
        self.heading.merge(&other.heading);
        self.heading_bins.merge(&other.heading_bins);
        self.eto.merge(&other.eto);
        self.eto_q.merge(&other.eto_q);
        self.ata.merge(&other.ata);
        self.ata_q.merge(&other.ata_q);
        self.origins.merge(&other.origins);
        self.destinations.merge(&other.destinations);
        self.transitions.merge(&other.transitions);
    }
}

/// The map+reduce of §3.3.4: fans every record out to its group
/// identifiers and aggregates [`CellStats`] per key.
pub fn build_group_stats(
    engine: &Engine,
    projected: Dataset<CellPoint>,
    cfg: &PipelineConfig,
) -> Result<Dataset<(GroupKey, CellStats)>, EngineError> {
    let eps = cfg.quantile_epsilon;
    let cap = cfg.top_n_capacity;
    projected
        .flat_map(engine, "features:group-keys", |cp| {
            let p = &cp.point;
            [
                (GroupKey::Cell(cp.cell), cp),
                (GroupKey::CellType(cp.cell, p.segment), cp),
                (
                    GroupKey::CellRoute(cp.cell, p.origin, p.dest, p.segment),
                    cp,
                ),
            ]
        })?
        .into_keyed()
        .aggregate_by_key(
            engine,
            "features:aggregate",
            move || CellStats::new(eps, cap),
            |acc, cp| acc.observe(&cp),
            |acc, other| acc.merge(&other),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::TripPoint;
    use pol_ais::types::Mmsi;
    use pol_geo::LatLon;
    use pol_hexgrid::{cell_at, Resolution};

    fn cp(mmsi: u32, trip: u64, sog: f64, cog: f64, origin: u16, dest: u16) -> CellPoint {
        let pos = LatLon::new(48.0, -6.0).unwrap();
        let cell = cell_at(pos, Resolution::new(6).unwrap());
        CellPoint {
            point: TripPoint {
                mmsi: Mmsi(mmsi),
                timestamp: 1000,
                pos,
                sog_knots: Some(sog),
                cog_deg: Some(cog),
                heading_deg: Some(cog),
                segment: MarketSegment::Container,
                trip_id: trip,
                origin,
                dest,
                eto_secs: 3_600,
                ata_secs: 7_200,
            },
            cell,
            next_cell: None,
        }
    }

    #[test]
    fn observe_accumulates_all_features() {
        let mut s = CellStats::new(0.02, 8);
        s.observe(&cp(1, 10, 12.0, 90.0, 0, 5));
        s.observe(&cp(1, 10, 14.0, 92.0, 0, 5));
        s.observe(&cp(2, 20, 16.0, 88.0, 1, 5));
        assert_eq!(s.records, 3);
        assert_eq!(s.ships.estimate(), 2);
        assert_eq!(s.trips.estimate(), 2);
        assert!((s.speed.mean().unwrap() - 14.0).abs() < 1e-9);
        assert!((s.course.mean_deg().unwrap() - 90.0).abs() < 1.0);
        // 88° lands in bin 2 ([60°, 90°)); 90° and 92° in bin 3 ([90°, 120°)).
        assert_eq!(s.course_bins.counts()[2], 1);
        assert_eq!(s.course_bins.counts()[3], 2);
        assert_eq!(s.top_destinations(1), vec![(5, 3)]);
        assert_eq!(s.top_origins(1)[0].0, 0);
        assert!((s.eto.mean().unwrap() - 3_600.0).abs() < 1e-9);
        assert!((s.ata.mean().unwrap() - 7_200.0).abs() < 1e-9);
    }

    #[test]
    fn missing_kinematics_do_not_count() {
        let mut s = CellStats::new(0.02, 8);
        let mut point = cp(1, 10, 12.0, 90.0, 0, 5);
        point.point.sog_knots = None;
        point.point.cog_deg = None;
        point.point.heading_deg = None;
        s.observe(&point);
        assert_eq!(s.records, 1);
        assert_eq!(s.speed.count(), 0);
        assert_eq!(s.course.count(), 0);
        assert_eq!(s.heading.count(), 0);
    }

    #[test]
    fn transitions_tracked_when_present() {
        let mut s = CellStats::new(0.02, 8);
        let mut point = cp(1, 10, 12.0, 90.0, 0, 5);
        let other = cell_at(
            LatLon::new(48.5, -6.0).unwrap(),
            Resolution::new(6).unwrap(),
        );
        point.next_cell = Some(other);
        s.observe(&point);
        s.observe(&point);
        let top = s.top_transitions(3);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0], (other, 2));
    }

    #[test]
    fn merge_equals_single_accumulator() {
        let points: Vec<_> = (0..50)
            .map(|i| {
                cp(
                    i % 5,
                    (i % 7) as u64,
                    10.0 + i as f64 % 8.0,
                    (i * 13 % 360) as f64,
                    (i % 3) as u16,
                    (i % 4) as u16,
                )
            })
            .collect();
        let mut whole = CellStats::new(0.02, 8);
        points.iter().for_each(|p| whole.observe(p));
        let mut a = CellStats::new(0.02, 8);
        let mut b = CellStats::new(0.02, 8);
        points[..20].iter().for_each(|p| a.observe(p));
        points[20..].iter().for_each(|p| b.observe(p));
        a.merge(&b);
        assert_eq!(a.records, whole.records);
        assert_eq!(a.ships.estimate(), whole.ships.estimate());
        assert_eq!(a.speed.count(), whole.speed.count());
        assert!((a.speed.mean().unwrap() - whole.speed.mean().unwrap()).abs() < 1e-9);
        assert_eq!(a.course_bins.counts(), whole.course_bins.counts());
        assert_eq!(a.top_destinations(4), whole.top_destinations(4));
    }

    #[test]
    fn group_keys_fan_out_three_ways() {
        let engine = Engine::new(2);
        let cfg = PipelineConfig::default();
        let points = vec![cp(1, 10, 12.0, 90.0, 0, 5), cp(2, 11, 13.0, 91.0, 0, 5)];
        let out = build_group_stats(&engine, Dataset::from_vec(points, 1), &cfg)
            .unwrap()
            .collect();
        // One cell, one segment, one (o,d): exactly 3 group keys.
        assert_eq!(out.len(), 3);
        let mut sets: Vec<GroupingSet> = out.iter().map(|(k, _)| k.grouping_set()).collect();
        sets.sort_by_key(|s| format!("{s:?}"));
        assert_eq!(
            sets,
            vec![
                GroupingSet::Cell,
                GroupingSet::CellRoute,
                GroupingSet::CellType
            ]
        );
        for (key, stats) in &out {
            assert_eq!(stats.records, 2, "{key:?}");
            assert_eq!(key.cell(), out[0].0.cell());
        }
    }

    #[test]
    fn distinct_segments_split_celltype_keys() {
        let engine = Engine::new(2);
        let cfg = PipelineConfig::default();
        let mut a = cp(1, 10, 12.0, 90.0, 0, 5);
        let mut b = cp(2, 11, 13.0, 91.0, 0, 5);
        a.point.segment = MarketSegment::Container;
        b.point.segment = MarketSegment::Tanker;
        let out = build_group_stats(&engine, Dataset::from_vec(vec![a, b], 1), &cfg)
            .unwrap()
            .collect();
        // Cell (1 shared) + CellType (2) + CellRoute (2) = 5 keys.
        assert_eq!(out.len(), 5);
        let cell_key: Vec<_> = out
            .iter()
            .filter(|(k, _)| k.grouping_set() == GroupingSet::Cell)
            .collect();
        assert_eq!(cell_key.len(), 1);
        assert_eq!(cell_key[0].1.records, 2);
    }
}
