//! §3.3.1 — data cleaning and preprocessing.
//!
//! The paper's steps, in order: partition by vessel identifier, reject
//! values outside protocol ranges, sort each vessel's reports by
//! timestamp, drop duplicate timestamps, reject infeasible transitions
//! (implied speed > 50 kn), and annotate/filter with the static inventory
//! so only the commercial fleet remains.

use crate::config::PipelineConfig;
use crate::records::EnrichedReport;
use pol_ais::types::{MarketSegment, Mmsi};
use pol_ais::{PositionReport, StaticReport};
use pol_engine::{Dataset, Engine, EngineError};
use pol_geo::haversine_km;
use pol_geo::units::implied_speed_knots;
use pol_sketch::hash::FxHashMap;
use std::sync::Arc;

/// What cleaning did — the stage-by-stage record accounting of Figure 2a.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CleanReport {
    /// Raw input records.
    pub input: u64,
    /// Removed: out of protocol range.
    pub out_of_range: u64,
    /// Removed: duplicate (mmsi, timestamp).
    pub duplicates: u64,
    /// Removed: infeasible transitions.
    pub infeasible: u64,
    /// Removed: unknown vessel or non-commercial segment.
    pub non_commercial: u64,
    /// Surviving records.
    pub output: u64,
}

/// MMSI → (segment, commercial flag) lookup table built from the static
/// inventory — the join side of the enrichment step. Public so the
/// streaming session layer (`pol-stream`) can enrich records with exactly
/// the batch pipeline's join semantics.
pub fn segment_lookup(statics: &[StaticReport]) -> FxHashMap<Mmsi, (MarketSegment, bool)> {
    statics
        .iter()
        .map(|s| (s.mmsi, (s.segment(), s.is_commercial_fleet())))
        .collect()
}

/// Annotates one in-range report with its market segment. `None` drops
/// it: unknown vessel, or non-commercial while `commercial_only` is set.
pub fn enrich_one(
    lookup: &FxHashMap<Mmsi, (MarketSegment, bool)>,
    commercial_only: bool,
    r: PositionReport,
) -> Option<EnrichedReport> {
    match lookup.get(&r.mmsi) {
        Some((segment, commercial)) if *commercial || !commercial_only => Some(EnrichedReport {
            mmsi: r.mmsi,
            timestamp: r.timestamp,
            pos: r.pos,
            sog_knots: r.sog_knots,
            cog_deg: r.cog_deg,
            heading_deg: r.heading_deg,
            nav_status: r.nav_status,
            segment: *segment,
        }),
        _ => None,
    }
}

/// The incremental form of the per-vessel order/de-dup/feasibility pass:
/// one vessel's reports are fed in nondecreasing-timestamp order and each
/// call answers whether that report survives.
///
/// The batch path ([`order_and_filter_vessel`]) is a timestamp sort
/// followed by a fold over this exact state machine, so the two cannot
/// diverge: a streaming session that releases a vessel's records in
/// timestamp order (ties in arrival order, matching the batch stable
/// sort) produces the identical surviving sequence.
#[derive(Clone, Debug)]
pub struct VesselCleaner {
    max_feasible_speed_kn: f64,
    last: Option<EnrichedReport>,
}

impl VesselCleaner {
    /// A cleaner with no history, rejecting transitions implying more
    /// than `max_feasible_speed_kn` knots.
    pub fn new(max_feasible_speed_kn: f64) -> VesselCleaner {
        VesselCleaner {
            max_feasible_speed_kn,
            last: None,
        }
    }

    /// Reconstructs a cleaner mid-stream from checkpointed state: the
    /// speed threshold plus the last surviving report ([`Self::last`]).
    /// `VesselCleaner::resume(kn, c.last())` behaves identically to `c`
    /// — the whole state is that one report.
    pub fn resume(max_feasible_speed_kn: f64, last: Option<EnrichedReport>) -> VesselCleaner {
        VesselCleaner {
            max_feasible_speed_kn,
            last,
        }
    }

    /// The last surviving report — the anchor the next duplicate and
    /// feasibility decisions are made against. This is the cleaner's
    /// entire mutable state, which is what makes it checkpointable.
    pub fn last(&self) -> Option<EnrichedReport> {
        self.last
    }

    /// Feeds the vessel's next report (timestamps must be
    /// nondecreasing). Returns `Some(r)` when the report survives the
    /// duplicate and feasibility filters, `None` when it is dropped.
    pub fn push(&mut self, r: EnrichedReport) -> Option<EnrichedReport> {
        if let Some(prev) = self.last {
            if r.timestamp == prev.timestamp {
                return None; // duplicate
            }
            let d = haversine_km(prev.pos, r.pos);
            let dt = (r.timestamp - prev.timestamp) as f64;
            if implied_speed_knots(d, dt) > self.max_feasible_speed_kn {
                return None; // infeasible transition
            }
        }
        self.last = Some(r);
        Some(r)
    }
}

/// One vessel's order/de-dup/feasibility pass: sorts by timestamp, drops
/// duplicate timestamps and infeasible transitions, appends survivors to
/// `out` (caller-owned so fused executors can reuse the buffer). The
/// filter itself is a [`VesselCleaner`] fold over the sorted reports —
/// shared with the streaming session layer by construction.
pub fn order_and_filter_vessel(
    mut reports: Vec<EnrichedReport>,
    max_feasible_speed_kn: f64,
    out: &mut Vec<EnrichedReport>,
) {
    // Stable sort: among equal timestamps the first report in input
    // order wins, which is also the streaming release order.
    reports.sort_by_key(|r| r.timestamp);
    let mut cleaner = VesselCleaner::new(max_feasible_speed_kn);
    for r in reports {
        if let Some(kept) = cleaner.push(r) {
            out.push(kept);
        }
    }
}

/// Runs the full cleaning + enrichment step. Returns the surviving
/// reports, partitioned by vessel and time-sorted within each vessel, each
/// annotated with its market segment.
pub fn clean_and_enrich(
    engine: &Engine,
    raw: Dataset<PositionReport>,
    statics: &[StaticReport],
    cfg: &PipelineConfig,
) -> Result<(Dataset<EnrichedReport>, CleanReport), EngineError> {
    let mut report = CleanReport {
        input: raw.count() as u64,
        ..CleanReport::default()
    };

    // Protocol range check (positions were validated at parse time).
    let ranged = raw.filter(engine, "clean:ranges", |r| r.in_protocol_ranges())?;
    report.out_of_range = report.input - ranged.count() as u64;

    // Static-inventory join: MMSI -> segment, commercial flag.
    let lookup = Arc::new(segment_lookup(statics));
    let commercial_only = cfg.commercial_only;
    let lk = lookup.clone();
    let enriched = ranged.flat_map(engine, "clean:enrich", move |r| {
        enrich_one(&lk, commercial_only, r)
    })?;
    let after_enrich = enriched.count() as u64;
    report.non_commercial = report.input - report.out_of_range - after_enrich;

    // Partition by vessel, then order/de-dup/feasibility-filter per vessel.
    let max_kn = cfg.max_feasible_speed_kn;
    let by_vessel = enriched
        .key_by(engine, "clean:key-by-mmsi", |r| r.mmsi.0)?
        .partition_by_key(engine, "clean:shuffle-by-mmsi", engine.default_partitions())?;
    let cleaned = by_vessel.into_inner().map_partitions(
        engine,
        "clean:order-and-feasibility",
        move |part| {
            let mut per_vessel: FxHashMap<u32, Vec<EnrichedReport>> = FxHashMap::default();
            for (mmsi, r) in part {
                per_vessel.entry(mmsi).or_default().push(r);
            }
            let mut out = Vec::new();
            let mut vessels: Vec<_> = per_vessel.into_iter().collect();
            // Deterministic output order regardless of hash iteration.
            vessels.sort_by_key(|(m, _)| *m);
            for (_, reports) in vessels {
                order_and_filter_vessel(reports, max_kn, &mut out);
            }
            out
        },
    )?;
    report.output = cleaned.count() as u64;
    // The per-vessel pass removes both defect classes (duplicates and
    // infeasible transitions) in one sweep; the split is not observable
    // from outside, so the combined figure is reported under `infeasible`
    // and `duplicates` stays zero. (Unit tests exercise the two classes
    // separately.)
    report.infeasible = after_enrich - report.output;

    Ok((cleaned, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pol_ais::types::{NavStatus, ShipTypeCode};
    use pol_geo::LatLon;

    fn static_report(mmsi: u32, ship_type: u8, grt: u32) -> StaticReport {
        StaticReport {
            mmsi: Mmsi(mmsi),
            imo: None,
            name: format!("V{mmsi}"),
            ship_type: ShipTypeCode(ship_type),
            gross_tonnage: grt,
        }
    }

    fn report(mmsi: u32, t: i64, lat: f64, lon: f64) -> PositionReport {
        PositionReport {
            mmsi: Mmsi(mmsi),
            timestamp: t,
            pos: LatLon::new(lat, lon).unwrap(),
            sog_knots: Some(12.0),
            cog_deg: Some(90.0),
            heading_deg: Some(90.0),
            nav_status: NavStatus::UnderWayUsingEngine,
        }
    }

    fn run(
        reports: Vec<PositionReport>,
        statics: Vec<StaticReport>,
    ) -> (Vec<EnrichedReport>, CleanReport) {
        let engine = Engine::new(2);
        let cfg = PipelineConfig::default();
        let (ds, rep) =
            clean_and_enrich(&engine, Dataset::from_vec(reports, 3), &statics, &cfg).unwrap();
        (ds.collect(), rep)
    }

    #[test]
    fn keeps_valid_commercial_reports() {
        let statics = vec![static_report(1, 71, 50_000)];
        let (out, rep) = run(
            vec![report(1, 100, 51.0, 1.0), report(1, 400, 51.01, 1.01)],
            statics,
        );
        assert_eq!(out.len(), 2);
        assert_eq!(rep.output, 2);
        assert_eq!(rep.out_of_range + rep.infeasible + rep.non_commercial, 0);
        assert_eq!(out[0].segment, MarketSegment::Container);
    }

    #[test]
    fn rejects_out_of_range_values() {
        let statics = vec![static_report(1, 71, 50_000)];
        let mut bad_sog = report(1, 100, 51.0, 1.0);
        bad_sog.sog_knots = Some(300.0);
        let mut bad_cog = report(1, 200, 51.0, 1.0);
        bad_cog.cog_deg = Some(400.0);
        let (out, rep) = run(vec![bad_sog, bad_cog, report(1, 300, 51.0, 1.0)], statics);
        assert_eq!(out.len(), 1);
        assert_eq!(rep.out_of_range, 2);
    }

    #[test]
    fn drops_unknown_and_non_commercial_vessels() {
        let statics = vec![
            static_report(1, 71, 50_000), // commercial
            static_report(2, 30, 50_000), // fishing
            static_report(3, 71, 1_000),  // too small
        ];
        let (out, rep) = run(
            vec![
                report(1, 100, 51.0, 1.0),
                report(2, 100, 51.0, 1.0),
                report(3, 100, 51.0, 1.0),
                report(4, 100, 51.0, 1.0), // unknown MMSI
            ],
            statics,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(rep.non_commercial, 3);
    }

    #[test]
    fn sorts_and_deduplicates_per_vessel() {
        let statics = vec![static_report(1, 71, 50_000)];
        let (out, _) = run(
            vec![
                report(1, 300, 51.02, 1.0),
                report(1, 100, 51.0, 1.0),
                report(1, 100, 51.0, 1.0), // duplicate timestamp
                report(1, 200, 51.01, 1.0),
            ],
            statics,
        );
        let ts: Vec<i64> = out.iter().map(|r| r.timestamp).collect();
        assert_eq!(ts, vec![100, 200, 300]);
    }

    #[test]
    fn rejects_infeasible_transitions() {
        let statics = vec![static_report(1, 71, 50_000)];
        // 1 degree of latitude (111 km) in 60 s ⇒ ~3600 kn: impossible.
        let (out, rep) = run(
            vec![
                report(1, 100, 51.0, 1.0),
                report(1, 160, 52.0, 1.0), // teleport
                report(1, 220, 51.001, 1.0),
            ],
            statics,
        );
        assert_eq!(out.len(), 2, "teleported record dropped, track continues");
        assert_eq!(rep.infeasible, 1);
    }

    #[test]
    fn feasibility_keeps_fast_but_possible_movement() {
        let statics = vec![static_report(1, 71, 50_000)];
        // 25 kn ≈ 46.3 km/h: 1.3 km in 100 s is fine.
        let (out, _) = run(
            vec![report(1, 0, 51.0, 1.0), report(1, 100, 51.0116, 1.0)],
            statics,
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn commercial_only_can_be_disabled() {
        let engine = Engine::new(1);
        let mut cfg = PipelineConfig::default();
        cfg.commercial_only = false;
        let statics = vec![static_report(2, 30, 100)]; // fishing boat
        let (ds, _) = clean_and_enrich(
            &engine,
            Dataset::from_vec(vec![report(2, 100, 51.0, 1.0)], 1),
            &statics,
            &cfg,
        )
        .unwrap();
        let out = ds.collect();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].segment, MarketSegment::Other);
    }

    #[test]
    fn accounting_adds_up() {
        let statics = vec![static_report(1, 71, 50_000)];
        let mut bad = report(1, 50, 51.0, 1.0);
        bad.sog_knots = Some(999.0);
        let (_, rep) = run(
            vec![
                bad,
                report(1, 100, 51.0, 1.0),
                report(1, 100, 51.0, 1.0),
                report(2, 100, 51.0, 1.0),
            ],
            statics,
        );
        assert_eq!(
            rep.input,
            rep.out_of_range + rep.non_commercial + rep.infeasible + rep.output
        );
    }
}
