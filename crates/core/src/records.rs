//! The records flowing between pipeline stages.

use pol_ais::types::{MarketSegment, Mmsi, NavStatus};
use pol_geo::LatLon;
use pol_hexgrid::CellIndex;

/// A port with its geofence — the pipeline's own view of the external port
/// database (§3.3.2). Decoupled from any particular data source; the bench
/// harness adapts the simulator's port table into this.
#[derive(Clone, Debug)]
pub struct PortSite {
    /// Stable port identifier (the inventory stores these ids).
    pub id: u16,
    /// Display name.
    pub name: String,
    /// Harbour position.
    pub pos: LatLon,
    /// Geofence radius in km.
    pub radius_km: f64,
}

/// A cleaned, enriched positional report (post §3.3.1): the raw report
/// plus the vessel-type annotation from the static inventory.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnrichedReport {
    /// Reporting vessel identity.
    pub mmsi: Mmsi,
    /// Report time, Unix seconds.
    pub timestamp: i64,
    /// Reported position.
    pub pos: LatLon,
    /// Speed over ground, knots (if reported).
    pub sog_knots: Option<f64>,
    /// Course over ground, degrees (if reported).
    pub cog_deg: Option<f64>,
    /// True heading, degrees (if reported).
    pub heading_deg: Option<f64>,
    /// Navigational status from the position report.
    pub nav_status: NavStatus,
    /// Market segment from the static inventory join.
    pub segment: MarketSegment,
}

/// A report annotated with trip semantics (post §3.3.2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TripPoint {
    /// Reporting vessel identity.
    pub mmsi: Mmsi,
    /// Report time, Unix seconds.
    pub timestamp: i64,
    /// Reported position.
    pub pos: LatLon,
    /// Speed over ground, knots (if reported).
    pub sog_knots: Option<f64>,
    /// Course over ground, degrees (if reported).
    pub cog_deg: Option<f64>,
    /// True heading, degrees (if reported).
    pub heading_deg: Option<f64>,
    /// Market segment from the static inventory join.
    pub segment: MarketSegment,
    /// Unique trip identifier (vessel-scoped sequence in the high bits).
    pub trip_id: u64,
    /// Origin port id.
    pub origin: u16,
    /// Destination port id.
    pub dest: u16,
    /// Elapsed time from origin departure, seconds (Table 3 "ETO").
    pub eto_secs: i64,
    /// Actual time to arrival at destination, seconds (Table 3 "ATA").
    pub ata_secs: i64,
}

impl TripPoint {
    /// Builds the trip id from vessel identity and a per-vessel sequence.
    pub fn make_trip_id(mmsi: Mmsi, seq: u32) -> u64 {
        ((mmsi.0 as u64) << 20) | (seq as u64 & 0xF_FFFF)
    }
}

/// A trip point projected onto the grid (post §3.3.3), carrying the
/// next-distinct-cell transition when one exists within the same trip.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellPoint {
    /// The underlying trip point.
    pub point: TripPoint,
    /// The grid cell containing the point.
    pub cell: CellIndex,
    /// The next distinct cell this vessel entered on the same trip.
    pub next_cell: Option<CellIndex>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_id_is_unique_per_vessel_sequence() {
        let a = TripPoint::make_trip_id(Mmsi(200_000_011), 0);
        let b = TripPoint::make_trip_id(Mmsi(200_000_011), 1);
        let c = TripPoint::make_trip_id(Mmsi(200_000_012), 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        // MMSI recoverable from the high bits.
        assert_eq!(a >> 20, 200_000_011);
    }
}
