//! Versioned, crash-safe binary persistence for the inventory.
//!
//! ## On-disk layout (version 2)
//!
//! ```text
//! magic    b"POLINV2\0"                                   8 bytes
//! header   u32 LE section length                          4 bytes
//!          resolution u8, total-record varint,
//!          entry-count varint                              (length bytes)
//!          u64 LE CRC-64/XZ of the section bytes           8 bytes
//! entries  u64 LE section length                           8 bytes
//!          per entry: tagged GroupKey + CellStats
//!          sketches in fixed order                         (length bytes)
//!          u64 LE CRC-64/XZ of the section bytes           8 bytes
//! footer   u64 LE total file length, b"POLSEAL\0"         16 bytes
//! ```
//!
//! Every section carries its own [`pol_sketch::crc64`] checksum, and the
//! footer seals the file: a load first proves the file *ends* correctly
//! (magic + recorded length), so truncation from a torn write is
//! detected before any section is trusted, then proves each section's
//! bytes are the bytes that were written. Any single bit flip anywhere
//! in the file surfaces as a typed [`CodecError`] — property-tested in
//! `tests/codec_corruption.rs`, audited on demand by `polinv verify`.
//!
//! ## Crash-safe writes
//!
//! [`save`] never exposes a half-written inventory: bytes go to a
//! sibling temp file, which is fsynced, atomically renamed over the
//! destination, and the directory entry is then fsynced. A crash (or an
//! injected `codec.save.*` failpoint) at any step leaves either the old
//! complete file or the new complete file, never a torn one, and the
//! temp file is removed on every failure path.
//!
//! Everything round-trips by property test.

pub mod columnar;
pub mod manifest;
pub mod wal;

use crate::features::{CellStats, GroupKey};
use crate::inventory::Inventory;
use pol_ais::types::MarketSegment;
use pol_hexgrid::{CellIndex, Resolution};
use pol_sketch::crc64::crc64;
use pol_sketch::hash::FxHashMap;
use pol_sketch::wire::{get_varint, put_varint, Wire, WireError};
use std::fmt;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// File magic (format version 2: checksummed sections, sealed footer).
pub const MAGIC: &[u8; 8] = b"POLINV2\0";

/// The magic of the retired unchecksummed version-1 format, recognised
/// only to produce a precise error.
pub const MAGIC_V1: &[u8; 8] = b"POLINV1\0";

/// Footer seal magic — the last 8 bytes of every complete inventory file.
pub const FOOTER_MAGIC: &[u8; 8] = b"POLSEAL\0";

/// A conservative lower bound on the serialized size of one inventory
/// entry (tagged key + all sixteen statistics in their empty form). An
/// empty [`CellStats`] alone encodes to over 70 bytes (checked by a
/// regression test); 64 keeps headroom for future slimmer encodings while
/// still bounding allocation to `input_len / 64` entries.
pub const MIN_ENTRY_BYTES: usize = 64;

/// Errors from loading or verifying an inventory.
#[derive(Debug)]
pub enum CodecError {
    /// I/O failure.
    Io(io::Error),
    /// Structural failure inside a checksummed section (an encoder bug
    /// or an impossibly collided checksum, not ordinary corruption).
    Wire(WireError),
    /// Wrong magic / unsupported version.
    BadHeader,
    /// The footer seal is missing or inconsistent: the file was
    /// truncated or torn mid-write and must not be trusted.
    Unsealed,
    /// A section's bytes do not match their recorded CRC-64: bit rot or
    /// in-place corruption.
    Checksum {
        /// Which section failed (`"header"` or `"entries"` for v2 files;
        /// `"cell"`, `"cell-type"`, `"cell-route"` or `"lat-index"` for
        /// columnar v3 files).
        section: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "inventory io error: {e}"),
            Self::Wire(e) => write!(f, "inventory decode error: {e}"),
            Self::BadHeader => write!(f, "not a patterns-of-life inventory file"),
            Self::Unsealed => write!(
                f,
                "inventory file is unsealed: truncated or torn by an interrupted write"
            ),
            Self::Checksum { section } => {
                write!(f, "inventory {section} section failed its CRC-64 check")
            }
        }
    }
}

impl std::error::Error for CodecError {}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<WireError> for CodecError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

/// Appends the canonical encoding of a [`GroupKey`] to `out`.
///
/// Public so transports other than the inventory file (e.g. the
/// `pol-serve` wire protocol) can reuse the exact on-disk key encoding.
pub fn encode_group_key(key: &GroupKey, out: &mut Vec<u8>) {
    match key {
        GroupKey::Cell(c) => {
            out.push(0);
            put_varint(out, c.raw());
        }
        GroupKey::CellType(c, seg) => {
            out.push(1);
            put_varint(out, c.raw());
            out.push(seg.id());
        }
        GroupKey::CellRoute(c, o, d, seg) => {
            out.push(2);
            put_varint(out, c.raw());
            put_varint(out, *o as u64);
            put_varint(out, *d as u64);
            out.push(seg.id());
        }
    }
}

/// Decodes a [`GroupKey`], advancing `input` past it.
pub fn decode_group_key(input: &mut &[u8]) -> Result<GroupKey, WireError> {
    let (&tag, rest) = input.split_first().ok_or(WireError("key truncated"))?;
    *input = rest;
    let cell = CellIndex::from_raw(get_varint(input)?).map_err(|_| WireError("bad cell index"))?;
    let seg = |input: &mut &[u8]| -> Result<MarketSegment, WireError> {
        let (&id, rest) = input.split_first().ok_or(WireError("segment truncated"))?;
        *input = rest;
        MarketSegment::from_id(id).ok_or(WireError("bad segment id"))
    };
    match tag {
        0 => Ok(GroupKey::Cell(cell)),
        1 => Ok(GroupKey::CellType(cell, seg(input)?)),
        2 => {
            let o = get_varint(input)? as u16;
            let d = get_varint(input)? as u16;
            Ok(GroupKey::CellRoute(cell, o, d, seg(input)?))
        }
        _ => Err(WireError("bad key tag")),
    }
}

/// Appends the canonical encoding of a [`CellStats`] to `out`.
///
/// The encoding is deterministic (sketches with set semantics sort their
/// contents), so equal statistics always produce identical bytes — the
/// serving layer relies on this to compare summaries by encoding.
pub fn encode_cell_stats(s: &CellStats, out: &mut Vec<u8>) {
    put_varint(out, s.records);
    s.ships.encode(out);
    s.trips.encode(out);
    s.speed.encode(out);
    s.speed_q.encode(out);
    s.course.encode(out);
    s.course_bins.encode(out);
    s.heading.encode(out);
    s.heading_bins.encode(out);
    s.eto.encode(out);
    s.eto_q.encode(out);
    s.ata.encode(out);
    s.ata_q.encode(out);
    s.origins.encode(out);
    s.destinations.encode(out);
    s.transitions.encode(out);
}

/// Decodes a [`CellStats`], advancing `input` past it.
pub fn decode_cell_stats(input: &mut &[u8]) -> Result<CellStats, WireError> {
    Ok(CellStats {
        records: get_varint(input)?,
        ships: Wire::decode(input)?,
        trips: Wire::decode(input)?,
        speed: Wire::decode(input)?,
        speed_q: Wire::decode(input)?,
        course: Wire::decode(input)?,
        course_bins: Wire::decode(input)?,
        heading: Wire::decode(input)?,
        heading_bins: Wire::decode(input)?,
        eto: Wire::decode(input)?,
        eto_q: Wire::decode(input)?,
        ata: Wire::decode(input)?,
        ata_q: Wire::decode(input)?,
        origins: Wire::decode(input)?,
        destinations: Wire::decode(input)?,
        transitions: Wire::decode(input)?,
    })
}

/// Serializes an inventory to its complete file image (magic through
/// sealed footer).
pub fn to_bytes(inv: &Inventory) -> Vec<u8> {
    // Header section.
    let mut header = Vec::with_capacity(16);
    header.push(inv.resolution().level());
    put_varint(&mut header, inv.total_records());
    put_varint(&mut header, inv.len() as u64);

    // Entries section. Deterministic output: sort by key.
    let mut body = Vec::new();
    let mut entries: Vec<(&GroupKey, &CellStats)> = inv.iter().collect();
    entries.sort_by_key(|(k, _)| **k);
    for (k, s) in entries {
        encode_group_key(k, &mut body);
        encode_cell_stats(s, &mut body);
    }

    let mut out = Vec::with_capacity(MAGIC.len() + header.len() + body.len() + 52);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(header.len() as u32).to_le_bytes());
    out.extend_from_slice(&header);
    out.extend_from_slice(&crc64(&header).to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc64(&body).to_le_bytes());
    let file_len = out.len() as u64 + 16; // footer included
    out.extend_from_slice(&file_len.to_le_bytes());
    out.extend_from_slice(FOOTER_MAGIC);
    out
}

/// The validated sections of a version-2 file image: decoded header
/// fields, the raw entries bytes, and both section checksums.
struct Sections<'a> {
    resolution: Resolution,
    total_records: u64,
    declared_entries: usize,
    entries_bytes: &'a [u8],
    header_crc: u64,
    entries_crc: u64,
}

/// Structurally validates a file image: magic, footer seal, section
/// framing, and both CRCs. Does **not** decode the entries.
fn parse_sections(bytes: &[u8]) -> Result<Sections<'_>, CodecError> {
    // Magic first: "this is not an inventory at all" must win over
    // "this inventory is damaged" for arbitrary non-inventory input.
    if bytes.len() < MAGIC.len() {
        return Err(CodecError::BadHeader);
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        // A v1 file is recognisably an inventory but predates the
        // checksummed format; it still reads as BadHeader (there is no
        // way to prove its integrity), just not as random garbage.
        return Err(CodecError::BadHeader);
    }

    // Footer seal: the file must end with its own length and the seal
    // magic, proving the write that produced it ran to completion.
    if bytes.len() < MAGIC.len() + 16 {
        return Err(CodecError::Unsealed);
    }
    let seal_at = bytes.len() - FOOTER_MAGIC.len();
    if &bytes[seal_at..] != FOOTER_MAGIC {
        return Err(CodecError::Unsealed);
    }
    let len_at = seal_at - 8;
    let recorded = u64::from_le_bytes(
        bytes[len_at..seal_at]
            .try_into()
            .map_err(|_| CodecError::Unsealed)?,
    );
    if recorded != bytes.len() as u64 {
        return Err(CodecError::Unsealed);
    }

    // Header section.
    let mut at = MAGIC.len();
    let take = |at: &mut usize, n: usize| -> Result<&[u8], CodecError> {
        let end = at.checked_add(n).ok_or(CodecError::Unsealed)?;
        if end > len_at {
            return Err(CodecError::Unsealed);
        }
        let s = &bytes[*at..end];
        *at = end;
        Ok(s)
    };
    let header_len = u32::from_le_bytes(
        take(&mut at, 4)?
            .try_into()
            .map_err(|_| CodecError::Unsealed)?,
    ) as usize;
    let header = take(&mut at, header_len)?;
    let header_crc = u64::from_le_bytes(
        take(&mut at, 8)?
            .try_into()
            .map_err(|_| CodecError::Unsealed)?,
    );
    if crc64(header) != header_crc {
        return Err(CodecError::Checksum { section: "header" });
    }
    let mut h = header;
    let (&res_raw, rest) = h.split_first().ok_or(CodecError::BadHeader)?;
    h = rest;
    let resolution = Resolution::new(res_raw).ok_or(CodecError::BadHeader)?;
    let total_records = get_varint(&mut h).map_err(CodecError::Wire)?;
    let declared_entries = get_varint(&mut h).map_err(CodecError::Wire)? as usize;
    if !h.is_empty() {
        return Err(CodecError::Wire(WireError("trailing header bytes")));
    }

    // Entries section.
    let entries_len = u64::from_le_bytes(
        take(&mut at, 8)?
            .try_into()
            .map_err(|_| CodecError::Unsealed)?,
    );
    let entries_len = usize::try_from(entries_len).map_err(|_| CodecError::Unsealed)?;
    let entries_bytes = take(&mut at, entries_len)?;
    let entries_crc = u64::from_le_bytes(
        take(&mut at, 8)?
            .try_into()
            .map_err(|_| CodecError::Unsealed)?,
    );
    if at != len_at {
        return Err(CodecError::Unsealed);
    }
    if crc64(entries_bytes) != entries_crc {
        return Err(CodecError::Checksum { section: "entries" });
    }

    // Hostile-input guard: the declared entry count must be achievable
    // in the bytes that actually follow, otherwise a corrupt (or
    // malicious) header could make us allocate gigabytes before the
    // first decode error. Every entry is at least MIN_ENTRY_BYTES long.
    if declared_entries > entries_bytes.len() / MIN_ENTRY_BYTES {
        return Err(CodecError::Wire(WireError("entry count exceeds buffer")));
    }

    Ok(Sections {
        resolution,
        total_records,
        declared_entries,
        entries_bytes,
        header_crc,
        entries_crc,
    })
}

/// Deserializes an inventory from a complete file image.
pub fn from_bytes(bytes: &[u8]) -> Result<Inventory, CodecError> {
    let sections = parse_sections(bytes)?;
    let mut input = sections.entries_bytes;
    let mut entries = FxHashMap::default();
    entries.reserve(sections.declared_entries);
    for _ in 0..sections.declared_entries {
        let key = decode_group_key(&mut input)?;
        let stats = decode_cell_stats(&mut input)?;
        entries.insert(key, stats);
    }
    if !input.is_empty() {
        return Err(CodecError::Wire(WireError("trailing bytes")));
    }
    Ok(Inventory::from_entries(
        sections.resolution,
        entries,
        sections.total_records,
    ))
}

/// What [`verify`] found in a structurally sound inventory file.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// Total file length in bytes, as recorded in the sealed footer.
    pub file_len: u64,
    /// The header section's CRC-64 (verified against its bytes).
    pub header_crc: u64,
    /// The entries section's CRC-64 (verified against its bytes).
    pub entries_crc: u64,
    /// Grid resolution level of the stored inventory.
    pub resolution: u8,
    /// Input records summarised by the stored inventory.
    pub total_records: u64,
    /// Group-identifier entries decoded from the entries section.
    pub entries: usize,
}

/// Audits a file image end to end: footer seal, section CRCs, and a full
/// decode of every entry (catching logical corruption a checksum of
/// buggy bytes would bless). Returns what was found; any failure is the
/// same typed [`CodecError`] a [`load`] would produce.
pub fn verify_bytes(bytes: &[u8]) -> Result<VerifyReport, CodecError> {
    let sections = parse_sections(bytes)?;
    let inv = from_bytes(bytes)?;
    Ok(VerifyReport {
        file_len: bytes.len() as u64,
        header_crc: sections.header_crc,
        entries_crc: sections.entries_crc,
        resolution: sections.resolution.level(),
        total_records: sections.total_records,
        entries: inv.len(),
    })
}

/// Audits an inventory file on disk (see [`verify_bytes`]).
pub fn verify(path: &Path) -> Result<VerifyReport, CodecError> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    verify_bytes(&buf)
}

/// Writes an inventory's complete file image to a writer.
pub fn write_to<W: Write>(inv: &Inventory, mut w: W) -> io::Result<()> {
    w.write_all(&to_bytes(inv))
}

/// Reads an inventory from a reader.
pub fn read_from<R: Read>(mut r: R) -> Result<Inventory, CodecError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    from_bytes(&buf)
}

/// Distinguishes temp files of concurrent saves within one process.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_sibling(path: &Path) -> PathBuf {
    let stem = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "inventory".to_string());
    let unique = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    path.with_file_name(format!(".{stem}.tmp.{}.{unique}", std::process::id()))
}

fn chaos_io(what: &str) -> io::Error {
    io::Error::other(format!("chaos: injected {what} failure"))
}

/// Saves an inventory to a file, crash-safely: the bytes are written to
/// a sibling temp file, fsynced, atomically renamed into place, and the
/// directory entry is fsynced. Readers of `path` observe either the old
/// complete file or the new complete file, never a torn one. On any
/// failure the temp file is removed and `path` is untouched.
pub fn save(inv: &Inventory, path: &Path) -> io::Result<()> {
    save_bytes(&to_bytes(inv), path)
}

/// Crash-safely writes a complete file image to `path` using the same
/// temp-sibling + fsync + atomic-rename discipline as [`save`]. Shared
/// by every snapshot format (v2 here, columnar v3 in
/// [`columnar::save`]) so the durability guarantees — and the
/// `codec.save.*` chaos failpoints — cover both.
pub fn save_bytes(bytes: &[u8], path: &Path) -> io::Result<()> {
    let tmp = temp_sibling(path);
    let result = write_rename_sync(bytes, &tmp, path);
    if result.is_err() {
        // Failure must not leave a half-written sibling behind.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

fn write_rename_sync(bytes: &[u8], tmp: &Path, path: &Path) -> io::Result<()> {
    let mut f = std::fs::File::create(tmp)?;
    if pol_chaos::fire("codec.save.write") {
        return Err(chaos_io("write"));
    }
    f.write_all(bytes)?;
    // fsync before rename: the rename must never publish a name whose
    // bytes are still only in the page cache.
    f.sync_all()?;
    drop(f);
    if pol_chaos::fire("codec.save.rename") {
        return Err(chaos_io("rename"));
    }
    std::fs::rename(tmp, path)?;
    // Make the rename itself durable by fsyncing the directory entry.
    // Best-effort: not every platform/filesystem lets a directory be
    // opened for syncing, and the data itself is already safe on disk.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Loads an inventory from a file, verifying the footer seal and every
/// section checksum before trusting a byte of it.
pub fn load(path: &Path) -> Result<Inventory, CodecError> {
    read_from(io::BufReader::new(std::fs::File::open(path)?))
}

/// Which snapshot format a file's leading magic bytes announce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotFormat {
    /// Row-oriented POLINV2 (full decode on load).
    V2,
    /// Columnar POLINV3 (mmap-friendly, lazily decoded).
    V3,
    /// POLMAN1 delta-chain manifest (base + deltas, merged on load).
    Manifest,
}

/// Identifies the snapshot format from a byte prefix (at least 8
/// bytes). `None` when the prefix names no known format.
pub fn sniff_format(prefix: &[u8]) -> Option<SnapshotFormat> {
    if prefix.len() < MAGIC.len() {
        return None;
    }
    match &prefix[..MAGIC.len()] {
        m if m == MAGIC => Some(SnapshotFormat::V2),
        m if m == columnar::MAGIC_V3 => Some(SnapshotFormat::V3),
        m if m == manifest::MAGIC_MANIFEST => Some(SnapshotFormat::Manifest),
        _ => None,
    }
}

/// Reads a file's magic and identifies its snapshot format.
pub fn sniff_file(path: &Path) -> Result<Option<SnapshotFormat>, io::Error> {
    let mut magic = [0u8; 8];
    let mut f = std::fs::File::open(path)?;
    match f.read_exact(&mut magic) {
        Ok(()) => Ok(sniff_format(&magic)),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(None),
        Err(e) => Err(e),
    }
}

/// Loads an inventory from a file of either supported format, sniffing
/// the magic first — the transparent path for tools that only need a
/// heap [`Inventory`] and do not care how it was stored.
pub fn load_any(path: &Path) -> Result<Inventory, CodecError> {
    match sniff_file(path)? {
        Some(SnapshotFormat::V3) => columnar::load(path),
        Some(SnapshotFormat::Manifest) => Ok(manifest::load_chain(path)?.0),
        // Unknown magic still goes through the v2 loader so the error
        // is the same typed BadHeader a v2 load would produce.
        _ => load(path),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{CellPoint, TripPoint};
    use pol_ais::types::Mmsi;
    use pol_geo::LatLon;
    use pol_hexgrid::cell_at;

    fn sample_inventory(n: usize) -> Inventory {
        let res = Resolution::new(6).unwrap();
        let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
        for i in 0..n {
            let pos = LatLon::new(10.0 + (i % 50) as f64, (i % 120) as f64).unwrap();
            let cell = cell_at(pos, res);
            let cp = CellPoint {
                point: TripPoint {
                    mmsi: Mmsi(100 + (i % 9) as u32),
                    timestamp: i as i64,
                    pos,
                    sog_knots: Some(8.0 + (i % 10) as f64),
                    cog_deg: Some((i * 17 % 360) as f64),
                    heading_deg: Some((i * 13 % 360) as f64),
                    segment: MarketSegment::from_id((i % 6) as u8).unwrap(),
                    trip_id: (i % 12) as u64,
                    origin: (i % 4) as u16,
                    dest: (i % 5) as u16,
                    eto_secs: i as i64 * 60,
                    ata_secs: (n - i) as i64 * 60,
                },
                cell,
                next_cell: (i % 3 == 0).then(|| {
                    cell_at(
                        LatLon::new(10.5 + (i % 50) as f64, (i % 120) as f64).unwrap(),
                        res,
                    )
                }),
            };
            for key in [
                GroupKey::Cell(cell),
                GroupKey::CellType(cell, cp.point.segment),
                GroupKey::CellRoute(cell, cp.point.origin, cp.point.dest, cp.point.segment),
            ] {
                entries
                    .entry(key)
                    .or_insert_with(|| CellStats::new(0.02, 8))
                    .observe(&cp);
            }
        }
        Inventory::from_entries(res, entries, n as u64)
    }

    #[test]
    fn round_trip_preserves_everything_observable() {
        let inv = sample_inventory(500);
        let bytes = to_bytes(&inv);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.resolution(), inv.resolution());
        assert_eq!(back.total_records(), inv.total_records());
        assert_eq!(back.len(), inv.len());
        for (key, stats) in inv.iter() {
            let b = back.get(key).unwrap_or_else(|| panic!("missing {key:?}"));
            assert_eq!(b.records, stats.records);
            assert_eq!(b.ships.estimate(), stats.ships.estimate());
            assert_eq!(b.trips.estimate(), stats.trips.estimate());
            assert_eq!(b.speed.mean(), stats.speed.mean());
            assert_eq!(b.course_bins.counts(), stats.course_bins.counts());
            assert_eq!(b.top_destinations(3), stats.top_destinations(3));
            let mut bq = b.speed_q.clone();
            let mut sq = stats.speed_q.clone();
            assert_eq!(bq.quantile(0.5), sq.quantile(0.5));
        }
        let (ca, cb) = (inv.coverage(), back.coverage());
        assert_eq!(ca, cb);
    }

    #[test]
    fn deterministic_bytes() {
        let a = to_bytes(&sample_inventory(300));
        let b = to_bytes(&sample_inventory(300));
        assert_eq!(a, b, "serialization must be canonical");
    }

    #[test]
    fn file_image_is_sealed() {
        let bytes = to_bytes(&sample_inventory(20));
        assert_eq!(&bytes[..8], MAGIC);
        assert_eq!(&bytes[bytes.len() - 8..], FOOTER_MAGIC);
        let len = u64::from_le_bytes(bytes[bytes.len() - 16..bytes.len() - 8].try_into().unwrap());
        assert_eq!(len, bytes.len() as u64);
    }

    #[test]
    fn rejects_garbage_truncation_and_extension() {
        assert!(matches!(
            from_bytes(b"not an inventory"),
            Err(CodecError::BadHeader)
        ));
        let bytes = to_bytes(&sample_inventory(50));
        let truncated = &bytes[..bytes.len() - 10];
        assert!(matches!(from_bytes(truncated), Err(CodecError::Unsealed)));
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(from_bytes(&extended), Err(CodecError::Unsealed)));
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        // The acceptance property in miniature (the full sweep is a
        // proptest): flip one bit anywhere, get a typed error.
        let bytes = to_bytes(&sample_inventory(10));
        for byte in (0..bytes.len()).step_by(11) {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 1 << (byte % 8);
            assert!(
                from_bytes(&corrupt).is_err(),
                "bit flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn body_corruption_reports_the_entries_section() {
        let bytes = to_bytes(&sample_inventory(50));
        // Flip a bit well inside the entries section (past magic +
        // header, before the trailer).
        let mut corrupt = bytes.clone();
        let mid = bytes.len() / 2;
        corrupt[mid] ^= 0x10;
        match from_bytes(&corrupt).err() {
            Some(CodecError::Checksum { section: "entries" }) => {}
            other => panic!("expected entries checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn min_entry_bound_is_sound() {
        // The allocation guard divides by MIN_ENTRY_BYTES, so the bound
        // must never exceed the true minimum entry size.
        let mut buf = Vec::new();
        let smallest_key = GroupKey::Cell(cell_at(
            LatLon::new(0.0, 0.0).unwrap(),
            Resolution::new(0).unwrap(),
        ));
        encode_group_key(&smallest_key, &mut buf);
        encode_cell_stats(&CellStats::new(0.02, 8), &mut buf);
        assert!(
            buf.len() >= MIN_ENTRY_BYTES,
            "empty entry is {} bytes, below MIN_ENTRY_BYTES={MIN_ENTRY_BYTES}",
            buf.len()
        );
    }

    /// Builds a structurally valid v2 image around explicit header and
    /// entries bytes (CRCs and footer computed for the caller, so tests
    /// can forge *semantically* hostile but *checksum-valid* files).
    fn forge_image(header: &[u8], entries: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(header.len() as u32).to_le_bytes());
        out.extend_from_slice(header);
        out.extend_from_slice(&crc64(header).to_le_bytes());
        out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        out.extend_from_slice(entries);
        out.extend_from_slice(&crc64(entries).to_le_bytes());
        let file_len = out.len() as u64 + 16;
        out.extend_from_slice(&file_len.to_le_bytes());
        out.extend_from_slice(FOOTER_MAGIC);
        out
    }

    #[test]
    fn hostile_entry_count_rejected_before_allocating() {
        // A checksum-valid header declaring 2^60 entries over a tiny
        // body must fail fast with a typed error instead of reserving a
        // huge map (CRCs prove integrity, not honesty).
        let mut header = vec![6u8]; // resolution
        put_varint(&mut header, 0); // total records
        put_varint(&mut header, 1 << 60); // declared entry count
        let bytes = forge_image(&header, &[0u8; 32]);
        match from_bytes(&bytes).err() {
            Some(CodecError::Wire(WireError(msg))) => {
                assert!(msg.contains("entry count"), "unexpected error: {msg}")
            }
            other => panic!("expected entry-count error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_headers_rejected() {
        // Empty input, short input, wrong magic, v1 magic, truncated
        // after magic, bad resolution byte: all typed, never panics.
        assert!(matches!(from_bytes(&[]), Err(CodecError::BadHeader)));
        assert!(matches!(
            from_bytes(&MAGIC[..4]),
            Err(CodecError::BadHeader)
        ));
        let mut wrong_magic = MAGIC.to_vec();
        wrong_magic[0] = b'X';
        wrong_magic.push(6);
        assert!(matches!(
            from_bytes(&wrong_magic),
            Err(CodecError::BadHeader)
        ));
        let mut v1 = MAGIC_V1.to_vec();
        v1.push(6);
        assert!(matches!(from_bytes(&v1), Err(CodecError::BadHeader)));
        assert!(matches!(from_bytes(&MAGIC[..]), Err(CodecError::Unsealed)));
        let bad_res = forge_image(&[99], &[]); // resolution out of range
        assert!(matches!(from_bytes(&bad_res), Err(CodecError::BadHeader)));
    }

    #[test]
    fn truncated_at_every_offset_is_typed_error() {
        let bytes = to_bytes(&sample_inventory(50));
        // Chop the stream at many offsets: every prefix must decode to a
        // typed error (BadHeader inside the magic, Unsealed after).
        for cut in (0..bytes.len() - 1).step_by(7) {
            match from_bytes(&bytes[..cut]).err() {
                Some(CodecError::BadHeader) | Some(CodecError::Unsealed) => {}
                other => panic!("prefix of {cut} bytes: expected typed error, got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_inventory_round_trips() {
        let inv = Inventory::from_entries(Resolution::new(7).unwrap(), FxHashMap::default(), 0);
        let back = from_bytes(&to_bytes(&inv)).unwrap();
        assert_eq!(back.len(), 0);
        assert_eq!(back.resolution().level(), 7);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("pol-codec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inv.pol");
        let inv = sample_inventory(100);
        save(&inv, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.len(), inv.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_overwrites_atomically_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join("pol-codec-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inv.pol");
        save(&sample_inventory(30), &path).unwrap();
        let first_len = std::fs::metadata(&path).unwrap().len();
        save(&sample_inventory(120), &path).unwrap();
        let second_len = std::fs::metadata(&path).unwrap().len();
        assert!(second_len > first_len);
        assert!(load(&path).is_ok());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_save_cleans_up_temp_and_preserves_target() {
        // Force a rename failure without failpoints: renaming a file
        // over an existing *directory* fails on every platform.
        let dir = std::env::temp_dir().join("pol-codec-failpath-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(dir.join("target.pol")).unwrap();
        let err = save(&sample_inventory(10), &dir.join("target.pol"));
        assert!(err.is_err(), "rename onto a directory must fail");
        assert!(
            dir.join("target.pol").is_dir(),
            "failed save must not clobber the destination"
        );
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_passes_fresh_and_flags_flipped() {
        let inv = sample_inventory(80);
        let bytes = to_bytes(&inv);
        let report = verify_bytes(&bytes).unwrap();
        assert_eq!(report.entries, inv.len());
        assert_eq!(report.total_records, inv.total_records());
        assert_eq!(report.resolution, inv.resolution().level());
        assert_eq!(report.file_len, bytes.len() as u64);

        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x01;
        assert!(verify_bytes(&corrupt).is_err());
    }

    #[test]
    fn compact_relative_to_records() {
        // The "compact data model" claim: serialized size per input record
        // shrinks as records concentrate in cells.
        let inv = sample_inventory(5_000);
        let bytes = to_bytes(&inv);
        // 5 000 records × ~64 B raw ≈ 320 kB; the inventory should not be
        // wildly larger than the raw data at this tiny scale and becomes
        // far smaller at real scale (cells saturate, records keep growing).
        assert!(
            bytes.len() < 5_000 * 200,
            "serialized {} bytes",
            bytes.len()
        );
    }
}
