//! Versioned binary persistence for the inventory.
//!
//! Layout: magic `POLINV1\0`, resolution byte, total-record varint, entry
//! count varint, then per entry a tagged [`GroupKey`] followed by the
//! [`CellStats`] sketches in fixed order (using `pol-sketch`'s wire
//! encodings). Everything round-trips by property test.

use crate::features::{CellStats, GroupKey};
use crate::inventory::Inventory;
use pol_ais::types::MarketSegment;
use pol_hexgrid::{CellIndex, Resolution};
use pol_sketch::hash::FxHashMap;
use pol_sketch::wire::{get_varint, put_varint, Wire, WireError};
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

/// File magic.
pub const MAGIC: &[u8; 8] = b"POLINV1\0";

/// A conservative lower bound on the serialized size of one inventory
/// entry (tagged key + all sixteen statistics in their empty form). An
/// empty [`CellStats`] alone encodes to over 70 bytes (checked by a
/// regression test); 64 keeps headroom for future slimmer encodings while
/// still bounding allocation to `input_len / 64` entries.
pub const MIN_ENTRY_BYTES: usize = 64;

/// Errors from loading an inventory.
#[derive(Debug)]
pub enum CodecError {
    /// I/O failure.
    Io(io::Error),
    /// Structural failure.
    Wire(WireError),
    /// Wrong magic / unsupported version.
    BadHeader,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "inventory io error: {e}"),
            Self::Wire(e) => write!(f, "inventory decode error: {e}"),
            Self::BadHeader => write!(f, "not a patterns-of-life inventory file"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<WireError> for CodecError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

/// Appends the canonical encoding of a [`GroupKey`] to `out`.
///
/// Public so transports other than the inventory file (e.g. the
/// `pol-serve` wire protocol) can reuse the exact on-disk key encoding.
pub fn encode_group_key(key: &GroupKey, out: &mut Vec<u8>) {
    match key {
        GroupKey::Cell(c) => {
            out.push(0);
            put_varint(out, c.raw());
        }
        GroupKey::CellType(c, seg) => {
            out.push(1);
            put_varint(out, c.raw());
            out.push(seg.id());
        }
        GroupKey::CellRoute(c, o, d, seg) => {
            out.push(2);
            put_varint(out, c.raw());
            put_varint(out, *o as u64);
            put_varint(out, *d as u64);
            out.push(seg.id());
        }
    }
}

/// Decodes a [`GroupKey`], advancing `input` past it.
pub fn decode_group_key(input: &mut &[u8]) -> Result<GroupKey, WireError> {
    let (&tag, rest) = input.split_first().ok_or(WireError("key truncated"))?;
    *input = rest;
    let cell = CellIndex::from_raw(get_varint(input)?).map_err(|_| WireError("bad cell index"))?;
    let seg = |input: &mut &[u8]| -> Result<MarketSegment, WireError> {
        let (&id, rest) = input.split_first().ok_or(WireError("segment truncated"))?;
        *input = rest;
        MarketSegment::from_id(id).ok_or(WireError("bad segment id"))
    };
    match tag {
        0 => Ok(GroupKey::Cell(cell)),
        1 => Ok(GroupKey::CellType(cell, seg(input)?)),
        2 => {
            let o = get_varint(input)? as u16;
            let d = get_varint(input)? as u16;
            Ok(GroupKey::CellRoute(cell, o, d, seg(input)?))
        }
        _ => Err(WireError("bad key tag")),
    }
}

/// Appends the canonical encoding of a [`CellStats`] to `out`.
///
/// The encoding is deterministic (sketches with set semantics sort their
/// contents), so equal statistics always produce identical bytes — the
/// serving layer relies on this to compare summaries by encoding.
pub fn encode_cell_stats(s: &CellStats, out: &mut Vec<u8>) {
    put_varint(out, s.records);
    s.ships.encode(out);
    s.trips.encode(out);
    s.speed.encode(out);
    s.speed_q.encode(out);
    s.course.encode(out);
    s.course_bins.encode(out);
    s.heading.encode(out);
    s.heading_bins.encode(out);
    s.eto.encode(out);
    s.eto_q.encode(out);
    s.ata.encode(out);
    s.ata_q.encode(out);
    s.origins.encode(out);
    s.destinations.encode(out);
    s.transitions.encode(out);
}

/// Decodes a [`CellStats`], advancing `input` past it.
pub fn decode_cell_stats(input: &mut &[u8]) -> Result<CellStats, WireError> {
    Ok(CellStats {
        records: get_varint(input)?,
        ships: Wire::decode(input)?,
        trips: Wire::decode(input)?,
        speed: Wire::decode(input)?,
        speed_q: Wire::decode(input)?,
        course: Wire::decode(input)?,
        course_bins: Wire::decode(input)?,
        heading: Wire::decode(input)?,
        heading_bins: Wire::decode(input)?,
        eto: Wire::decode(input)?,
        eto_q: Wire::decode(input)?,
        ata: Wire::decode(input)?,
        ata_q: Wire::decode(input)?,
        origins: Wire::decode(input)?,
        destinations: Wire::decode(input)?,
        transitions: Wire::decode(input)?,
    })
}

/// Serializes an inventory to bytes.
pub fn to_bytes(inv: &Inventory) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(inv.resolution().level());
    put_varint(&mut out, inv.total_records());
    put_varint(&mut out, inv.len() as u64);
    // Deterministic output: sort by key.
    let mut entries: Vec<(&GroupKey, &CellStats)> = inv.iter().collect();
    entries.sort_by_key(|(k, _)| **k);
    for (k, s) in entries {
        encode_group_key(k, &mut out);
        encode_cell_stats(s, &mut out);
    }
    out
}

/// Deserializes an inventory from bytes.
pub fn from_bytes(bytes: &[u8]) -> Result<Inventory, CodecError> {
    let mut input = bytes;
    if input.len() < MAGIC.len() + 1 || &input[..MAGIC.len()] != MAGIC {
        return Err(CodecError::BadHeader);
    }
    input = &input[MAGIC.len()..];
    let (&res_raw, rest) = input.split_first().ok_or(CodecError::BadHeader)?;
    input = rest;
    let resolution = Resolution::new(res_raw).ok_or(CodecError::BadHeader)?;
    let total_records = get_varint(&mut input).map_err(CodecError::Wire)?;
    let n = get_varint(&mut input).map_err(CodecError::Wire)? as usize;
    // Hostile-input guard: the declared entry count must be achievable in
    // the bytes that actually follow, otherwise a corrupt (or malicious)
    // header could make us allocate gigabytes before the first decode
    // error. Every entry is at least MIN_ENTRY_BYTES long, so anything
    // larger than remaining/MIN_ENTRY_BYTES is provably a lie.
    if n > input.len() / MIN_ENTRY_BYTES {
        return Err(CodecError::Wire(WireError("entry count exceeds buffer")));
    }
    let mut entries = FxHashMap::default();
    entries.reserve(n);
    for _ in 0..n {
        let key = decode_group_key(&mut input)?;
        let stats = decode_cell_stats(&mut input)?;
        entries.insert(key, stats);
    }
    if !input.is_empty() {
        return Err(CodecError::Wire(WireError("trailing bytes")));
    }
    Ok(Inventory::from_entries(resolution, entries, total_records))
}

/// Writes an inventory to a writer.
pub fn write_to<W: Write>(inv: &Inventory, mut w: W) -> io::Result<()> {
    w.write_all(&to_bytes(inv))
}

/// Reads an inventory from a reader.
pub fn read_from<R: Read>(mut r: R) -> Result<Inventory, CodecError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    from_bytes(&buf)
}

/// Saves an inventory to a file.
pub fn save(inv: &Inventory, path: &Path) -> io::Result<()> {
    write_to(inv, io::BufWriter::new(std::fs::File::create(path)?))
}

/// Loads an inventory from a file.
pub fn load(path: &Path) -> Result<Inventory, CodecError> {
    read_from(io::BufReader::new(std::fs::File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{CellPoint, TripPoint};
    use pol_ais::types::Mmsi;
    use pol_geo::LatLon;
    use pol_hexgrid::cell_at;

    fn sample_inventory(n: usize) -> Inventory {
        let res = Resolution::new(6).unwrap();
        let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
        for i in 0..n {
            let pos = LatLon::new(10.0 + (i % 50) as f64, (i % 120) as f64).unwrap();
            let cell = cell_at(pos, res);
            let cp = CellPoint {
                point: TripPoint {
                    mmsi: Mmsi(100 + (i % 9) as u32),
                    timestamp: i as i64,
                    pos,
                    sog_knots: Some(8.0 + (i % 10) as f64),
                    cog_deg: Some((i * 17 % 360) as f64),
                    heading_deg: Some((i * 13 % 360) as f64),
                    segment: MarketSegment::from_id((i % 6) as u8).unwrap(),
                    trip_id: (i % 12) as u64,
                    origin: (i % 4) as u16,
                    dest: (i % 5) as u16,
                    eto_secs: i as i64 * 60,
                    ata_secs: (n - i) as i64 * 60,
                },
                cell,
                next_cell: (i % 3 == 0).then(|| {
                    cell_at(
                        LatLon::new(10.5 + (i % 50) as f64, (i % 120) as f64).unwrap(),
                        res,
                    )
                }),
            };
            for key in [
                GroupKey::Cell(cell),
                GroupKey::CellType(cell, cp.point.segment),
                GroupKey::CellRoute(cell, cp.point.origin, cp.point.dest, cp.point.segment),
            ] {
                entries
                    .entry(key)
                    .or_insert_with(|| CellStats::new(0.02, 8))
                    .observe(&cp);
            }
        }
        Inventory::from_entries(res, entries, n as u64)
    }

    #[test]
    fn round_trip_preserves_everything_observable() {
        let inv = sample_inventory(500);
        let bytes = to_bytes(&inv);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.resolution(), inv.resolution());
        assert_eq!(back.total_records(), inv.total_records());
        assert_eq!(back.len(), inv.len());
        for (key, stats) in inv.iter() {
            let b = back.get(key).unwrap_or_else(|| panic!("missing {key:?}"));
            assert_eq!(b.records, stats.records);
            assert_eq!(b.ships.estimate(), stats.ships.estimate());
            assert_eq!(b.trips.estimate(), stats.trips.estimate());
            assert_eq!(b.speed.mean(), stats.speed.mean());
            assert_eq!(b.course_bins.counts(), stats.course_bins.counts());
            assert_eq!(b.top_destinations(3), stats.top_destinations(3));
            let mut bq = b.speed_q.clone();
            let mut sq = stats.speed_q.clone();
            assert_eq!(bq.quantile(0.5), sq.quantile(0.5));
        }
        let (ca, cb) = (inv.coverage(), back.coverage());
        assert_eq!(ca, cb);
    }

    #[test]
    fn deterministic_bytes() {
        let a = to_bytes(&sample_inventory(300));
        let b = to_bytes(&sample_inventory(300));
        assert_eq!(a, b, "serialization must be canonical");
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(matches!(
            from_bytes(b"not an inventory"),
            Err(CodecError::BadHeader)
        ));
        let bytes = to_bytes(&sample_inventory(50));
        let truncated = &bytes[..bytes.len() - 10];
        assert!(from_bytes(truncated).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(from_bytes(&extended).is_err());
    }

    #[test]
    fn min_entry_bound_is_sound() {
        // The allocation guard divides by MIN_ENTRY_BYTES, so the bound
        // must never exceed the true minimum entry size.
        let mut buf = Vec::new();
        let smallest_key = GroupKey::Cell(cell_at(
            LatLon::new(0.0, 0.0).unwrap(),
            Resolution::new(0).unwrap(),
        ));
        encode_group_key(&smallest_key, &mut buf);
        encode_cell_stats(&CellStats::new(0.02, 8), &mut buf);
        assert!(
            buf.len() >= MIN_ENTRY_BYTES,
            "empty entry is {} bytes, below MIN_ENTRY_BYTES={MIN_ENTRY_BYTES}",
            buf.len()
        );
    }

    #[test]
    fn hostile_entry_count_rejected_before_allocating() {
        // A header declaring 2^60 entries with a near-empty body must fail
        // fast with a typed error instead of reserving a huge map.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(6); // resolution
        put_varint(&mut bytes, 0); // total records
        put_varint(&mut bytes, 1 << 60); // declared entry count
        bytes.extend_from_slice(&[0u8; 32]); // far fewer bytes than declared
        match from_bytes(&bytes).err() {
            Some(CodecError::Wire(WireError(msg))) => {
                assert!(msg.contains("entry count"), "unexpected error: {msg}")
            }
            other => panic!("expected entry-count error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_headers_rejected() {
        // Empty input, short input, wrong magic, truncated after magic,
        // bad resolution byte: all must be typed errors, never panics.
        assert!(matches!(from_bytes(&[]), Err(CodecError::BadHeader)));
        assert!(matches!(
            from_bytes(&MAGIC[..4]),
            Err(CodecError::BadHeader)
        ));
        let mut wrong_magic = MAGIC.to_vec();
        wrong_magic[0] = b'X';
        wrong_magic.push(6);
        assert!(matches!(
            from_bytes(&wrong_magic),
            Err(CodecError::BadHeader)
        ));
        assert!(matches!(from_bytes(&MAGIC[..]), Err(CodecError::BadHeader)));
        let mut bad_res = MAGIC.to_vec();
        bad_res.push(99); // resolution out of range
        assert!(matches!(from_bytes(&bad_res), Err(CodecError::BadHeader)));
    }

    #[test]
    fn truncated_mid_entry_is_typed_error() {
        let bytes = to_bytes(&sample_inventory(50));
        // Chop the stream at many offsets: every prefix must decode to a
        // typed error (or, for the empty-file prefix, BadHeader).
        for cut in (0..bytes.len() - 1).step_by(7) {
            assert!(
                from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes unexpectedly decoded"
            );
        }
    }

    #[test]
    fn empty_inventory_round_trips() {
        let inv = Inventory::from_entries(Resolution::new(7).unwrap(), FxHashMap::default(), 0);
        let back = from_bytes(&to_bytes(&inv)).unwrap();
        assert_eq!(back.len(), 0);
        assert_eq!(back.resolution().level(), 7);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("pol-codec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inv.pol");
        let inv = sample_inventory(100);
        save(&inv, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.len(), inv.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_relative_to_records() {
        // The "compact data model" claim: serialized size per input record
        // shrinks as records concentrate in cells.
        let inv = sample_inventory(5_000);
        let bytes = to_bytes(&inv);
        // 5 000 records × ~64 B raw ≈ 320 kB; the inventory should not be
        // wildly larger than the raw data at this tiny scale and becomes
        // far smaller at real scale (cells saturate, records keep growing).
        assert!(
            bytes.len() < 5_000 * 200,
            "serialized {} bytes",
            bytes.len()
        );
    }
}
