//! The end-to-end pipeline driver (Figures 2 & 3 of the paper).

use crate::clean::{clean_and_enrich, CleanReport};
use crate::config::PipelineConfig;
use crate::error::PipelineError;
use crate::features::build_group_stats;
use crate::inventory::Inventory;
use crate::project::project;
use crate::records::PortSite;
use crate::trips::extract_trips;
use pol_ais::{PositionReport, StaticReport};
use pol_engine::{Dataset, Engine};

/// Per-stage record counts — the machine-checkable analogue of the
/// Figure-2 pictorial walkthrough.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageCounts {
    /// Raw input records.
    pub raw: u64,
    /// After cleaning + commercial enrichment (§3.3.1).
    pub cleaned: u64,
    /// After trip-semantics extraction (§3.3.2) — records outside any trip
    /// are excluded here.
    pub with_trips: u64,
    /// After grid projection (§3.3.3); equals `with_trips` (projection is
    /// total) and is kept for symmetry with the paper's flow diagram.
    pub projected: u64,
    /// Group identifiers materialised (§3.3.4).
    pub group_entries: u64,
}

/// Everything a pipeline run produces.
pub struct PipelineOutput {
    /// The global inventory.
    pub inventory: Inventory,
    /// Stage-by-stage record accounting.
    pub counts: StageCounts,
    /// Cleaning detail (defect classes).
    pub clean_report: CleanReport,
}

/// Runs the full methodology over pre-partitioned positional reports
/// (partitioning by vessel is the natural input shape; any partitioning
/// works — the pipeline re-shuffles by vessel in the cleaning stage).
pub fn run(
    engine: &Engine,
    positions: Vec<Vec<PositionReport>>,
    statics: &[StaticReport],
    ports: &[PortSite],
    cfg: &PipelineConfig,
) -> Result<PipelineOutput, PipelineError> {
    let raw = Dataset::from_partitions(positions);
    let raw_count = raw.count() as u64;

    let (cleaned, clean_report) = clean_and_enrich(engine, raw, statics, cfg)?;
    let cleaned_count = cleaned.count() as u64;

    let trips = extract_trips(engine, cleaned, ports, cfg)?;
    let with_trips = trips.count() as u64;

    let projected = project(engine, trips, cfg)?;
    let projected_count = projected.count() as u64;

    let stats = build_group_stats(engine, projected, cfg)?;
    let group_entries = stats.count() as u64;

    let inventory = Inventory::from_dataset(cfg.resolution, stats, projected_count);

    Ok(PipelineOutput {
        inventory,
        counts: StageCounts {
            raw: raw_count,
            cleaned: cleaned_count,
            with_trips,
            projected: projected_count,
            group_entries,
        },
        clean_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::GroupingSet;
    use pol_fleetsim::scenario::{generate, ScenarioConfig};
    use pol_fleetsim::WORLD_PORTS;

    /// Adapts the simulator's port table to pipeline port sites.
    fn port_sites(radius_km: f64) -> Vec<PortSite> {
        WORLD_PORTS
            .iter()
            .enumerate()
            .map(|(i, p)| PortSite {
                id: i as u16,
                name: p.name.to_string(),
                pos: p.pos(),
                radius_km,
            })
            .collect()
    }

    fn run_tiny() -> PipelineOutput {
        let ds = generate(&ScenarioConfig::tiny());
        let engine = Engine::new(2);
        let cfg = PipelineConfig::default();
        run(
            &engine,
            ds.positions,
            &ds.statics,
            &port_sites(cfg.port_radius_km),
            &cfg,
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_produces_inventory() {
        let out = run_tiny();
        assert!(out.counts.raw > 1_000, "raw {}", out.counts.raw);
        assert!(out.counts.cleaned > 0);
        assert!(out.counts.cleaned <= out.counts.raw);
        assert!(out.counts.with_trips > 0, "trips must be found");
        assert_eq!(out.counts.projected, out.counts.with_trips);
        assert!(out.counts.group_entries > 0);
        assert!(!out.inventory.is_empty());
        // All three grouping sets materialised.
        for gs in GroupingSet::ALL {
            assert!(out.inventory.len_of(gs) > 0, "{gs:?} empty");
        }
    }

    #[test]
    fn funnel_is_monotone() {
        let out = run_tiny();
        assert!(out.counts.cleaned <= out.counts.raw);
        assert!(out.counts.with_trips <= out.counts.cleaned);
        // Cells are far fewer than records: the compression claim at
        // miniature scale.
        let cov = out.inventory.coverage();
        assert!(cov.occupied_cells > 0);
        assert!((cov.occupied_cells as f64) < 0.8 * cov.total_records as f64);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_tiny();
        let b = run_tiny();
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.inventory.len(), b.inventory.len());
        assert_eq!(
            crate::codec::to_bytes(&a.inventory),
            crate::codec::to_bytes(&b.inventory),
            "same seed ⇒ byte-identical inventory"
        );
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let ds = generate(&ScenarioConfig::tiny());
        let cfg = PipelineConfig::default();
        let ports = port_sites(cfg.port_radius_km);
        let a = run(
            &Engine::new(1),
            ds.positions.clone(),
            &ds.statics,
            &ports,
            &cfg,
        )
        .unwrap();
        let b = run(
            &Engine::new(4),
            ds.positions.clone(),
            &ds.statics,
            &ports,
            &cfg,
        )
        .unwrap();
        assert_eq!(a.counts, b.counts);
        let reference = crate::codec::to_bytes(&a.inventory);
        assert_eq!(reference, crate::codec::to_bytes(&b.inventory));
        // The fused executor must agree with the staged path — same
        // inventory bytes, stage counts and clean accounting — at every
        // thread count, including pools far wider than the partition
        // count's parallelism sweet spot (16 threads exercises workers
        // that never receive a task, and the per-worker scratch arenas
        // at maximum pool width).
        for threads in [1, 2, 8, 16] {
            let f = crate::fused::run_fused(
                &Engine::new(threads),
                ds.positions.clone(),
                &ds.statics,
                &ports,
                &cfg,
            )
            .unwrap();
            assert_eq!(a.counts, f.counts, "fused counts at {threads} threads");
            assert_eq!(
                a.clean_report, f.clean_report,
                "fused clean report at {threads} threads"
            );
            assert_eq!(
                reference,
                crate::codec::to_bytes(&f.inventory),
                "fused bytes at {threads} threads"
            );
        }
    }

    #[test]
    fn finer_resolution_occupies_more_cells() {
        let ds = generate(&ScenarioConfig::tiny());
        let ports = port_sites(12.0);
        let engine = Engine::new(2);
        let c6 = PipelineConfig::default();
        let c7 = PipelineConfig::fine();
        let out6 = run(&engine, ds.positions.clone(), &ds.statics, &ports, &c6).unwrap();
        let out7 = run(&engine, ds.positions, &ds.statics, &ports, &c7).unwrap();
        let (cov6, cov7) = (out6.inventory.coverage(), out7.inventory.coverage());
        assert!(
            cov7.occupied_cells > cov6.occupied_cells,
            "res7 {} !> res6 {}",
            cov7.occupied_cells,
            cov6.occupied_cells
        );
        // Table 4's shape: utilization drops with finer resolution.
        assert!(cov7.utilization < cov6.utilization);
        // And compression improves (more records per retained dimension).
        assert!(cov6.compression > 0.0 && cov7.compression > 0.0);
    }

    #[test]
    fn stats_are_physically_plausible() {
        let out = run_tiny();
        let mut checked = 0;
        for (key, stats) in out.inventory.iter() {
            if let crate::features::GroupKey::Cell(_) = key {
                if let Some(mean) = stats.speed.mean() {
                    assert!((0.0..=40.0).contains(&mean), "speed {mean}");
                }
                if stats.eto.count() > 0 {
                    assert!(stats.eto.min().unwrap() >= 0.0);
                    assert!(stats.ata.min().unwrap() >= 0.0);
                }
                checked += 1;
            }
        }
        assert!(checked > 10);
    }
}
