//! The pipeline's error type.
//!
//! Every stage of [`crate::pipeline::run`] returns `Result`: execution
//! failures (a panicking closure on a worker, an engine shutting down)
//! arrive as [`pol_engine::EngineError`], persistence failures as
//! [`crate::codec::CodecError`]. Both convert into [`PipelineError`] via
//! `?`, so drivers handle one type.

use crate::codec::CodecError;
use pol_engine::EngineError;
use std::fmt;

/// Why a pipeline run failed.
#[derive(Debug)]
pub enum PipelineError {
    /// A stage failed on the execution engine.
    Engine(EngineError),
    /// Loading or storing an inventory failed.
    Codec(CodecError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Engine(e) => write!(f, "pipeline execution failed: {e}"),
            PipelineError::Codec(e) => write!(f, "inventory codec failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Engine(e) => Some(e),
            PipelineError::Codec(e) => Some(e),
        }
    }
}

impl From<EngineError> for PipelineError {
    fn from(e: EngineError) -> Self {
        PipelineError::Engine(e)
    }
}

impl From<CodecError> for PipelineError {
    fn from(e: CodecError) -> Self {
        PipelineError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pol_engine::EngineErrorKind;

    #[test]
    fn wraps_engine_errors() {
        let e: PipelineError =
            EngineError::new("trips:extract", EngineErrorKind::PoolShutdown).into();
        assert!(e.to_string().contains("trips:extract"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
