//! Pipeline configuration.

use pol_hexgrid::Resolution;

/// All tunables of the inventory pipeline, with the paper's defaults.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Grid resolution of the inventory. The paper builds resolutions 6
    /// and 7; 6 is the default (≈ 36 km² cells).
    pub resolution: Resolution,
    /// Geofence radius around each port, km (port "geometries" in §3.3.2).
    pub port_radius_km: f64,
    /// Maximum feasible vessel speed; transitions implying more are
    /// rejected by cleaning (§3.3.1 uses 50 kn).
    pub max_feasible_speed_kn: f64,
    /// Minimum positional reports for a trip to enter the inventory
    /// (guards against geofence flicker).
    pub min_trip_points: usize,
    /// Rank-error bound of the percentile sketches (Table 3 "Perc.").
    pub quantile_epsilon: f64,
    /// Capacity of the Top-N sketches (origins/destinations/transitions).
    pub top_n_capacity: usize,
    /// Filter to commercial fleet only (the paper's preprocessing).
    pub commercial_only: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            resolution: Resolution::new_static(6),
            port_radius_km: 12.0,
            max_feasible_speed_kn: 50.0,
            min_trip_points: 5,
            quantile_epsilon: 0.02,
            top_n_capacity: 8,
            commercial_only: true,
        }
    }
}

impl PipelineConfig {
    /// The paper's finer resolution variant (res 7, ≈ 5 km² cells).
    pub fn fine() -> Self {
        PipelineConfig {
            resolution: Resolution::new_static(7),
            ..PipelineConfig::default()
        }
    }

    /// Overrides the resolution.
    pub fn with_resolution(mut self, res: Resolution) -> Self {
        self.resolution = res;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = PipelineConfig::default();
        assert_eq!(c.resolution.level(), 6);
        assert_eq!(c.max_feasible_speed_kn, 50.0);
        assert!(c.commercial_only);
        assert_eq!(PipelineConfig::fine().resolution.level(), 7);
    }

    #[test]
    fn with_resolution_overrides() {
        let c = PipelineConfig::default().with_resolution(Resolution::new(4).unwrap());
        assert_eq!(c.resolution.level(), 4);
    }
}
