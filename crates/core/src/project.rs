//! §3.3.3 — projection to the spatial index.
//!
//! Every trip point is assigned the cell containing it at the configured
//! resolution, and — because record order within a trip is preserved —
//! the *next distinct cell* of the same trip, which is what the Table-3
//! "Transitions" feature counts.

use crate::config::PipelineConfig;
use crate::records::{CellPoint, TripPoint};
use pol_engine::{Dataset, Engine, EngineError};
use pol_hexgrid::{cell_at, CellIndex, Resolution};
use pol_sketch::hash::FxHashMap;

/// Projects one trip's time-ordered points onto the grid, appending
/// cell-annotated points (with next-distinct-cell links) to `out`.
/// `cells` is caller-owned scratch, cleared here — fused executors reuse
/// it across trips. Shared by the staged path below, [`crate::fused`]
/// and the streaming session layer (pol-stream).
pub fn project_trip(
    points: &[TripPoint],
    res: Resolution,
    cells: &mut Vec<CellIndex>,
    out: &mut Vec<CellPoint>,
) {
    cells.clear();
    cells.extend(points.iter().map(|p| cell_at(p.pos, res)));
    for (i, (point, cell)) in points.iter().zip(cells.iter()).enumerate() {
        // Next distinct cell later in the same trip.
        let next_cell = cells[i..].iter().find(|c| *c != cell).copied();
        out.push(CellPoint {
            point: *point,
            cell: *cell,
            next_cell,
        });
    }
}

/// Projects trip points onto the grid and wires up per-trip transitions.
pub fn project(
    engine: &Engine,
    trips: Dataset<TripPoint>,
    cfg: &PipelineConfig,
) -> Result<Dataset<CellPoint>, EngineError> {
    let res = cfg.resolution;
    trips.map_partitions(engine, "project:to-cells", move |part| {
        // Group by trip (trips are contiguous per the extraction stage, but
        // re-group defensively), keep time order, compute next-cell links.
        let mut by_trip: FxHashMap<u64, Vec<TripPoint>> = FxHashMap::default();
        for p in part {
            by_trip.entry(p.trip_id).or_default().push(p);
        }
        let mut trips: Vec<_> = by_trip.into_iter().collect();
        trips.sort_by_key(|(id, _)| *id);
        let mut out = Vec::new();
        let mut cells = Vec::new();
        for (_, mut points) in trips {
            points.sort_by_key(|p| p.timestamp);
            project_trip(&points, res, &mut cells, &mut out);
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pol_ais::types::{MarketSegment, Mmsi};
    use pol_geo::{destination, LatLon};
    use pol_hexgrid::{grid_distance, Resolution};

    fn tp(t: i64, pos: LatLon, trip: u64) -> TripPoint {
        TripPoint {
            mmsi: Mmsi(9),
            timestamp: t,
            pos,
            sog_knots: Some(15.0),
            cog_deg: Some(90.0),
            heading_deg: Some(90.0),
            segment: MarketSegment::Tanker,
            trip_id: trip,
            origin: 0,
            dest: 1,
            eto_secs: t,
            ata_secs: 1_000_000 - t,
        }
    }

    fn eastbound_track(n: usize, step_km: f64) -> Vec<TripPoint> {
        let start = LatLon::new(45.0, -30.0).unwrap();
        (0..n)
            .map(|i| {
                tp(
                    i as i64 * 600,
                    destination(start, 90.0, step_km * i as f64),
                    1,
                )
            })
            .collect()
    }

    fn run(points: Vec<TripPoint>) -> Vec<CellPoint> {
        let engine = Engine::new(2);
        let cfg = PipelineConfig::default();
        project(&engine, Dataset::from_vec(points, 1), &cfg)
            .unwrap()
            .collect()
    }

    #[test]
    fn cells_assigned_and_contain_points() {
        let out = run(eastbound_track(30, 5.0));
        assert_eq!(out.len(), 30);
        for cp in &out {
            assert_eq!(cell_at(cp.point.pos, Resolution::new(6).unwrap()), cp.cell);
        }
    }

    #[test]
    fn transitions_link_adjacentish_cells_in_order() {
        let out = run(eastbound_track(40, 5.0));
        let mut transitions = 0;
        for cp in &out {
            if let Some(next) = cp.next_cell {
                assert_ne!(next, cp.cell, "transition must change cell");
                // Track steps 5 km; res-6 cells are ~3.7 km edge, so the
                // next distinct cell is at most a few cells away.
                let d = grid_distance(cp.cell, next).unwrap();
                assert!(d <= 4, "jump of {d} cells");
                transitions += 1;
            }
        }
        assert!(transitions > 10, "eastbound track must change cells");
        // The last point of the track has no next cell.
        assert!(out.last().unwrap().next_cell.is_none());
    }

    #[test]
    fn stationary_track_has_no_transitions() {
        let pos = LatLon::new(45.0, -30.0).unwrap();
        let points: Vec<_> = (0..10).map(|i| tp(i * 600, pos, 1)).collect();
        let out = run(points);
        assert!(out.iter().all(|cp| cp.next_cell.is_none()));
        let cells: std::collections::HashSet<_> = out.iter().map(|c| c.cell).collect();
        assert_eq!(cells.len(), 1);
    }

    #[test]
    fn transitions_do_not_cross_trips() {
        // Two trips in very different places; last point of trip 1 must not
        // point into trip 2.
        let mut points = eastbound_track(5, 5.0);
        let far = LatLon::new(-20.0, 60.0).unwrap();
        for i in 0..5 {
            points.push(tp(
                10_000 + i * 600,
                destination(far, 90.0, 5.0 * i as f64),
                2,
            ));
        }
        let out = run(points);
        let trip1: Vec<_> = out.iter().filter(|c| c.point.trip_id == 1).collect();
        assert!(
            trip1.last().unwrap().next_cell.is_none()
                || trip1.iter().all(|c| {
                    c.next_cell
                        .is_none_or(|n| grid_distance(c.cell, n).is_some_and(|d| d < 100))
                })
        );
    }

    #[test]
    fn respects_configured_resolution() {
        let engine = Engine::new(1);
        let cfg = PipelineConfig::fine();
        let out = project(&engine, Dataset::from_vec(eastbound_track(3, 5.0), 1), &cfg)
            .unwrap()
            .collect();
        for cp in out {
            assert_eq!(cp.cell.resolution().level(), 7);
        }
    }
}
