//! §3.3.2 — trip-semantics extraction via geofencing.
//!
//! Port areas are geofenced on the hexagonal grid: every cell whose centre
//! lies within a port's radius maps to that port, so the per-report lookup
//! is one `latlon→cell` projection plus one hash probe. All records of a
//! vessel between two consecutive port stops form a trip; the first and
//! last records *outside* port geometries define the origin and
//! destination timestamps, and every record is enriched with elapsed time
//! from origin (ETO) and actual time to arrival (ATA). Records that cannot
//! be attributed to a trip are excluded, exactly as the paper prescribes.

use crate::config::PipelineConfig;
use crate::records::{EnrichedReport, PortSite, TripPoint};
use pol_engine::{Dataset, Engine, EngineError};
use pol_geo::haversine_km;
use pol_hexgrid::{cell_at, cell_axial_at, grid_disk, Resolution};
use pol_sketch::hash::FxHashMap;
use std::sync::Arc;

/// The hex-grid port geofence.
///
/// Keyed by *axial coordinates* at the geofence resolution rather than by
/// full [`pol_hexgrid::CellIndex`]: within one resolution axial coordinates
/// identify a cell uniquely, and [`pol_hexgrid::cell_axial_at`] skips the
/// digit walk and base-cell probe that dominate `cell_at`. `port_at` runs
/// once per cleaned report in every build path, so halving its cost moves
/// the whole pipeline.
pub struct Geofence {
    resolution: Resolution,
    axial_to_port: FxHashMap<(i64, i64), u16>,
}

impl Geofence {
    /// Builds a geofence covering each port's radius with grid cells.
    ///
    /// Uses one resolution finer than cells-per-port would strictly need
    /// so that small radii still get a few cells of coverage.
    pub fn build(ports: &[PortSite], resolution: Resolution) -> Geofence {
        let edge = pol_hexgrid::avg_edge_length_km(resolution);
        let mut axial_to_port = FxHashMap::default();
        for port in ports {
            let center = cell_at(port.pos, resolution);
            // k rings to cover the radius (edge ≈ circumradius; ring k
            // reaches ≈ k·√3·edge planar).
            let k = (port.radius_km / (edge * 1.5)).ceil() as u32 + 1;
            for cell in grid_disk(center, k) {
                let c = pol_hexgrid::cell_center(cell);
                if haversine_km(c, port.pos) <= port.radius_km + edge {
                    let ax = cell.axial();
                    // First writer wins: overlapping ports keep the earlier
                    // (conventionally bigger) port.
                    axial_to_port.entry((ax.q, ax.r)).or_insert(port.id);
                }
            }
        }
        Geofence {
            resolution,
            axial_to_port,
        }
    }

    /// The port whose geofence contains the position, if any.
    pub fn port_at(&self, pos: pol_geo::LatLon) -> Option<u16> {
        let ax = cell_axial_at(pos, self.resolution);
        self.axial_to_port.get(&(ax.q, ax.r)).copied()
    }

    /// Number of geofence cells.
    pub fn cell_count(&self) -> usize {
        self.axial_to_port.len()
    }
}

/// Per-vessel trip extraction over a cleaned, vessel-partitioned dataset.
/// Returns trip-annotated records; reports outside any identifiable trip
/// are dropped (and counted in the returned total).
pub fn extract_trips(
    engine: &Engine,
    cleaned: Dataset<EnrichedReport>,
    ports: &[PortSite],
    cfg: &PipelineConfig,
) -> Result<Dataset<TripPoint>, EngineError> {
    let geofence = Arc::new(Geofence::build(ports, cfg.resolution));
    let min_points = cfg.min_trip_points;
    cleaned.map_partitions(engine, "trips:extract", move |part| {
        // Records arrive grouped per vessel and time-sorted (clean's
        // contract); re-group defensively since partition boundaries are
        // vessel-aligned but one partition holds many vessels.
        let mut per_vessel: FxHashMap<u32, Vec<EnrichedReport>> = FxHashMap::default();
        for r in part {
            per_vessel.entry(r.mmsi.0).or_default().push(r);
        }
        let mut vessels: Vec<_> = per_vessel.into_iter().collect();
        vessels.sort_by_key(|(m, _)| *m);
        let mut out = Vec::new();
        for (_, reports) in vessels {
            extract_for_vessel(&geofence, &reports, min_points, &mut out);
        }
        out
    })
}

/// The incremental form of per-vessel trip extraction: one vessel's
/// cleaned reports are fed in timestamp order, and each port arrival that
/// completes a qualifying passage emits the finished trip's points.
///
/// The batch path ([`extract_for_vessel`]) is a fold over this exact
/// state machine, so the two cannot diverge — the property the streaming
/// byte-identity gate rests on. Trip ids are monotone in `(mmsi, seq)`
/// exactly as in the batch path because `seq` advances only on emission.
#[derive(Clone, Debug)]
pub struct TripTracker {
    min_points: usize,
    last_port: Option<u16>,
    seq: u32,
    current: Vec<EnrichedReport>,
}

impl TripTracker {
    /// A tracker with no port history, dropping passages shorter than
    /// `min_points` records.
    pub fn new(min_points: usize) -> TripTracker {
        TripTracker {
            min_points,
            last_port: None,
            seq: 0,
            current: Vec::new(),
        }
    }

    /// Reconstructs a tracker mid-stream from checkpointed state (see
    /// [`Self::state`]). `TripTracker::resume` over a tracker's own
    /// `state()` behaves identically to the original — the three fields
    /// are its entire mutable state, which is what makes it
    /// checkpointable.
    pub fn resume(
        min_points: usize,
        last_port: Option<u16>,
        seq: u32,
        current: Vec<EnrichedReport>,
    ) -> TripTracker {
        TripTracker {
            min_points,
            last_port,
            seq,
            current,
        }
    }

    /// The checkpointable mid-stream state: the last port sighted, the
    /// emitted-trip sequence counter, and the open (unemitted) passage.
    pub fn state(&self) -> (Option<u16>, u32, &[EnrichedReport]) {
        (self.last_port, self.seq, &self.current)
    }

    /// Resets to a fresh tracker for the next vessel, retaining the open
    /// passage buffer's capacity — the fused executor reuses one tracker
    /// across vessel morsels so the steady state allocates nothing.
    pub fn reset(&mut self, min_points: usize) {
        self.min_points = min_points;
        self.last_port = None;
        self.seq = 0;
        self.current.clear();
    }

    /// Feeds the vessel's next cleaned report. When it lands in a port
    /// geofence and closes a qualifying passage, the finished trip's
    /// annotated points are appended to `out` and `true` is returned.
    ///
    /// Records before the first port sighting have no origin and are
    /// excluded, and an unfinished passage is never emitted (Figure 2b of
    /// the paper) — dropping the tracker discards its open passage.
    pub fn push(
        &mut self,
        geofence: &Geofence,
        r: &EnrichedReport,
        out: &mut Vec<TripPoint>,
    ) -> bool {
        match geofence.port_at(r.pos) {
            Some(port) => {
                let mut emitted = false;
                if let Some(origin) = self.last_port {
                    if self.current.len() >= self.min_points && port != origin {
                        emit_trip(origin, port, &self.current, self.seq, out);
                        self.seq += 1;
                        emitted = true;
                    }
                }
                self.last_port = Some(port);
                self.current.clear();
                emitted
            }
            None => {
                if self.last_port.is_some() {
                    self.current.push(*r);
                }
                false
            }
        }
    }
}

/// Walks one vessel's time-sorted reports, emitting trip-annotated points.
/// Shared by the staged path above, the fused executor ([`crate::fused`])
/// and — through the [`TripTracker`] it folds over — the streaming
/// session layer, which is what keeps all three bit-identical.
pub fn extract_for_vessel(
    geofence: &Geofence,
    reports: &[EnrichedReport],
    min_points: usize,
    out: &mut Vec<TripPoint>,
) {
    let mut tracker = TripTracker::new(min_points);
    extract_for_vessel_with(&mut tracker, geofence, reports, out);
}

/// [`extract_for_vessel`] with a caller-owned tracker (call
/// [`TripTracker::reset`] between vessels), so the passage buffer's
/// capacity survives across morsels instead of reallocating per vessel.
pub fn extract_for_vessel_with(
    tracker: &mut TripTracker,
    geofence: &Geofence,
    reports: &[EnrichedReport],
    out: &mut Vec<TripPoint>,
) {
    for r in reports {
        tracker.push(geofence, r, out);
    }
}

fn emit_trip(
    origin: u16,
    dest: u16,
    points: &[EnrichedReport],
    seq: u32,
    out: &mut Vec<TripPoint>,
) {
    // Callers only emit trips with >= min_trip_points records, but stay
    // total anyway: an empty slice simply emits nothing.
    let (Some(first), Some(last)) = (points.first(), points.last()) else {
        return;
    };
    let departure = first.timestamp;
    let arrival = last.timestamp;
    let mmsi = first.mmsi;
    let trip_id = TripPoint::make_trip_id(mmsi, seq);
    for p in points {
        out.push(TripPoint {
            mmsi: p.mmsi,
            timestamp: p.timestamp,
            pos: p.pos,
            sog_knots: p.sog_knots,
            cog_deg: p.cog_deg,
            heading_deg: p.heading_deg,
            segment: p.segment,
            trip_id,
            origin,
            dest,
            eto_secs: p.timestamp - departure,
            ata_secs: arrival - p.timestamp,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pol_ais::types::{MarketSegment, Mmsi, NavStatus};
    use pol_geo::{destination, LatLon};

    fn ports() -> Vec<PortSite> {
        vec![
            PortSite {
                id: 0,
                name: "Alpha".into(),
                pos: LatLon::new(51.95, 4.14).unwrap(), // Rotterdam-ish
                radius_km: 10.0,
            },
            PortSite {
                id: 1,
                name: "Beta".into(),
                pos: LatLon::new(51.96, 1.32).unwrap(), // Felixstowe-ish
                radius_km: 10.0,
            },
        ]
    }

    fn rep(t: i64, pos: LatLon) -> EnrichedReport {
        EnrichedReport {
            mmsi: Mmsi(7),
            timestamp: t,
            pos,
            sog_knots: Some(14.0),
            cog_deg: Some(250.0),
            heading_deg: Some(250.0),
            nav_status: NavStatus::UnderWayUsingEngine,
            segment: MarketSegment::Container,
        }
    }

    /// A synthetic crossing: in port A, at sea along the great circle,
    /// in port B.
    fn crossing() -> Vec<EnrichedReport> {
        let ps = ports();
        let a = ps[0].pos;
        let b = ps[1].pos;
        let mut out = vec![rep(0, a), rep(600, a)];
        let n = 20;
        for i in 1..n {
            let f = i as f64 / n as f64;
            let p = pol_geo::interpolate(a, b, f);
            out.push(rep(600 + i * 600, p));
        }
        out.push(rep(600 + n * 600, b));
        out.push(rep(1200 + n * 600, b));
        out
    }

    #[test]
    fn geofence_hits_inside_misses_outside() {
        let g = Geofence::build(&ports(), Resolution::new(7).unwrap());
        assert!(g.cell_count() > 10);
        assert_eq!(g.port_at(LatLon::new(51.95, 4.14).unwrap()), Some(0));
        // 5 km from centre: inside.
        let near = destination(LatLon::new(51.95, 4.14).unwrap(), 45.0, 5.0);
        assert_eq!(g.port_at(near), Some(0));
        // 40 km away: outside.
        let far = destination(LatLon::new(51.95, 4.14).unwrap(), 45.0, 40.0);
        assert_eq!(g.port_at(far), None);
        assert_eq!(g.port_at(LatLon::new(0.0, -30.0).unwrap()), None);
    }

    fn run(reports: Vec<EnrichedReport>) -> Vec<TripPoint> {
        let engine = Engine::new(2);
        let mut cfg = PipelineConfig::default();
        cfg.resolution = Resolution::new(7).unwrap();
        extract_trips(&engine, Dataset::from_vec(reports, 1), &ports(), &cfg)
            .unwrap()
            .collect()
    }

    #[test]
    fn crossing_yields_one_trip_with_semantics() {
        let out = run(crossing());
        assert!(!out.is_empty());
        let trip_ids: std::collections::HashSet<u64> = out.iter().map(|p| p.trip_id).collect();
        assert_eq!(trip_ids.len(), 1, "exactly one trip");
        for p in &out {
            assert_eq!(p.origin, 0);
            assert_eq!(p.dest, 1);
            assert!(p.eto_secs >= 0);
            assert!(p.ata_secs >= 0);
        }
        // ETO grows, ATA shrinks along the trip.
        assert_eq!(out.first().unwrap().eto_secs, 0);
        assert_eq!(out.last().unwrap().ata_secs, 0);
        assert!(out.last().unwrap().eto_secs > 0);
        assert!(out.first().unwrap().ata_secs > 0);
        // ETO + ATA is the trip duration for every point.
        let total = out[0].ata_secs;
        for p in &out {
            assert_eq!(p.eto_secs + p.ata_secs, total);
        }
    }

    #[test]
    fn in_port_records_are_not_trip_points() {
        let out = run(crossing());
        let g = Geofence::build(&ports(), Resolution::new(7).unwrap());
        for p in &out {
            assert_eq!(g.port_at(p.pos), None, "trip points lie outside ports");
        }
    }

    #[test]
    fn records_before_first_port_are_excluded() {
        // Only mid-sea points, never a port: no trips.
        let ps = ports();
        let mid = pol_geo::interpolate(ps[0].pos, ps[1].pos, 0.5);
        let reports: Vec<_> = (0..10).map(|i| rep(i * 600, mid)).collect();
        assert!(run(reports).is_empty());
    }

    #[test]
    fn unfinished_passage_excluded() {
        // Departs port A, never reaches a port.
        let ps = ports();
        let a = ps[0].pos;
        let mut reports = vec![rep(0, a)];
        for i in 1..10 {
            reports.push(rep(i * 600, destination(a, 200.0, 15.0 * i as f64)));
        }
        assert!(run(reports).is_empty());
    }

    #[test]
    fn short_flicker_trips_are_dropped() {
        // A -> B with only two outside points (< min_trip_points).
        let ps = ports();
        let mut reports = vec![rep(0, ps[0].pos)];
        reports.push(rep(600, pol_geo::interpolate(ps[0].pos, ps[1].pos, 0.4)));
        reports.push(rep(1200, pol_geo::interpolate(ps[0].pos, ps[1].pos, 0.6)));
        reports.push(rep(1800, ps[1].pos));
        assert!(run(reports).is_empty());
    }

    #[test]
    fn reset_tracker_matches_fresh_tracker() {
        let g = Geofence::build(&ports(), Resolution::new(7).unwrap());
        let reports = crossing();
        let mut fresh = Vec::new();
        extract_for_vessel(&g, &reports, 5, &mut fresh);
        assert!(!fresh.is_empty());
        // Dirty a tracker mid-passage, then reset: it must replay exactly
        // like a new one (the fused executor's reuse pattern).
        let mut tracker = TripTracker::new(3);
        let mut scratch = Vec::new();
        extract_for_vessel_with(
            &mut tracker,
            &g,
            &reports[..reports.len() / 2],
            &mut scratch,
        );
        tracker.reset(5);
        let mut reused = Vec::new();
        extract_for_vessel_with(&mut tracker, &g, &reports, &mut reused);
        assert_eq!(fresh, reused);
    }

    #[test]
    fn two_consecutive_trips_get_distinct_ids() {
        let ps = ports();
        let (a, b) = (ps[0].pos, ps[1].pos);
        let mut reports = Vec::new();
        let mut t = 0i64;
        let leg = |from: LatLon, to: LatLon, reports: &mut Vec<EnrichedReport>, t: &mut i64| {
            reports.push(rep(*t, from));
            *t += 600;
            for i in 1..12 {
                reports.push(rep(*t, pol_geo::interpolate(from, to, i as f64 / 12.0)));
                *t += 600;
            }
            reports.push(rep(*t, to));
            *t += 600;
        };
        leg(a, b, &mut reports, &mut t);
        leg(b, a, &mut reports, &mut t);
        let out = run(reports);
        let ids: std::collections::BTreeSet<u64> = out.iter().map(|p| p.trip_id).collect();
        assert_eq!(ids.len(), 2);
        // Second trip reverses origin/destination.
        let second: Vec<_> = out
            .iter()
            .filter(|p| p.trip_id == *ids.iter().max().unwrap())
            .collect();
        assert_eq!(second[0].origin, 1);
        assert_eq!(second[0].dest, 0);
    }
}
