//! POLINV3 — the columnar, mmap-friendly snapshot format.
//!
//! ## On-disk layout (version 3)
//!
//! ```text
//! magic    b"POLINV3\0"                                  8 bytes
//! header   u32 LE section length                         4 bytes
//!          resolution u8, total-record varint,
//!          section-count varint (= 5), then per section:
//!            kind u8, entry-count varint,
//!            offset varint, length varint                (length bytes)
//!          u64 LE CRC-64/XZ of the header bytes          8 bytes
//! sections five bodies in directory order, each body
//!          followed by its u64 LE CRC-64/XZ              (per directory)
//! footer   u64 LE total file length, b"POLSEAL\0"        16 bytes
//! ```
//!
//! The three grouping-set sections (`cell`, `cell-type`, `cell-route`)
//! share one body shape, columnar and sorted:
//!
//! ```text
//! keys     entry-count × stride bytes, big-endian,
//!          strictly ascending (stride: 8 / 9 / 13)
//! offsets  (entry-count + 1) × u64 LE offsets into blob
//! blob     concatenated canonical CellStats encodings
//! ```
//!
//! Keys are fixed-stride and big-endian so a lexicographic byte compare
//! equals the numeric key order — point lookups are a binary search over
//! the raw key column, touching `O(log n)` cache lines and decoding
//! nothing. The fourth section (`lat-index`) holds one 24-byte row per
//! occupied cell — centre latitude f64 LE, centre longitude f64 LE, raw
//! cell index u64 LE — sorted by latitude, so bbox scans
//! `partition_point` into a latitude band exactly like the heap
//! [`Inventory`]'s cell index. The fifth section (`top-dest`) inverts
//! the top-destination relation: one 11-byte row — destination u16 BE,
//! segment byte ([`TOP_DEST_ALL_SEGMENTS`] for the all-segments `cell`
//! grouping), raw cell u64 BE — per grouping entry whose most frequent
//! destination is that port, sorted as raw byte tuples so the
//! top-destination-cells query is a `(dest, segment)` prefix range scan
//! returning cells already in ascending order.
//!
//! Directory offsets are relative to the section area (the byte after
//! the header CRC) and the bodies must tile it contiguously — a reader
//! seeks straight to any section without scanning, and nothing hides in
//! gaps. [`Layout::parse`] validates everything eagerly — seal, CRCs,
//! bounds, key sortedness, offset monotonicity — in one linear pass that
//! decodes no sketches, which is why opening a POLINV3 snapshot is
//! drastically cheaper than deserializing a POLINV2 one. Stats decode
//! lazily per lookup from the blob column.
//!
//! Statistics reuse the parent module's canonical
//! [`encode_cell_stats`](super::encode_cell_stats) bytes, so a POLINV2 →
//! POLINV3 migration re-encodes every summary to the *identical* bytes
//! it already had, and every query answered from the mapped file is
//! bit-identical to the heap inventory's answer.

use super::{
    decode_cell_stats, encode_cell_stats, save_bytes, CodecError, FOOTER_MAGIC, MIN_ENTRY_BYTES,
};
use crate::features::{CellStats, GroupKey};
use crate::inventory::Inventory;
use pol_ais::types::MarketSegment;
use pol_hexgrid::{cell_center, CellIndex, Resolution};
use pol_sketch::crc64::crc64;
use pol_sketch::hash::FxHashMap;
use pol_sketch::wire::{get_varint, put_varint, WireError};
use std::io::{self, Read};
use std::ops::Range;
use std::path::Path;

/// File magic (format version 3: columnar sections, sealed footer).
pub const MAGIC_V3: &[u8; 8] = b"POLINV3\0";

/// The five sections of a POLINV3 file, in canonical directory order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SectionKind {
    /// `(H3-index)` grouping set.
    Cell,
    /// `(H3-index, vessel-type)` grouping set.
    CellType,
    /// `(H3-index, origin, destination, vessel-type)` grouping set.
    CellRoute,
    /// Latitude-sorted `(lat, lon, cell)` rows for bbox scans.
    LatIndex,
    /// Inverted top-destination rows `(dest, segment, cell)` for the
    /// top-destination-cells query — sorted so a `(dest, segment)`
    /// prefix range scan yields the answer in ascending cell order.
    TopDest,
}

/// The segment byte a [`SectionKind::TopDest`] row uses for the
/// all-segments (`GroupKey::Cell`) grouping. No [`MarketSegment`] id can
/// collide with it: ids are small contiguous values.
pub const TOP_DEST_ALL_SEGMENTS: u8 = 0xFF;

impl SectionKind {
    /// Directory order: every well-formed file stores exactly these.
    pub const ALL: [SectionKind; 5] = [
        SectionKind::Cell,
        SectionKind::CellType,
        SectionKind::CellRoute,
        SectionKind::LatIndex,
        SectionKind::TopDest,
    ];

    /// The section's directory tag.
    pub const fn id(self) -> u8 {
        match self {
            SectionKind::Cell => 0,
            SectionKind::CellType => 1,
            SectionKind::CellRoute => 2,
            SectionKind::LatIndex => 3,
            SectionKind::TopDest => 4,
        }
    }

    /// The fixed byte stride of one key (or one index row).
    pub const fn stride(self) -> usize {
        match self {
            SectionKind::Cell => 8,
            SectionKind::CellType => 9,
            SectionKind::CellRoute => 13,
            SectionKind::LatIndex => 24,
            SectionKind::TopDest => 11,
        }
    }

    /// Human-readable section name (also the `CodecError::Checksum` tag).
    pub const fn name(self) -> &'static str {
        match self {
            SectionKind::Cell => "cell",
            SectionKind::CellType => "cell-type",
            SectionKind::CellRoute => "cell-route",
            SectionKind::LatIndex => "lat-index",
            SectionKind::TopDest => "top-dest",
        }
    }

    fn from_id(id: u8) -> Option<SectionKind> {
        SectionKind::ALL.into_iter().find(|k| k.id() == id)
    }
}

/// Appends the fixed-stride big-endian encoding of a [`GroupKey`].
///
/// Big-endian field order means a lexicographic byte compare over
/// encoded keys sorts them exactly like the tuple `(cell, origin, dest,
/// segment)` — the property [`SectionReader::find`] relies on.
pub fn encode_fixed_key(key: &GroupKey, out: &mut Vec<u8>) {
    match key {
        GroupKey::Cell(c) => out.extend_from_slice(&c.raw().to_be_bytes()),
        GroupKey::CellType(c, seg) => {
            out.extend_from_slice(&c.raw().to_be_bytes());
            out.push(seg.id());
        }
        GroupKey::CellRoute(c, o, d, seg) => {
            out.extend_from_slice(&c.raw().to_be_bytes());
            out.extend_from_slice(&o.to_be_bytes());
            out.extend_from_slice(&d.to_be_bytes());
            out.push(seg.id());
        }
    }
}

/// The exact key bytes a point lookup binary-searches for in the `cell`
/// section.
pub fn cell_key(cell: CellIndex) -> [u8; 8] {
    cell.raw().to_be_bytes()
}

/// Key bytes for the `cell-type` section.
pub fn cell_type_key(cell: CellIndex, segment: MarketSegment) -> [u8; 9] {
    let mut k = [0u8; 9];
    k[..8].copy_from_slice(&cell.raw().to_be_bytes());
    // lint: allow(no_unwrap) — constant index into `[u8; 9]`; rustc
    // rejects an out-of-bounds constant at compile time.
    k[8] = segment.id();
    k
}

/// Key bytes for the `cell-route` section.
pub fn cell_route_key(cell: CellIndex, origin: u16, dest: u16, segment: MarketSegment) -> [u8; 13] {
    let mut k = [0u8; 13];
    k[..8].copy_from_slice(&cell.raw().to_be_bytes());
    k[8..10].copy_from_slice(&origin.to_be_bytes());
    k[10..12].copy_from_slice(&dest.to_be_bytes());
    // lint: allow(no_unwrap) — constant index into `[u8; 13]`; rustc
    // rejects an out-of-bounds constant at compile time.
    k[12] = segment.id();
    k
}

fn be_u64(b: &[u8]) -> Option<u64> {
    Some(u64::from_be_bytes(b.get(..8)?.try_into().ok()?))
}

fn be_u16(b: &[u8]) -> Option<u16> {
    Some(u16::from_be_bytes(b.get(..2)?.try_into().ok()?))
}

fn le_u64(b: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(b.get(..8)?.try_into().ok()?))
}

fn le_f64(b: &[u8]) -> Option<f64> {
    Some(f64::from_le_bytes(b.get(..8)?.try_into().ok()?))
}

/// One decoded lat-index row: `(centre lat, centre lon, raw cell)`.
fn lat_row(rows: &[u8], i: usize) -> Option<(f64, f64, u64)> {
    let stride = SectionKind::LatIndex.stride();
    let at = i.checked_mul(stride)?;
    let row = rows.get(at..at.checked_add(stride)?)?;
    Some((
        le_f64(row)?,
        le_f64(row.get(8..)?)?,
        le_u64(row.get(16..)?)?,
    ))
}

/// Decodes the fixed-stride key of a grouping section back into a
/// [`GroupKey`]. Returns `None` for the lat-index kind, a wrong-length
/// slice, or field values that do not name a valid cell/segment.
pub fn decode_fixed_key(kind: SectionKind, bytes: &[u8]) -> Option<GroupKey> {
    if bytes.len() != kind.stride() {
        return None;
    }
    let cell = CellIndex::from_raw(be_u64(bytes)?).ok()?;
    match kind {
        SectionKind::Cell => Some(GroupKey::Cell(cell)),
        SectionKind::CellType => {
            let seg = MarketSegment::from_id(*bytes.get(8)?)?;
            Some(GroupKey::CellType(cell, seg))
        }
        SectionKind::CellRoute => {
            let origin = be_u16(bytes.get(8..)?)?;
            let dest = be_u16(bytes.get(10..)?)?;
            let seg = MarketSegment::from_id(*bytes.get(12)?)?;
            Some(GroupKey::CellRoute(cell, origin, dest, seg))
        }
        SectionKind::LatIndex | SectionKind::TopDest => None,
    }
}

/// The exact 11-byte row the top-destination query scans for:
/// destination port BE, segment byte, raw cell BE. Byte order equals
/// `(dest, segment, cell)` tuple order, so a `(dest, segment)` prefix
/// delimits one contiguous, cell-ascending run.
pub fn top_dest_row(dest: u16, segment: u8, cell: u64) -> [u8; 11] {
    let mut k = [0u8; 11];
    k[..2].copy_from_slice(&dest.to_be_bytes());
    // lint: allow(no_unwrap) — constant index into `[u8; 11]`; rustc
    // rejects an out-of-bounds constant at compile time.
    k[2] = segment;
    k[3..].copy_from_slice(&cell.to_be_bytes());
    k
}

/// The validated extent of one grouping-set section: absolute byte
/// ranges into the file image for each of its three columns.
#[derive(Clone, Debug)]
pub struct GroupSpan {
    /// Which grouping set the section stores.
    pub kind: SectionKind,
    /// Entries in the section.
    pub count: usize,
    /// The sorted fixed-stride key column.
    pub keys: Range<usize>,
    /// The `(count + 1)` u64 LE offsets into the stats blob.
    pub offsets: Range<usize>,
    /// The concatenated canonical stats encodings.
    pub blob: Range<usize>,
}

/// A fully validated POLINV3 file layout: where every column lives.
///
/// Produced by [`Layout::parse`], which proves the seal, every section
/// CRC, key sortedness and offset monotonicity before returning — a
/// reader holding a `Layout` may slice the file with `get()` and treat
/// any `None` as an encoder bug, never as hostile input.
#[derive(Clone, Debug)]
pub struct Layout {
    /// Grid resolution of the stored inventory.
    pub resolution: Resolution,
    /// Input records summarised by the stored inventory.
    pub total_records: u64,
    /// The `(H3-index)` grouping-set section.
    pub cell: GroupSpan,
    /// The `(H3-index, vessel-type)` grouping-set section.
    pub cell_type: GroupSpan,
    /// The `(H3-index, origin, destination, vessel-type)` section.
    pub cell_route: GroupSpan,
    /// The latitude-sorted `(lat, lon, cell)` rows.
    pub lat_rows: Range<usize>,
    /// Rows in the lat-index (equals `cell.count`).
    pub lat_count: usize,
    /// The sorted `(dest, segment, cell)` top-destination rows.
    pub top_dest_rows: Range<usize>,
    /// Rows in the top-dest index.
    pub top_dest_count: usize,
    /// Per-section CRC-64/XZ values, in [`SectionKind::ALL`] order.
    pub section_crcs: [u64; 5],
    /// The header section's CRC-64/XZ.
    pub header_crc: u64,
}

struct RawSection {
    kind: SectionKind,
    count: usize,
    body: Range<usize>,
    crc: u64,
}

fn unsealed() -> CodecError {
    CodecError::Unsealed
}

fn wire(msg: &'static str) -> CodecError {
    CodecError::Wire(WireError(msg))
}

impl Layout {
    /// Structurally validates a complete POLINV3 file image.
    ///
    /// One linear pass over the bytes: magic, footer seal, header CRC,
    /// directory sanity (five known sections, contiguous, in order),
    /// per-section CRC, strictly ascending keys, monotone stats offsets
    /// that exactly cover the blob, a lat-index sorted by latitude with
    /// one row per occupied cell, and strictly ascending top-dest rows.
    /// No sketch is decoded.
    pub fn parse(bytes: &[u8]) -> Result<Layout, CodecError> {
        if bytes.len() < MAGIC_V3.len() || &bytes[..MAGIC_V3.len()] != MAGIC_V3 {
            return Err(CodecError::BadHeader);
        }
        // Footer seal: identical discipline to POLINV2 — prove the file
        // *ends* correctly before trusting anything in the middle.
        if bytes.len() < MAGIC_V3.len() + 16 {
            return Err(unsealed());
        }
        let seal_at = bytes.len() - FOOTER_MAGIC.len();
        if &bytes[seal_at..] != FOOTER_MAGIC {
            return Err(unsealed());
        }
        let len_at = seal_at - 8;
        let recorded = le_u64(&bytes[len_at..]).ok_or_else(unsealed)?;
        if recorded != bytes.len() as u64 {
            return Err(unsealed());
        }

        // Header section.
        let mut at = MAGIC_V3.len();
        let take = |at: &mut usize, n: usize| -> Result<&[u8], CodecError> {
            let end = at.checked_add(n).ok_or_else(unsealed)?;
            if end > len_at {
                return Err(unsealed());
            }
            let s = &bytes[*at..end];
            *at = end;
            Ok(s)
        };
        let header_len =
            u32::from_le_bytes(take(&mut at, 4)?.try_into().map_err(|_| unsealed())?) as usize;
        let header = take(&mut at, header_len)?;
        let header_crc = u64::from_le_bytes(take(&mut at, 8)?.try_into().map_err(|_| unsealed())?);
        if crc64(header) != header_crc {
            return Err(CodecError::Checksum { section: "header" });
        }
        let mut h = header;
        let (&res_raw, rest) = h.split_first().ok_or(CodecError::BadHeader)?;
        h = rest;
        let resolution = Resolution::new(res_raw).ok_or(CodecError::BadHeader)?;
        let total_records = get_varint(&mut h)?;
        let n_sections = get_varint(&mut h)? as usize;
        if n_sections != SectionKind::ALL.len() {
            return Err(wire("unexpected section count"));
        }
        let area_start = at;
        let area_len = len_at.checked_sub(area_start).ok_or_else(unsealed)?;
        let mut raw: Vec<RawSection> = Vec::with_capacity(n_sections);
        let mut expect_off = 0usize;
        for want in SectionKind::ALL {
            let (&kind_id, rest) = h.split_first().ok_or(wire("directory truncated"))?;
            h = rest;
            let kind = SectionKind::from_id(kind_id).ok_or(wire("unknown section kind"))?;
            if kind != want {
                return Err(wire("sections out of canonical order"));
            }
            let count = usize::try_from(get_varint(&mut h)?).map_err(|_| wire("huge count"))?;
            let off = usize::try_from(get_varint(&mut h)?).map_err(|_| wire("huge offset"))?;
            let len = usize::try_from(get_varint(&mut h)?).map_err(|_| wire("huge length"))?;
            // Contiguity: bodies tile the section area in directory
            // order, so nothing can hide between or after them.
            if off != expect_off {
                return Err(wire("section directory not contiguous"));
            }
            let body_start = area_start.checked_add(off).ok_or_else(unsealed)?;
            let body_end = body_start.checked_add(len).ok_or_else(unsealed)?;
            let crc_end = body_end.checked_add(8).ok_or_else(unsealed)?;
            if crc_end > len_at {
                return Err(unsealed());
            }
            let crc = le_u64(&bytes[body_end..crc_end]).ok_or_else(unsealed)?;
            if crc64(&bytes[body_start..body_end]) != crc {
                return Err(CodecError::Checksum {
                    section: kind.name(),
                });
            }
            expect_off = off
                .checked_add(len)
                .and_then(|v| v.checked_add(8))
                .ok_or_else(unsealed)?;
            raw.push(RawSection {
                kind,
                count,
                body: body_start..body_end,
                crc,
            });
        }
        if !h.is_empty() {
            return Err(wire("trailing header bytes"));
        }
        if expect_off != area_len {
            return Err(unsealed());
        }

        let mut group_spans: Vec<GroupSpan> = Vec::with_capacity(3);
        let mut lat_span = 0..0;
        let mut lat_count = 0usize;
        let mut top_dest_span = 0..0;
        let mut top_dest_count = 0usize;
        let mut section_crcs = [0u64; 5];
        for (slot, sec) in raw.iter().enumerate() {
            if let Some(c) = section_crcs.get_mut(slot) {
                *c = sec.crc;
            }
            let stride = sec.kind.stride();
            let body = &bytes[sec.body.clone()];
            if sec.kind == SectionKind::TopDest {
                // Hostile-count guard + exact tiling of the rows.
                if sec.count.checked_mul(stride) != Some(body.len()) {
                    return Err(wire("top-dest length mismatch"));
                }
                // Rows strictly ascending as raw byte tuples: the prefix
                // range scan the top-destination query runs requires it,
                // and it rules out duplicate rows.
                for w in 0..sec.count.saturating_sub(1) {
                    let a = body.get(w * stride..(w + 1) * stride);
                    let b = body.get((w + 1) * stride..(w + 2) * stride);
                    match (a, b) {
                        (Some(a), Some(b)) if a < b => {}
                        _ => return Err(wire("top-dest rows not sorted")),
                    }
                }
                top_dest_span = sec.body.clone();
                top_dest_count = sec.count;
                continue;
            }
            if sec.kind == SectionKind::LatIndex {
                // Hostile-count guard + exact tiling of the rows.
                if sec.count.checked_mul(stride) != Some(body.len()) {
                    return Err(wire("lat-index length mismatch"));
                }
                // Rows sorted by (latitude, cell): the partition_point
                // the bbox scan runs requires it.
                for w in 0..sec.count.saturating_sub(1) {
                    let a = lat_row(body, w).ok_or(wire("lat-index row unreadable"))?;
                    let b = lat_row(body, w + 1).ok_or(wire("lat-index row unreadable"))?;
                    let ord = a.0.total_cmp(&b.0).then_with(|| a.2.cmp(&b.2));
                    if ord != std::cmp::Ordering::Less {
                        return Err(wire("lat-index not sorted"));
                    }
                }
                lat_span = sec.body.clone();
                lat_count = sec.count;
                continue;
            }
            // Grouping section: keys, offsets, blob must tile the body.
            let keys_len = sec
                .count
                .checked_mul(stride)
                .ok_or(wire("huge key column"))?;
            let offsets_len = sec
                .count
                .checked_add(1)
                .and_then(|n| n.checked_mul(8))
                .ok_or(wire("huge offset column"))?;
            let fixed = keys_len
                .checked_add(offsets_len)
                .ok_or(wire("huge section"))?;
            if fixed > body.len() {
                return Err(wire("entry count exceeds section"));
            }
            let blob_len = body.len() - fixed;
            // Same allocation guard as v2: a count claiming more entries
            // than the blob could physically hold is hostile. Stats
            // alone dominate MIN_ENTRY_BYTES, so the v2 bound applies.
            if sec
                .count
                .checked_mul(MIN_ENTRY_BYTES)
                .map(|need| need > blob_len.saturating_add(keys_len))
                .unwrap_or(true)
                && sec.count > 0
            {
                return Err(wire("entry count exceeds buffer"));
            }
            let keys = &body[..keys_len];
            let offsets = &body[keys_len..fixed];
            // Keys strictly ascending: binary-search soundness and entry
            // uniqueness in one check.
            for w in 0..sec.count.saturating_sub(1) {
                let a = keys.get(w * stride..(w + 1) * stride);
                let b = keys.get((w + 1) * stride..(w + 2) * stride);
                match (a, b) {
                    (Some(a), Some(b)) if a < b => {}
                    _ => return Err(wire("keys not strictly sorted")),
                }
            }
            // Offsets strictly increasing (every entry non-empty),
            // starting at zero and ending exactly at the blob length.
            let mut prev: Option<u64> = None;
            for i in 0..=sec.count {
                let off = le_u64(offsets.get(i * 8..).unwrap_or(&[]))
                    .ok_or(wire("offset column unreadable"))?;
                match prev {
                    None if off != 0 => return Err(wire("first offset not zero")),
                    Some(p) if off <= p => return Err(wire("offsets not increasing")),
                    _ => {}
                }
                // The zero-count section's single offset must still be 0.
                if i == sec.count && off != blob_len as u64 {
                    return Err(wire("offsets do not cover blob"));
                }
                prev = Some(off);
            }
            group_spans.push(GroupSpan {
                kind: sec.kind,
                count: sec.count,
                keys: sec.body.start..sec.body.start + keys_len,
                offsets: sec.body.start + keys_len..sec.body.start + fixed,
                blob: sec.body.start + fixed..sec.body.end,
            });
        }
        let mut spans = group_spans.into_iter();
        let (cell, cell_type, cell_route) = match (spans.next(), spans.next(), spans.next()) {
            (Some(a), Some(b), Some(c)) => (a, b, c),
            _ => return Err(wire("missing grouping section")),
        };
        if lat_count != cell.count {
            return Err(wire("lat-index row count mismatch"));
        }
        Ok(Layout {
            resolution,
            total_records,
            cell,
            cell_type,
            cell_route,
            lat_rows: lat_span,
            lat_count,
            top_dest_rows: top_dest_span,
            top_dest_count,
            section_crcs,
            header_crc,
        })
    }
}

/// Zero-copy accessor over one validated grouping-set section.
///
/// Borrowing both the file bytes and the [`Layout`] span, it answers
/// point lookups by binary search over the sorted key column and hands
/// out raw stats byte slices without decoding. All accessors are
/// panic-free: out-of-range indices return `None`.
pub struct SectionReader<'a> {
    kind: SectionKind,
    count: usize,
    keys: &'a [u8],
    offsets: &'a [u8],
    blob: &'a [u8],
}

impl<'a> SectionReader<'a> {
    /// Borrows a section from a file image previously validated by
    /// [`Layout::parse`]. `None` if the span does not fit `bytes` (an
    /// encoder bug or a layout from a different file).
    pub fn new(bytes: &'a [u8], span: &GroupSpan) -> Option<SectionReader<'a>> {
        Some(SectionReader {
            kind: span.kind,
            count: span.count,
            keys: bytes.get(span.keys.clone())?,
            offsets: bytes.get(span.offsets.clone())?,
            blob: bytes.get(span.blob.clone())?,
        })
    }

    /// Entries in the section.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the section has no entries.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The section's grouping set.
    pub fn kind(&self) -> SectionKind {
        self.kind
    }

    /// The fixed-stride key bytes of entry `i`.
    pub fn key_at(&self, i: usize) -> Option<&'a [u8]> {
        let stride = self.kind.stride();
        let at = i.checked_mul(stride)?;
        self.keys.get(at..at.checked_add(stride)?)
    }

    /// The decoded [`GroupKey`] of entry `i`.
    pub fn group_key_at(&self, i: usize) -> Option<GroupKey> {
        decode_fixed_key(self.kind, self.key_at(i)?)
    }

    /// The canonical stats encoding of entry `i`, undecoded.
    pub fn stats_bytes(&self, i: usize) -> Option<&'a [u8]> {
        if i >= self.count {
            return None;
        }
        let start = le_u64(self.offsets.get(i * 8..)?)? as usize;
        let end = le_u64(self.offsets.get((i + 1) * 8..)?)? as usize;
        self.blob.get(start..end)
    }

    /// Decodes the stats of entry `i`, requiring the entry's blob slice
    /// to be fully consumed. `None` on any mismatch — with CRCs already
    /// verified this can only mean an encoder bug, never corruption.
    pub fn decode_stats(&self, i: usize) -> Option<CellStats> {
        let mut input = self.stats_bytes(i)?;
        let stats = decode_cell_stats(&mut input).ok()?;
        input.is_empty().then_some(stats)
    }

    /// Binary-searches the sorted key column for exact `key` bytes.
    pub fn find(&self, key: &[u8]) -> Option<usize> {
        let mut lo = 0usize;
        let mut hi = self.count;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.key_at(mid)?.cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid),
            }
        }
        None
    }

    /// The first index whose key is `>= key` (a `partition_point` over
    /// the sorted key column) — the start of a range scan.
    pub fn lower_bound(&self, key: &[u8]) -> usize {
        let mut lo = 0usize;
        let mut hi = self.count;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.key_at(mid).map(|k| k < key).unwrap_or(false) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// Zero-copy accessor over the latitude-sorted cell rows.
pub struct LatIndexReader<'a> {
    rows: &'a [u8],
    count: usize,
}

impl<'a> LatIndexReader<'a> {
    /// Borrows the lat-index from a validated file image.
    pub fn new(bytes: &'a [u8], layout: &Layout) -> Option<LatIndexReader<'a>> {
        Some(LatIndexReader {
            rows: bytes.get(layout.lat_rows.clone())?,
            count: layout.lat_count,
        })
    }

    /// Rows in the index (one per occupied cell).
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the index has no rows.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Row `i`: `(centre lat, centre lon, raw cell index)`.
    pub fn row(&self, i: usize) -> Option<(f64, f64, u64)> {
        if i >= self.count {
            return None;
        }
        lat_row(self.rows, i)
    }

    /// The first row whose latitude is `>= lat` — the start of a
    /// latitude-band scan.
    pub fn lower_bound_lat(&self, lat: f64) -> usize {
        let mut lo = 0usize;
        let mut hi = self.count;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let below = self
                .row(mid)
                .map(|(l, _, _)| l.total_cmp(&lat) == std::cmp::Ordering::Less)
                .unwrap_or(false);
            if below {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// Zero-copy accessor over the sorted `(dest, segment, cell)` rows.
///
/// The top-destination-cells query binary-searches to the first row with
/// the wanted `(dest, segment)` prefix and walks the contiguous run —
/// `O(log n + answer)` instead of the heap store's full-entry scan.
pub struct TopDestReader<'a> {
    rows: &'a [u8],
    count: usize,
}

impl<'a> TopDestReader<'a> {
    /// Borrows the top-dest index from a validated file image.
    pub fn new(bytes: &'a [u8], layout: &Layout) -> Option<TopDestReader<'a>> {
        Some(TopDestReader {
            rows: bytes.get(layout.top_dest_rows.clone())?,
            count: layout.top_dest_count,
        })
    }

    /// Rows in the index.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the index has no rows.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw 11-byte row at `i`.
    pub fn row_bytes(&self, i: usize) -> Option<&'a [u8]> {
        let stride = SectionKind::TopDest.stride();
        let at = i.checked_mul(stride)?;
        if i >= self.count {
            return None;
        }
        self.rows.get(at..at.checked_add(stride)?)
    }

    /// The first row whose bytes are `>= prefix` (compared over the
    /// prefix length) — the start of a `(dest, segment)` range scan.
    pub fn lower_bound(&self, prefix: &[u8]) -> usize {
        let mut lo = 0usize;
        let mut hi = self.count;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let below = self
                .row_bytes(mid)
                .and_then(|r| r.get(..prefix.len()))
                .map(|head| head < prefix)
                .unwrap_or(false);
            if below {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// All cells whose top destination is `dest` under segment byte
    /// `segment` ([`TOP_DEST_ALL_SEGMENTS`] for the all-segments
    /// grouping), in ascending cell order.
    pub fn cells_for(&self, dest: u16, segment: u8) -> Vec<u64> {
        let mut prefix = [0u8; 3];
        prefix[..2].copy_from_slice(&dest.to_be_bytes());
        // lint: allow(no_unwrap) — constant index into `[u8; 3]`; rustc
        // rejects an out-of-bounds constant at compile time.
        prefix[2] = segment;
        let mut out = Vec::new();
        let mut i = self.lower_bound(&prefix);
        while let Some(row) = self.row_bytes(i) {
            match row.get(..3) {
                Some(head) if head == prefix => {}
                _ => break,
            }
            if let Some(cell) = be_u64(row.get(3..).unwrap_or(&[])) {
                out.push(cell);
            }
            i += 1;
        }
        out
    }
}

fn group_section_body(entries: &[(Vec<u8>, &CellStats)]) -> Vec<u8> {
    let mut keys = Vec::new();
    let mut offsets = Vec::with_capacity((entries.len() + 1) * 8);
    let mut blob = Vec::new();
    for (kb, stats) in entries {
        keys.extend_from_slice(kb);
        offsets.extend_from_slice(&(blob.len() as u64).to_le_bytes());
        encode_cell_stats(stats, &mut blob);
    }
    offsets.extend_from_slice(&(blob.len() as u64).to_le_bytes());
    let mut body = Vec::with_capacity(keys.len() + offsets.len() + blob.len());
    body.extend_from_slice(&keys);
    body.extend_from_slice(&offsets);
    body.extend_from_slice(&blob);
    body
}

/// Serializes an inventory to its complete POLINV3 file image (magic
/// through sealed footer). Deterministic: equal inventories always
/// produce identical bytes.
pub fn to_bytes(inv: &Inventory) -> Vec<u8> {
    // Partition entries by grouping set and sort by encoded key — the
    // fixed-stride big-endian encoding makes byte order == key order.
    let mut groups: [Vec<(Vec<u8>, &CellStats)>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut lat_rows: Vec<(f64, f64, u64)> = Vec::new();
    let mut top_rows: Vec<[u8; 11]> = Vec::new();
    for (key, stats) in inv.iter() {
        let mut kb = Vec::with_capacity(13);
        encode_fixed_key(key, &mut kb);
        // Invert the top-destination relation for the `cell` and
        // `cell-type` groupings — the same `top_destinations(1)` the heap
        // query evaluates per entry, precomputed once at encode time.
        let top_of = |seg: u8, cell: &CellIndex| {
            stats
                .top_destinations(1)
                .first()
                .map(|(d, _)| top_dest_row(*d, seg, cell.raw()))
        };
        let slot = match key {
            GroupKey::Cell(c) => {
                let center = cell_center(*c);
                lat_rows.push((center.lat(), center.lon(), c.raw()));
                top_rows.extend(top_of(TOP_DEST_ALL_SEGMENTS, c));
                0
            }
            GroupKey::CellType(c, seg) => {
                top_rows.extend(top_of(seg.id(), c));
                1
            }
            GroupKey::CellRoute(..) => 2,
        };
        if let Some(g) = groups.get_mut(slot) {
            g.push((kb, stats));
        }
    }
    for g in &mut groups {
        g.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    }
    top_rows.sort_unstable();
    let mut top_body = Vec::with_capacity(top_rows.len() * SectionKind::TopDest.stride());
    for row in &top_rows {
        top_body.extend_from_slice(row);
    }
    lat_rows.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.2.cmp(&b.2)));
    let mut lat_body = Vec::with_capacity(lat_rows.len() * SectionKind::LatIndex.stride());
    for (lat, lon, raw) in &lat_rows {
        lat_body.extend_from_slice(&lat.to_le_bytes());
        lat_body.extend_from_slice(&lon.to_le_bytes());
        lat_body.extend_from_slice(&raw.to_le_bytes());
    }

    let [g_cell, g_cell_type, g_cell_route] = &groups;
    let bodies: [(SectionKind, usize, Vec<u8>); 5] = [
        (SectionKind::Cell, g_cell.len(), group_section_body(g_cell)),
        (
            SectionKind::CellType,
            g_cell_type.len(),
            group_section_body(g_cell_type),
        ),
        (
            SectionKind::CellRoute,
            g_cell_route.len(),
            group_section_body(g_cell_route),
        ),
        (SectionKind::LatIndex, lat_rows.len(), lat_body),
        (SectionKind::TopDest, top_rows.len(), top_body),
    ];

    let mut header = Vec::with_capacity(64);
    header.push(inv.resolution().level());
    put_varint(&mut header, inv.total_records());
    put_varint(&mut header, bodies.len() as u64);
    let mut area = Vec::new();
    for (kind, count, body) in &bodies {
        header.push(kind.id());
        put_varint(&mut header, *count as u64);
        put_varint(&mut header, area.len() as u64);
        put_varint(&mut header, body.len() as u64);
        area.extend_from_slice(body);
        area.extend_from_slice(&crc64(body).to_le_bytes());
    }

    let mut out = Vec::with_capacity(MAGIC_V3.len() + 4 + header.len() + 8 + area.len() + 16);
    out.extend_from_slice(MAGIC_V3);
    out.extend_from_slice(&(header.len() as u32).to_le_bytes());
    out.extend_from_slice(&header);
    out.extend_from_slice(&crc64(&header).to_le_bytes());
    out.extend_from_slice(&area);
    let file_len = out.len() as u64 + 16; // footer included
    out.extend_from_slice(&file_len.to_le_bytes());
    out.extend_from_slice(FOOTER_MAGIC);
    out
}

/// Deserializes a POLINV3 file image into a heap [`Inventory`] —
/// validating the layout, then decoding every entry of every grouping
/// section (the migration/fallback path; serving reads zero-copy via
/// [`Layout`] + [`SectionReader`] instead).
pub fn from_bytes(bytes: &[u8]) -> Result<Inventory, CodecError> {
    let layout = Layout::parse(bytes)?;
    let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
    let total: usize = layout.cell.count + layout.cell_type.count + layout.cell_route.count;
    entries.reserve(total);
    for span in [&layout.cell, &layout.cell_type, &layout.cell_route] {
        let reader = SectionReader::new(bytes, span).ok_or(wire("section out of bounds"))?;
        for i in 0..reader.len() {
            let key = reader.group_key_at(i).ok_or(wire("bad section key"))?;
            let mut input = reader.stats_bytes(i).ok_or(wire("bad stats offsets"))?;
            let stats = decode_cell_stats(&mut input)?;
            if !input.is_empty() {
                return Err(wire("trailing stats bytes"));
            }
            entries.insert(key, stats);
        }
    }
    Ok(Inventory::from_entries(
        layout.resolution,
        entries,
        layout.total_records,
    ))
}

/// What [`verify_bytes`] found in one section of a sound POLINV3 file.
#[derive(Clone, Debug)]
pub struct SectionReport {
    /// Section name (`cell`, `cell-type`, `cell-route`, `lat-index`).
    pub name: &'static str,
    /// Entries (or lat-index rows) in the section.
    pub entries: usize,
    /// The section's CRC-64/XZ, verified against its bytes.
    pub crc: u64,
}

/// What [`verify_bytes`] found in a structurally sound POLINV3 file.
#[derive(Clone, Debug)]
pub struct ColumnarReport {
    /// Total file length in bytes, as recorded in the sealed footer.
    pub file_len: u64,
    /// Grid resolution level of the stored inventory.
    pub resolution: u8,
    /// Input records summarised by the stored inventory.
    pub total_records: u64,
    /// Per-section findings, in directory order.
    pub sections: Vec<SectionReport>,
    /// Group-identifier entries decoded across all grouping sections.
    pub entries: usize,
}

/// Audits a POLINV3 file image end to end: layout validation plus a
/// full decode of every entry (catching logical corruption a checksum
/// of buggy bytes would bless). Any failure is the same typed
/// [`CodecError`] a load would produce.
pub fn verify_bytes(bytes: &[u8]) -> Result<ColumnarReport, CodecError> {
    let layout = Layout::parse(bytes)?;
    let inv = from_bytes(bytes)?;
    let counts = [
        layout.cell.count,
        layout.cell_type.count,
        layout.cell_route.count,
        layout.lat_count,
        layout.top_dest_count,
    ];
    let sections = SectionKind::ALL
        .iter()
        .zip(counts)
        .zip(layout.section_crcs)
        .map(|((kind, entries), crc)| SectionReport {
            name: kind.name(),
            entries,
            crc,
        })
        .collect();
    Ok(ColumnarReport {
        file_len: bytes.len() as u64,
        resolution: layout.resolution.level(),
        total_records: layout.total_records,
        sections,
        entries: inv.len(),
    })
}

/// Audits a POLINV3 file on disk (see [`verify_bytes`]).
pub fn verify(path: &Path) -> Result<ColumnarReport, CodecError> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    verify_bytes(&buf)
}

/// Saves an inventory as a POLINV3 file, crash-safely — same temp-file
/// + fsync + atomic-rename discipline as the v2 [`save`](super::save).
pub fn save(inv: &Inventory, path: &Path) -> io::Result<()> {
    save_bytes(&to_bytes(inv), path)
}

/// Loads a POLINV3 file into a heap [`Inventory`] (full decode).
pub fn load(path: &Path) -> Result<Inventory, CodecError> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    from_bytes(&buf)
}

/// Converts a POLINV2 file image into a POLINV3 one. The stats bytes
/// survive verbatim (both formats share the canonical encoding), only
/// the framing changes — the migration proptest pins query equality.
pub fn migrate_v2_bytes(v2: &[u8]) -> Result<Vec<u8>, CodecError> {
    Ok(to_bytes(&super::from_bytes(v2)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{CellPoint, TripPoint};
    use pol_ais::types::Mmsi;
    use pol_geo::{BBox, LatLon};
    use pol_hexgrid::cell_at;

    fn sample_inventory(n: usize) -> Inventory {
        let res = Resolution::new(6).unwrap();
        let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
        for i in 0..n {
            let pos = LatLon::new(-50.0 + (i % 100) as f64, -170.0 + (i % 340) as f64).unwrap();
            let cell = cell_at(pos, res);
            let cp = CellPoint {
                point: TripPoint {
                    mmsi: Mmsi(100 + (i % 9) as u32),
                    timestamp: i as i64,
                    pos,
                    sog_knots: Some(8.0 + (i % 10) as f64),
                    cog_deg: Some((i * 17 % 360) as f64),
                    heading_deg: Some((i * 13 % 360) as f64),
                    segment: MarketSegment::from_id((i % 6) as u8).unwrap(),
                    trip_id: (i % 12) as u64,
                    origin: (i % 4) as u16,
                    dest: (i % 5) as u16,
                    eto_secs: i as i64 * 60,
                    ata_secs: (n - i) as i64 * 60,
                },
                cell,
                next_cell: None,
            };
            for key in [
                GroupKey::Cell(cell),
                GroupKey::CellType(cell, cp.point.segment),
                GroupKey::CellRoute(cell, cp.point.origin, cp.point.dest, cp.point.segment),
            ] {
                entries
                    .entry(key)
                    .or_insert_with(|| CellStats::new(0.02, 8))
                    .observe(&cp);
            }
        }
        Inventory::from_entries(res, entries, n as u64)
    }

    fn stats_bytes_of(s: &CellStats) -> Vec<u8> {
        let mut out = Vec::new();
        encode_cell_stats(s, &mut out);
        out
    }

    #[test]
    fn round_trip_preserves_every_entry() {
        let inv = sample_inventory(400);
        let bytes = to_bytes(&inv);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.resolution(), inv.resolution());
        assert_eq!(back.total_records(), inv.total_records());
        assert_eq!(back.len(), inv.len());
        for (key, stats) in inv.iter() {
            let b = back.get(key).unwrap_or_else(|| panic!("missing {key:?}"));
            assert_eq!(stats_bytes_of(b), stats_bytes_of(stats));
        }
    }

    #[test]
    fn deterministic_bytes() {
        assert_eq!(
            to_bytes(&sample_inventory(200)),
            to_bytes(&sample_inventory(200))
        );
    }

    #[test]
    fn binary_search_finds_every_key_with_identical_stats() {
        let inv = sample_inventory(300);
        let bytes = to_bytes(&inv);
        let layout = Layout::parse(&bytes).unwrap();
        for (span, _) in [
            (&layout.cell, 0),
            (&layout.cell_type, 1),
            (&layout.cell_route, 2),
        ] {
            let reader = SectionReader::new(&bytes, span).unwrap();
            for i in 0..reader.len() {
                let key = reader.group_key_at(i).unwrap();
                let mut kb = Vec::new();
                encode_fixed_key(&key, &mut kb);
                assert_eq!(reader.find(&kb), Some(i));
                let expect = inv.get(&key).unwrap();
                let decoded = reader.decode_stats(i).unwrap();
                assert_eq!(stats_bytes_of(&decoded), stats_bytes_of(expect));
            }
            // A key that cannot exist is not found.
            assert_eq!(reader.find(&vec![0xFF; span.kind.stride()]), None);
        }
    }

    #[test]
    fn lat_index_band_scan_matches_inventory_cells_in() {
        let inv = sample_inventory(500);
        let bytes = to_bytes(&inv);
        let layout = Layout::parse(&bytes).unwrap();
        let lat = LatIndexReader::new(&bytes, &layout).unwrap();
        assert_eq!(lat.len(), layout.cell.count);
        let bbox = BBox::new(-30.0, -60.0, 30.0, 60.0).unwrap();
        let mut got: Vec<u64> = Vec::new();
        let mut i = lat.lower_bound_lat(bbox.min_lat);
        while let Some((la, lo, raw)) = lat.row(i) {
            if la > bbox.max_lat {
                break;
            }
            if let Some(p) = LatLon::new(la, lo) {
                if bbox.contains(p) {
                    got.push(raw);
                }
            }
            i += 1;
        }
        got.sort_unstable();
        let mut want: Vec<u64> = inv.cells_in(&bbox).iter().map(|c| c.raw()).collect();
        want.sort_unstable();
        assert!(!want.is_empty());
        assert_eq!(got, want);
    }

    #[test]
    fn migration_from_v2_is_query_identical() {
        let inv = sample_inventory(250);
        let v2 = super::super::to_bytes(&inv);
        let v3 = migrate_v2_bytes(&v2).unwrap();
        let from_v3 = from_bytes(&v3).unwrap();
        assert_eq!(from_v3.len(), inv.len());
        for (key, stats) in inv.iter() {
            let b = from_v3.get(key).unwrap();
            assert_eq!(stats_bytes_of(b), stats_bytes_of(stats));
        }
        // Migrating the same v2 image twice is deterministic.
        assert_eq!(v3, migrate_v2_bytes(&v2).unwrap());
    }

    #[test]
    fn empty_inventory_round_trips() {
        let inv = Inventory::from_entries(Resolution::new(7).unwrap(), FxHashMap::default(), 0);
        let bytes = to_bytes(&inv);
        let layout = Layout::parse(&bytes).unwrap();
        assert_eq!(layout.cell.count, 0);
        assert_eq!(layout.lat_count, 0);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), 0);
        assert_eq!(back.resolution().level(), 7);
    }

    #[test]
    fn rejects_garbage_truncation_and_bit_flips() {
        assert!(matches!(
            from_bytes(b"not an inventory"),
            Err(CodecError::BadHeader)
        ));
        // v2 magic is not a v3 file.
        let v2 = super::super::to_bytes(&sample_inventory(5));
        assert!(matches!(from_bytes(&v2), Err(CodecError::BadHeader)));
        let bytes = to_bytes(&sample_inventory(50));
        for cut in (0..bytes.len() - 1).step_by(13) {
            match from_bytes(&bytes[..cut]).err() {
                Some(CodecError::BadHeader) | Some(CodecError::Unsealed) => {}
                other => panic!("prefix of {cut} bytes: expected typed error, got {other:?}"),
            }
        }
        for byte in (0..bytes.len()).step_by(7) {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 1 << (byte % 8);
            assert!(
                from_bytes(&corrupt).is_err(),
                "bit flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn verify_reports_sections() {
        let inv = sample_inventory(120);
        let bytes = to_bytes(&inv);
        let report = verify_bytes(&bytes).unwrap();
        assert_eq!(report.entries, inv.len());
        assert_eq!(report.resolution, inv.resolution().level());
        assert_eq!(report.sections.len(), 5);
        assert_eq!(report.sections[0].name, "cell");
        assert_eq!(report.sections[3].name, "lat-index");
        assert_eq!(report.sections[4].name, "top-dest");
        assert_eq!(report.sections[0].entries, report.sections[3].entries);
    }

    #[test]
    fn top_dest_scan_matches_inventory_predicate() {
        let inv = sample_inventory(500);
        let bytes = to_bytes(&inv);
        let layout = Layout::parse(&bytes).unwrap();
        let reader = TopDestReader::new(&bytes, &layout).unwrap();
        assert!(reader.len() > 0);
        // Every (dest, segment) combination the sample can produce, plus
        // one that cannot exist.
        for dest in 0..6u16 {
            let got = reader.cells_for(dest, TOP_DEST_ALL_SEGMENTS);
            let mut want: Vec<u64> = inv
                .cells_with_top_destination(dest, None)
                .iter()
                .map(|c| c.raw())
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "all-segments dest {dest}");
            for seg_id in 0..6u8 {
                let seg = MarketSegment::from_id(seg_id).unwrap();
                let got = reader.cells_for(dest, seg_id);
                let mut want: Vec<u64> = inv
                    .cells_with_top_destination(dest, Some(seg))
                    .iter()
                    .map(|c| c.raw())
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "dest {dest} segment {seg_id}");
            }
        }
        assert!(reader.cells_for(999, TOP_DEST_ALL_SEGMENTS).is_empty());
    }

    #[test]
    fn file_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("pol-columnar-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inv.pol3");
        let inv = sample_inventory(80);
        save(&inv, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.len(), inv.len());
        assert!(verify(&path).is_ok());
        std::fs::remove_file(&path).ok();
    }
}
